"""Micro-batching with bitwise-reproducible fixed-shape dispatch.

The batcher's contract is the serving layer's core correctness claim:
**a request's outputs are bitwise identical whether it was served alone
or coalesced with arbitrary other traffic.** That is *not* free with
BLAS-backed kernels — ``(X[:n] @ W)`` and ``(X @ W)[:n]`` differ in the
last bits because GEMM blocking depends on the problem shape, so naive
concatenation batching would make results depend on who else happened
to be in the queue. The batcher therefore never varies the problem
shape: every dispatch is zero-padded to exactly ``max_batch`` samples
(:func:`pad_batch`), the model forward always sees one constant batch
shape, and per-row results are positionally invariant and independent
of the other rows' data. Pad rows are sliced off before completion.

Admission control lives here too:

* a bounded queue — a request that would push the queue past
  ``queue_limit`` entries is rejected up front with
  :class:`QueueFullError` (the server maps it to a 429-style response)
  and counted as ``serve.shed``;
* per-request deadlines — an entry whose deadline passed while it
  queued is failed with :class:`DeadlineExceededError` at dispatch time
  instead of wasting a forward pass on an answer nobody is waiting for;
* graceful drain — :meth:`MicroBatcher.drain` stops intake, serves
  everything already queued, and only then stops the dispatch task.

Requests larger than ``max_batch`` are split into ``max_batch``-sized
chunks (each a fixed-shape dispatch) and reassembled in order, so
arbitrary request sizes keep the bitwise guarantee.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, List, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["MicroBatcher", "QueueFullError", "DeadlineExceededError",
           "pad_batch"]


class QueueFullError(RuntimeError):
    """The bounded request queue is full — the request was shed (429)."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before it could be dispatched (504)."""


def pad_batch(inputs: np.ndarray, n: int) -> np.ndarray:
    """Zero-pad ``inputs`` (k, ...) to exactly ``n`` samples.

    The returned array always has ``n`` leading rows, so every forward
    pass downstream runs at one constant problem shape — the property
    that makes batched results bitwise equal to serving alone.
    """
    k = inputs.shape[0]
    if k > n:
        raise ValueError(f"batch of {k} samples exceeds pad size {n}")
    if k == n:
        return inputs
    pad = np.zeros((n - k,) + inputs.shape[1:], dtype=inputs.dtype)
    return np.concatenate([inputs, pad], axis=0)


@dataclass
class _Pending:
    """One queued fixed-shape chunk of a request."""

    inputs: np.ndarray              # (k, ...), k <= max_batch
    future: "asyncio.Future[np.ndarray]"
    enqueued_s: float               # perf_counter at enqueue
    deadline_s: Optional[float]     # absolute perf_counter deadline


class MicroBatcher:
    """Coalesce concurrent requests into fixed-shape batched forwards.

    ``run_batch`` receives a float array of exactly ``max_batch``
    samples (live requests first, zero padding after) and returns the
    per-sample outputs in the same order. Dispatch waits up to
    ``max_wait_ms`` from the oldest queued entry for more requests to
    coalesce, or fires immediately once ``max_batch`` samples are
    queued. The dispatch runs *synchronously* on the event-loop thread:
    its ``serve.batch`` span nests under whatever span the loop's
    thread holds open (the CLI's ``run.serve`` root), and new requests
    pile up in the socket buffers meanwhile — which is exactly what
    makes the next batch coalesce.
    """

    def __init__(self, run_batch: Callable[[np.ndarray], np.ndarray],
                 max_batch: int = 8, max_wait_ms: float = 2.0,
                 queue_limit: int = 64) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if queue_limit < 1:
            raise ValueError(f"queue_limit must be >= 1, got {queue_limit}")
        self.run_batch = run_batch
        self.max_batch = max_batch
        self.max_wait_s = max_wait_ms / 1000.0
        self.queue_limit = queue_limit
        self.n_batches = 0              # dispatches actually run
        self.n_requests = 0             # submit() calls accepted
        self.n_shed = 0                 # submit() calls rejected (queue full)
        self.n_expired = 0              # chunks dropped past their deadline
        self._queue: Deque[_Pending] = deque()
        # Created lazily on the loop thread (_wake_event): on Python 3.9
        # asyncio primitives bind get_event_loop() at construction, so
        # an Event built here (no running loop) would not belong to the
        # loop that start()/submit() later run on.
        self._wake: Optional[asyncio.Event] = None
        self._task: Optional["asyncio.Task[None]"] = None
        self._draining = False

    def _wake_event(self) -> asyncio.Event:
        """The dispatch wake-up Event, created on first use on the loop."""
        if self._wake is None:
            self._wake = asyncio.Event()
        return self._wake

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Start the dispatch task on the running event loop."""
        if self._task is None or self._task.done():
            self._draining = False
            self._wake_event()  # bind the Event to this running loop
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def drain(self) -> None:
        """Serve everything queued, then stop the dispatch task.

        New :meth:`submit` calls are rejected from the moment drain
        begins; entries already accepted all complete (or fail their
        deadline) before this returns.
        """
        self._draining = True
        self._wake_event().set()
        if self._task is not None:
            await self._task
            self._task = None

    @property
    def queued(self) -> int:
        """Entries currently waiting for dispatch."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    async def submit(self, inputs: np.ndarray,
                     deadline_ms: Optional[float] = None) -> np.ndarray:
        """Queue one request and await its outputs.

        ``inputs`` is ``(k, ...)``; the result is the corresponding
        ``(k, ...)`` output rows, bitwise independent of co-batched
        traffic. Raises :class:`QueueFullError` when the bounded queue
        cannot take the request and :class:`DeadlineExceededError` when
        ``deadline_ms`` elapses before dispatch.
        """
        arr = np.asarray(inputs)
        if arr.ndim < 1 or arr.shape[0] < 1:
            raise ValueError("a request needs at least one sample")
        if self._draining:
            raise QueueFullError("batcher is draining — not accepting work")
        chunks = [arr[i:i + self.max_batch]
                  for i in range(0, arr.shape[0], self.max_batch)]
        if len(self._queue) + len(chunks) > self.queue_limit:
            self.n_shed += 1
            obs_metrics.inc("serve.shed")
            raise QueueFullError(
                f"queue holds {len(self._queue)}/{self.queue_limit} "
                f"entries; request of {len(chunks)} chunk(s) shed")
        self.n_requests += 1
        obs_metrics.inc("serve.requests")
        now = time.perf_counter()
        # `is not None`, not truthiness: an explicit deadline_ms=0 means
        # "already expired", not "no deadline".
        deadline = (now + deadline_ms / 1000.0
                    if deadline_ms is not None else None)
        loop = asyncio.get_running_loop()
        futures: List["asyncio.Future[np.ndarray]"] = []
        for chunk in chunks:
            future = loop.create_future()
            self._queue.append(_Pending(inputs=chunk, future=future,
                                        enqueued_s=now, deadline_s=deadline))
            futures.append(future)
        self._wake_event().set()
        results = await asyncio.gather(*futures, return_exceptions=True)
        errors = [r for r in results if isinstance(r, BaseException)]
        if errors:
            raise errors[0]
        parts = [np.asarray(r) for r in results]
        return parts[0] if len(parts) == 1 else np.concatenate(parts, axis=0)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _run(self) -> None:
        while True:
            if not self._queue:
                if self._draining:
                    return
                wake = self._wake_event()
                wake.clear()
                await wake.wait()
                continue
            await self._coalesce_window()
            self._dispatch_one()

    async def _coalesce_window(self) -> None:
        """Wait out the batching window for the oldest queued entry."""
        while (not self._draining
               and self._queued_samples() < self.max_batch):
            head = self._queue[0]
            remaining = self.max_wait_s - (time.perf_counter()
                                           - head.enqueued_s)
            if remaining <= 0:
                return
            wake = self._wake_event()
            wake.clear()
            try:
                await asyncio.wait_for(wake.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return

    def _queued_samples(self) -> int:
        return sum(entry.inputs.shape[0] for entry in self._queue)

    def _dispatch_one(self) -> None:
        """Pull one fixed-shape batch off the queue and serve it."""
        now = time.perf_counter()
        taken: List[_Pending] = []
        samples = 0
        while self._queue:
            entry = self._queue[0]
            if entry.deadline_s is not None and now > entry.deadline_s:
                self._queue.popleft()
                self._expire(entry)
                continue
            if samples + entry.inputs.shape[0] > self.max_batch:
                break
            self._queue.popleft()
            taken.append(entry)
            samples += entry.inputs.shape[0]
        if not taken:
            return
        batch = (taken[0].inputs if len(taken) == 1
                 else np.concatenate([e.inputs for e in taken], axis=0))
        padded = pad_batch(batch, self.max_batch)
        try:
            with span("serve.batch", size=samples, entries=len(taken)):
                outputs = np.asarray(self.run_batch(padded))
        except Exception as exc:  # noqa: BLE001 — one bad batch must not kill the loop
            logger.warning("batch of %d sample(s) failed: %s: %s",
                           samples, type(exc).__name__, exc)
            for entry in taken:
                if not entry.future.done():
                    entry.future.set_exception(exc)
            return
        self.n_batches += 1
        obs_metrics.inc("serve.batches")
        obs_metrics.observe("serve.batch_size", samples)
        offset = 0
        for entry in taken:
            k = entry.inputs.shape[0]
            rows = np.ascontiguousarray(outputs[offset:offset + k])
            offset += k
            obs_metrics.observe("serve.queue_wait_s", now - entry.enqueued_s)
            if not entry.future.done():
                entry.future.set_result(rows)

    def _expire(self, entry: _Pending) -> None:
        self.n_expired += 1
        obs_metrics.inc("serve.expired")
        if not entry.future.done():
            entry.future.set_exception(DeadlineExceededError(
                "deadline passed while the request was queued"))
