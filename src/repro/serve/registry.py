"""Content-addressed registry of programmed crossbar deployments.

Programming a chip is the expensive part of serving: the deployer's
noise-independent preparation plus one programming cycle, BatchNorm
recalibration and PWT add up to seconds-to-minutes, while a server
restart should be instant. The registry closes that gap by storing the
*complete programmed state* — per-layer cell conductances, complement
masks, and the deployed model's full parameter/buffer state dict
(tuned offsets, recalibrated BatchNorm statistics) — in the existing
:mod:`repro.cache` object store, keyed by a ``serve_program`` stage key
over everything that determines the state: the float model weights,
the training data the post-programming tuning consumed, every config
field of the deployment, the compute backend, and the deployer /
programming seeds.

A restarted server with the same configuration therefore *warm-starts*:
it reconstructs the deployer (cheap — its stages are themselves
cached), loads the programmed arrays, and serves the bit-identical chip
state it served before. A mismatched or missing artifact falls back to
a fresh programming cycle, which is then stored for next time.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.backend import get_backend
from repro.cache import CacheStore, active_store, digest_array, digest_arrays
from repro.cache.keys import stage_key
from repro.core.pipeline import Deployer
from repro.core.pwt import crossbar_modules
from repro.device.lut import device_key_components
from repro.nn.module import Module
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.logging import get_logger
from repro.utils.rng import SeedLike, make_rng

logger = get_logger(__name__)

__all__ = ["ModelRegistry", "serve_program_key"]

#: Array-name prefix under which the deployed model's state dict lives
#: inside a registry artifact (keeps model keys clear of the per-layer
#: ``layer{i}_*`` crossbar arrays).
_STATE_PREFIX = "state."


def _seed_components(seed: SeedLike) -> Tuple[Any, ...]:
    """A fingerprintable tuple identifying one seed's random stream.

    Accepts the two picklable forms :func:`repro.utils.rng.spawn_seeds`
    hands out: plain integers and ``SeedSequence`` children (whose
    stream is fully determined by entropy + spawn key).
    """
    if isinstance(seed, np.random.SeedSequence):
        entropy = seed.entropy
        if isinstance(entropy, (list, tuple)):
            entropy = tuple(int(e) for e in entropy)
        elif entropy is not None:
            entropy = int(entropy)
        return ("seedseq", entropy, tuple(int(k) for k in seed.spawn_key))
    return ("int", int(seed))


def serve_program_key(deployer: Deployer, deployer_seed: SeedLike,
                      program_seed: SeedLike) -> str:
    """The content hash naming one programmed deployment.

    Folds in every input the programmed state depends on: the float
    model weights, the train set (BatchNorm recalibration and PWT read
    it), the device physics, the array family's declared capability
    dict and the scenario-stack parameters (the HAL inputs — two runs
    share programmed state only when the array would reproduce it),
    all deployment config fields, the kernel backend's numeric
    equivalence class (:attr:`KernelBackend.cache_tag` — ``accel`` and
    ``vectorized`` produce bitwise-identical programmed state, so they
    share artifacts and warm-start each other), and the seeds of both
    the deployer's preparation stream and the programming cycle itself.
    """
    cfg = deployer.config
    components: Dict[str, Any] = dict(device_key_components(deployer.device))
    components.update(deployer.array_key_components())
    components.update(
        model_state=digest_arrays(deployer.model.state_dict()),
        train_images=digest_array(deployer.train_data.images),
        train_labels=digest_array(deployer.train_data.labels),
        method=cfg.method_name,
        weight_bits=cfg.weight_bits,
        input_bits=cfg.input_bits,
        granularity=cfg.granularity,
        offset_bits=cfg.offset_bits,
        lut_source=cfg.lut_source,
        grad_batches=cfg.grad_batches,
        grad_batch_size=cfg.grad_batch_size,
        grad_floor_frac=cfg.grad_floor_frac,
        bias_tolerance=cfg.bias_tolerance,
        bn_recalibrate=cfg.bn_recalibrate,
        saf_rates=cfg.saf_rates,
        pwt=dataclasses.asdict(cfg.pwt),
        backend=get_backend().cache_tag,
        deployer_seed=_seed_components(deployer_seed),
        program_seed=_seed_components(program_seed))
    return stage_key("serve_program", **components)


class ModelRegistry:
    """Store/load programmed deployments through the artifact cache.

    ``store`` defaults to the env-resolved process store
    (:func:`repro.cache.active_store`); when caching is disabled the
    registry degrades to always programming fresh.
    """

    def __init__(self, store: Optional[CacheStore] = None) -> None:
        self.store = store if store is not None else active_store()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def store_deployment(self, key: str, deployed: Module,
                         metadata: Optional[Mapping[str, Any]] = None,
                         ) -> None:
        """Persist a programmed model's complete state under ``key``."""
        if self.store is None:
            return
        mods = crossbar_modules(deployed)
        if not mods:
            raise ValueError("model has no crossbar layers to register")
        arrays: Dict[str, np.ndarray] = {}
        for i, mod in enumerate(mods):
            arrays[f"layer{i}_cells"] = mod.cells
            arrays[f"layer{i}_complement"] = mod.complement_mask
        for name, value in deployed.state_dict().items():
            arrays[_STATE_PREFIX + name] = value
        self.store.put(key, arrays, stage="serve_program",
                       metadata={"n_layers": len(mods),
                                 **dict(metadata or {})})

    def load_deployment(self, key: str,
                        deployer: Deployer) -> Optional[Module]:
        """Rebuild the programmed model stored under ``key``, or ``None``.

        ``deployer`` must be configured identically to the one that
        produced the artifact (the key construction guarantees that
        when :func:`serve_program_key` is used); an artifact whose
        layout does not match is treated as a miss, not an error —
        the caller then programs fresh and overwrites it.
        """
        if self.store is None:
            return None
        arrays = self.store.get(key, stage="serve_program")
        if arrays is None:
            return None
        n_layers = len([k for k in arrays if k.endswith("_cells")])
        if n_layers != len(deployer.layers):
            logger.warning("registry artifact %s has %d layers, deployer "
                           "expects %d — reprogramming", key[:16], n_layers,
                           len(deployer.layers))
            return None
        cells = []
        for i, prep in enumerate(deployer.layers):
            layer_cells = arrays[f"layer{i}_cells"]
            expected = (prep.plan.rows, prep.plan.cols,
                        deployer.device.cells_per_weight)
            if layer_cells.shape != expected:
                logger.warning("registry artifact %s layer %d cells %s do "
                               "not match layout %s — reprogramming",
                               key[:16], i, layer_cells.shape, expected)
                return None
            cells.append(layer_cells)
        # Warm starts restore the HAL arrays too, so read_back/vmm on
        # a loaded deployment observe the stored chip state.
        for array, layer_cells in zip(deployer.arrays, cells):
            array.load_cells(layer_cells)
        deployed = deployer._build_deployed(cells, deployer.arrays)
        state = {name[len(_STATE_PREFIX):]: value
                 for name, value in arrays.items()
                 if name.startswith(_STATE_PREFIX)}
        deployed.load_state_dict(state)
        for i, mod in enumerate(crossbar_modules(deployed)):
            mask = arrays[f"layer{i}_complement"].astype(bool)
            mod.complement_mask = mask
            comp_rows = mod.plan.expand(mask.astype(np.float64))
            mod._sign = 1.0 - 2.0 * comp_rows
            mod._const = comp_rows * mod.qmax
        deployed.eval()
        return deployed

    # ------------------------------------------------------------------
    # the serving entry point
    # ------------------------------------------------------------------
    def get_or_program(self, deployer: Deployer, deployer_seed: SeedLike,
                       program_seed: SeedLike,
                       metadata: Optional[Mapping[str, Any]] = None,
                       ) -> Tuple[Module, str, bool]:
        """The programmed model for this configuration, warm if possible.

        Returns ``(model, key, warm_start)``. On a miss the deployment
        is programmed with ``program_seed`` — the same stream a
        ``repro deploy`` trial would use — and stored for the next
        server start.
        """
        key = serve_program_key(deployer, deployer_seed, program_seed)
        cached = self.load_deployment(key, deployer)
        if cached is not None:
            obs_metrics.inc("serve.registry_hits")
            logger.info("registry warm start from %s…", key[:16])
            return cached, key, True
        obs_metrics.inc("serve.registry_misses")
        with span("serve.program", key=key[:16]):
            deployed = deployer.program(rng=make_rng(program_seed))
        self.store_deployment(key, deployed, metadata=metadata)
        return deployed, key, False
