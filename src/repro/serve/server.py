"""Asyncio TCP server speaking newline-delimited JSON.

One connection carries any number of requests, each a single JSON
object on one line; the server answers each with a single JSON line.
Operations:

``{"op": "ping"}``
    liveness → ``{"ok": true, "op": "ping"}`` plus the model key.
``{"op": "infer", "indices": [...]}`` / ``{"op": "infer", "inputs": [...]}``
    run samples through the micro-batcher. Responses carry ``outputs``
    (per-sample logits — JSON round-trips float64 exactly, so the
    bitwise guarantee survives the wire), ``predictions`` (argmax), and
    in index mode ``labels`` so clients can score accuracy locally.
    Per-request ``deadline_ms`` overrides the server default.
``{"op": "stats"}``
    live counters (requests/batches/shed/expired, queue depth).
``{"op": "shutdown"}``
    acknowledge, then gracefully drain: intake stops, queued work is
    served, in-flight responses are written, the process exits 0.

Failure semantics mirror HTTP: a shed request gets ``code: 429``, an
expired deadline ``code: 504``, a malformed payload ``code: 400`` —
all as error *responses* on a healthy connection, never a dropped
socket.
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from typing import Any, Callable, Dict, Optional

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.serve.batcher import DeadlineExceededError, QueueFullError
from repro.serve.service import InferenceService
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["ServeServer"]

#: Cap on one request line (64 MiB) — far above any sane batch, small
#: enough that a garbage client cannot balloon the process.
_LINE_LIMIT = 64 * 1024 * 1024

#: After drain, wait at most this long for in-flight handler turns to
#: write their final responses before closing connections anyway.
_FLUSH_TIMEOUT_S = 5.0


class ServeServer:
    """Serve one :class:`InferenceService` over a loopback TCP socket.

    ``on_ready(host, port)`` fires once the socket is bound and the
    model is resolved — the CLI uses it to write the port file and echo
    the endpoint; tests use it to learn the ephemeral port.
    """

    def __init__(self, service: InferenceService, host: str = "127.0.0.1",
                 port: int = 0,
                 on_ready: Optional[Callable[[str, int], None]] = None,
                 ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self.on_ready = on_ready
        self.batcher = service.make_batcher()
        # The Events are built inside run(): on Python 3.9 asyncio
        # primitives bind get_event_loop() at construction, so creating
        # them here (no running loop) would attach them to a loop other
        # than the one asyncio.run() gives run().
        self._stop: Optional[asyncio.Event] = None
        self._stop_requested = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._active_requests = 0
        self._idle: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Bind, serve until shutdown/signal, drain, return."""
        self.service.prepare()
        self._loop = asyncio.get_running_loop()
        self._stop = stop = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        if self._stop_requested:        # request_stop() before run()
            stop.set()
        self.batcher.start()
        self._install_signal_handlers()
        server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port,
            limit=_LINE_LIMIT)
        bound = server.sockets[0].getsockname()
        self.port = int(bound[1])
        logger.info("serving on %s:%d", self.host, self.port)
        if self.on_ready is not None:
            self.on_ready(self.host, self.port)
        async with server:
            await stop.wait()
            logger.info("draining %d queued entr(ies)", self.batcher.queued)
            await self.batcher.drain()
            await self._wait_idle()
        logger.info("drained: %d request(s) in %d batch(es), %d shed",
                    self.batcher.n_requests, self.batcher.n_batches,
                    self.batcher.n_shed)

    def request_stop(self) -> None:
        """Begin graceful shutdown (idempotent, signal- and thread-safe).

        ``asyncio.Event`` is not thread-safe, so callers off the loop
        thread (a controlling test, an embedding application) are
        marshalled onto the loop; before ``run()`` only a plain flag is
        set and the serve loop exits immediately on entry.
        """
        self._stop_requested = True
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._set_stop)

    def _set_stop(self) -> None:
        """Flip the stop Event; runs on the loop thread."""
        self._stop_requested = True
        if self._stop is not None:
            self._stop.set()

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except (NotImplementedError, RuntimeError):
                # No loop-level signal support on this platform; Ctrl-C
                # then surfaces as KeyboardInterrupt in the CLI instead.
                return

    async def _wait_idle(self) -> None:
        if self._active_requests == 0 or self._idle is None:
            return
        try:
            await asyncio.wait_for(self._idle.wait(),
                                   timeout=_FLUSH_TIMEOUT_S)
        except asyncio.TimeoutError:
            logger.warning("%d request(s) still in flight after drain; "
                           "closing anyway", self._active_requests)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        stop = self._stop
        assert stop is not None  # connections only exist while run() serves
        try:
            while not stop.is_set():
                try:
                    line = await reader.readline()
                except (ConnectionResetError, ValueError):
                    # StreamReader.readline wraps a line-limit overrun
                    # in ValueError (it never surfaces LimitOverrunError
                    # itself); either way the stream is unusable, so
                    # close the connection instead of crashing the task.
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                response = await self._handle_line(line)
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown":
                    # The acknowledgement is on the wire; now stop.
                    self.request_stop()
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, Any]:
        self._active_requests += 1
        if self._idle is not None:
            self._idle.clear()
        started = time.perf_counter()
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                return _error(400, f"invalid JSON: {exc}")
            if not isinstance(request, dict):
                return _error(400, "request must be a JSON object")
            op = request.get("op", "infer")
            if op == "ping":
                return {"ok": True, "op": "ping",
                        "model_key": self.service.prepare().model_key}
            if op == "stats":
                return {"ok": True, "op": "stats", **self.stats()}
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}
            if op == "infer":
                return await self._handle_infer(request)
            return _error(400, f"unknown op {op!r}")
        finally:
            obs_metrics.observe("serve.request_wall_s",
                                time.perf_counter() - started)
            self._active_requests -= 1
            if self._active_requests == 0 and self._idle is not None:
                self._idle.set()

    async def _handle_infer(self, request: Dict[str, Any]) -> Dict[str, Any]:
        try:
            inputs, indices = self.service.resolve_inputs(request)
        except (ValueError, TypeError) as exc:
            return _error(400, str(exc))
        deadline_ms = request.get("deadline_ms",
                                  self.service.config.deadline_ms)
        if deadline_ms is not None and not isinstance(deadline_ms,
                                                      (int, float)):
            return _error(400, "deadline_ms must be a number of "
                               "milliseconds or null")
        try:
            outputs = await self.batcher.submit(inputs,
                                                deadline_ms=deadline_ms)
        except QueueFullError as exc:
            return _error(429, str(exc))
        except DeadlineExceededError as exc:
            return _error(504, str(exc))
        response: Dict[str, Any] = {
            "ok": True, "op": "infer",
            "outputs": outputs.tolist(),
            "predictions": np.argmax(outputs, axis=1).astype(int).tolist(),
        }
        if indices is not None:
            response["labels"] = self.service.labels_for(indices)
        return response

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        b = self.batcher
        prepared = self.service.prepare()
        return {"requests": b.n_requests, "batches": b.n_batches,
                "shed": b.n_shed, "expired": b.n_expired,
                "queued": b.queued, "max_batch": b.max_batch,
                "test_size": int(prepared.test_images.shape[0]),
                "model_key": prepared.model_key,
                "warm_start": prepared.warm_start}


def _error(code: int, message: str) -> Dict[str, Any]:
    return {"ok": False, "code": code, "error": message}
