"""Blocking stdlib client for the newline-delimited JSON serve protocol.

Used by the tier-1 tests, the CI serve-smoke job, and
``benchmarks/bench_serve.py`` — all of which need a dependency-free way
to talk to ``repro serve`` from another thread or process. One
:class:`ServeClient` wraps one TCP connection; it is *not* shared
between threads (each load-generator thread opens its own, like a real
client fleet would).
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path
from types import TracebackType
from typing import Any, Dict, Optional, Sequence, Tuple, Type, Union

from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["ServeClient", "ServeRequestError", "read_endpoint_file",
           "wait_for_server"]


class ServeRequestError(RuntimeError):
    """The server answered ``ok: false``; ``code`` mirrors HTTP."""

    def __init__(self, code: int, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class ServeClient:
    """One connection to a ``repro serve`` endpoint.

    Works as a context manager::

        with ServeClient(host, port) as client:
            reply = client.infer(indices=[0, 1, 2])
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7453,
                 timeout_s: float = 60.0) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port),
                                              timeout=timeout_s)
        self._io = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request object, return the decoded response.

        Raises :class:`ServeRequestError` on ``ok: false`` responses
        and :class:`ConnectionError` when the server hangs up.
        """
        self._io.write(json.dumps(payload).encode() + b"\n")
        self._io.flush()
        line = self._io.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response.get("ok", False):
            raise ServeRequestError(int(response.get("code", 500)),
                                    str(response.get("error", "unknown")))
        return response

    def close(self) -> None:
        try:
            self._io.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, exc_type: Optional[Type[BaseException]],
                 exc: Optional[BaseException],
                 tb: Optional[TracebackType]) -> None:
        self.close()

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def stats(self) -> Dict[str, Any]:
        return self.request({"op": "stats"})

    def shutdown(self) -> Dict[str, Any]:
        """Ask the server to drain gracefully and exit."""
        return self.request({"op": "shutdown"})

    def infer(self, indices: Optional[Sequence[int]] = None,
              inputs: Optional[Any] = None,
              deadline_ms: Optional[float] = None) -> Dict[str, Any]:
        """Run test-set rows (``indices``) or raw ``inputs`` samples."""
        payload: Dict[str, Any] = {"op": "infer"}
        if indices is not None:
            payload["indices"] = [int(i) for i in indices]
        if inputs is not None:
            payload["inputs"] = inputs
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        return self.request(payload)


def wait_for_server(host: str, port: int,
                    timeout_s: float = 60.0) -> None:
    """Block until the endpoint accepts connections (poll + ping)."""
    deadline = time.monotonic() + timeout_s
    delay = 0.05
    while True:
        try:
            with ServeClient(host, port, timeout_s=5.0) as client:
                client.ping()
            return
        except (OSError, ValueError, ConnectionError):
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"server at {host}:{port} not ready after "
                    f"{timeout_s:.0f}s") from None
            time.sleep(delay)
            delay = min(delay * 2, 1.0)


def read_endpoint_file(path: Union[str, Path],
                       timeout_s: float = 60.0) -> Tuple[str, int]:
    """Wait for a ``--port-file`` to appear and return ``(host, port)``.

    The CLI writes ``host:port`` once the socket is bound, so scripts
    started with ``--port 0`` (ephemeral) can find the endpoint without
    scraping stdout.
    """
    p = Path(path)
    deadline = time.monotonic() + timeout_s
    while True:
        if p.exists():
            text = p.read_text().strip()
            if text:
                host, _, port = text.rpartition(":")
                return host, int(port)
        if time.monotonic() > deadline:
            raise TimeoutError(f"endpoint file {p} not written after "
                               f"{timeout_s:.0f}s")
        time.sleep(0.05)
