"""The serving controller: configuration → programmed model → forwards.

:class:`InferenceService` owns everything between a serve configuration
and a batched forward pass: it builds (or cache-loads) the trained
workload, constructs the same :class:`~repro.core.pipeline.Deployer` a
``repro deploy`` run would, resolves the programmed model through the
:class:`~repro.serve.registry.ModelRegistry`, and exposes the
fixed-shape batch forward (:meth:`run_batch`) the micro-batcher drives.

Seed parity with ``repro deploy`` is deliberate: the deployer is built
with ``rng=seed + 10`` and the chip is programmed with the *first
spawned child* of ``seed + 20`` — exactly the stream trial 0 of
``evaluate_deployment(..., rng=seed + 20)`` consumes (SeedSequence
children are identical regardless of how many siblings are spawned).
A served response is therefore bitwise comparable to the one-shot
deploy evaluation of the same inputs, which is what the CI smoke gate
asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.nn.tensor import Tensor
from repro.serve.batcher import MicroBatcher
from repro.serve.registry import ModelRegistry
from repro.utils.logging import get_logger
from repro.utils.rng import spawn_seeds

logger = get_logger(__name__)

__all__ = ["InferenceService", "ServeConfig"]


@dataclass
class ServeConfig:
    """Everything that defines one serving deployment.

    The model-defining fields (workload through ``saf_rates``) mirror
    the ``repro deploy`` CLI flags and defaults; the serving knobs
    (``max_batch`` onward) shape the micro-batcher and admission
    control.
    """

    workload: str = "lenet"
    preset: str = "quick"
    method: str = "vawo*+pwt"
    sigma: float = 0.5
    granularity: int = 16
    cell_bits: int = 1
    seed: int = 0
    saf_rates: Optional[Tuple[float, float]] = None
    # HAL selection: registered array family (None = REPRO_ARRAY /
    # "sim") and the scenario-stack spec string (None = bare array).
    array: Optional[str] = None
    scenarios: Optional[str] = None
    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_limit: int = 64
    deadline_ms: Optional[float] = None

    def describe(self) -> str:
        extras = ""
        if self.array is not None:
            extras += f" array={self.array}"
        if self.scenarios:
            extras += f" scenarios={self.scenarios}"
        return (f"{self.workload}/{self.preset} method={self.method} "
                f"sigma={self.sigma} m={self.granularity} "
                f"cell={self.cell_bits}-bit seed={self.seed}{extras}")


@dataclass
class _Prepared:
    """The programmed artifacts a service resolves once at startup."""

    model: Any
    model_key: str
    warm_start: bool
    test_images: np.ndarray
    test_labels: np.ndarray
    float_accuracy: float


class InferenceService:
    """Build, program (or warm-start) and run one serving deployment.

    ``workload`` injects a pre-built :class:`~repro.eval.experiments.
    Workload` (tests use a tiny MLP) instead of resolving
    ``config.workload`` through the experiment builders; ``registry``
    defaults to a :class:`ModelRegistry` over the process cache store.
    """

    def __init__(self, config: ServeConfig,
                 registry: Optional[ModelRegistry] = None,
                 workload: Optional[Any] = None) -> None:
        self.config = config
        self.registry = registry if registry is not None else ModelRegistry()
        self._workload = workload
        self._prepared: Optional[_Prepared] = None

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------
    def prepare(self) -> "_Prepared":
        """Resolve the programmed model (idempotent; called once)."""
        if self._prepared is not None:
            return self._prepared
        from repro.core import DeployConfig, Deployer
        from repro.device.cell import MLC2, SLC
        from repro.eval.experiments import _default_pwt, build_workload

        cfg = self.config
        wl = self._workload
        if wl is None:
            wl = build_workload(cfg.workload, cfg.preset, cfg.seed)
        cell = SLC if cfg.cell_bits == 1 else MLC2
        deploy_cfg = DeployConfig.from_method(
            cfg.method, sigma=cfg.sigma, granularity=cfg.granularity,
            cell=cell, pwt=_default_pwt(cfg.preset), bn_recalibrate=True,
            saf_rates=cfg.saf_rates, array=cfg.array,
            scenarios=cfg.scenarios)
        deployer_seed = cfg.seed + 10
        deployer = Deployer(wl.model, wl.train, deploy_cfg,
                            rng=deployer_seed)
        # Trial 0 of evaluate_deployment(rng=seed + 20) programs with the
        # first spawned child of that seed; serving uses the same stream
        # so responses match the one-shot deploy evaluation bitwise.
        program_seed = spawn_seeds(cfg.seed + 20, 1)[0]
        model, key, warm = self.registry.get_or_program(
            deployer, deployer_seed, program_seed,
            metadata={"workload": cfg.workload, "preset": cfg.preset,
                      "method": cfg.method, "seed": cfg.seed})
        logger.info("serving %s (%s, key %s…)", cfg.describe(),
                    "warm start" if warm else "freshly programmed",
                    key[:16])
        self._prepared = _Prepared(
            model=model, model_key=key, warm_start=warm,
            test_images=np.ascontiguousarray(wl.test.images),
            test_labels=np.ascontiguousarray(wl.test.labels),
            float_accuracy=wl.float_accuracy)
        return self._prepared

    # ------------------------------------------------------------------
    # the forward the batcher drives
    # ------------------------------------------------------------------
    def run_batch(self, inputs: np.ndarray) -> np.ndarray:
        """One fixed-shape forward through the programmed crossbars."""
        prepared = self.prepare()
        return prepared.model(Tensor(inputs)).data

    def make_batcher(self) -> MicroBatcher:
        cfg = self.config
        return MicroBatcher(self.run_batch, max_batch=cfg.max_batch,
                            max_wait_ms=cfg.max_wait_ms,
                            queue_limit=cfg.queue_limit)

    # ------------------------------------------------------------------
    # request payload helpers (used by the server)
    # ------------------------------------------------------------------
    def resolve_inputs(self, payload: Mapping[str, Any],
                       ) -> Tuple[np.ndarray, Optional[List[int]]]:
        """Inputs for one ``infer`` request.

        The payload carries either ``indices`` (rows of the workload's
        held-out test set — the CI smoke and benchmarks use this so the
        client never ships image bytes) or ``inputs`` (raw nested-list
        samples). Returns ``(inputs, indices)`` with ``indices`` kept
        for label lookup in the response.
        """
        prepared = self.prepare()
        if "indices" in payload:
            indices = [int(i) for i in payload["indices"]]
            n = prepared.test_images.shape[0]
            for i in indices:
                if not 0 <= i < n:
                    raise ValueError(f"index {i} outside test set of {n}")
            inputs = np.ascontiguousarray(prepared.test_images[indices])
            return inputs, indices
        if "inputs" in payload:
            inputs = np.asarray(payload["inputs"], dtype=np.float64)
            if inputs.ndim == 1:
                inputs = inputs[np.newaxis, :]
            sample_shape = prepared.test_images.shape[1:]
            if inputs.shape[1:] != sample_shape:
                raise ValueError(
                    f"sample shape {inputs.shape[1:]} does not match the "
                    f"workload's {sample_shape}")
            return np.ascontiguousarray(inputs), None
        raise ValueError("infer payload needs 'indices' or 'inputs'")

    def labels_for(self, indices: Sequence[int]) -> List[int]:
        prepared = self.prepare()
        return [int(prepared.test_labels[i]) for i in indices]
