"""Long-lived inference serving over a programmed crossbar deployment.

The paper's end state is a chip that *serves traffic*: the crossbars
are written once, the digital offsets are tuned once, and then the
deployment answers inference requests for as long as the chip lives.
This package is that serving layer, split along Component / Controller /
Application lines:

Components (:mod:`repro.serve.batcher`, :mod:`repro.serve.registry`)
    :class:`MicroBatcher` coalesces concurrently queued requests into
    fixed-shape batches through the vectorized backend's batched path —
    with results **bitwise identical** to serving each request alone
    (every dispatch is zero-padded to exactly ``max_batch`` samples, so
    the BLAS kernels see one constant problem shape regardless of how
    requests happened to coalesce). It also owns admission control: a
    bounded queue with 429-style load shedding and per-request
    deadlines. :class:`ModelRegistry` stores programmed deployments in
    the content-addressed artifact cache under ``serve_program`` stage
    keys, so a restarted server warm-starts from the exact chip state
    it served before instead of re-programming.

Controller (:mod:`repro.serve.service`)
    :class:`InferenceService` builds (or cache-loads) the workload,
    runs the deployer, resolves the programmed model through the
    registry, and exposes the fixed-shape batch forward the batcher
    drives.

Application (:mod:`repro.serve.server`, :mod:`repro.serve.client`)
    An asyncio TCP server speaking newline-delimited JSON (``repro
    serve``), and a stdlib blocking loopback client used by tests, CI
    and the benchmarks.

Observability flows through :mod:`repro.obs`: ``serve.requests`` /
``serve.batches`` / ``serve.shed`` counters, ``serve.queue_wait_s`` /
``serve.batch_size`` / ``serve.request_wall_s`` histograms (reservoir
p50/p95/p99), and one ``serve.batch`` span per dispatch — all nested
under the CLI's ``run.serve`` root span.
"""

from repro.serve.batcher import (DeadlineExceededError, MicroBatcher,
                                 QueueFullError, pad_batch)
from repro.serve.client import (ServeClient, ServeRequestError,
                                read_endpoint_file, wait_for_server)
from repro.serve.registry import ModelRegistry, serve_program_key
from repro.serve.server import ServeServer
from repro.serve.service import InferenceService, ServeConfig

__all__ = [
    "MicroBatcher", "QueueFullError", "DeadlineExceededError", "pad_batch",
    "ModelRegistry", "serve_program_key",
    "InferenceService", "ServeConfig",
    "ServeServer",
    "ServeClient", "ServeRequestError", "wait_for_server",
    "read_endpoint_file",
]
