"""Reproduction of "Digital Offset for RRAM-based Neuromorphic Computing:
A Novel Solution to Conquer Cycle-to-cycle Variation" (DATE 2021).

Subpackages
-----------
``repro.nn``
    From-scratch numpy autograd framework and the paper's networks.
``repro.data``
    Synthetic stand-ins for MNIST / CIFAR-10.
``repro.quant``
    8-bit quantization, the ISAAC weight shift, and SLC/MLC bit slicing.
``repro.device``
    Lognormal CCV/DDV conductance model, cell models, E/Var LUTs.
``repro.xbar``
    Bit-accurate crossbar simulator (one- and two-crossbar schemes).
``repro.core``
    The paper's contribution: digital offsets, VAWO, VAWO*, PWT, and the
    end-to-end deployment pipeline.
``repro.arch``
    ISAAC tile area/power models (Tables I and II).
``repro.baselines``
    Plain scheme, DVA and PM comparison methods (Table III).
``repro.eval``
    Repeated-trial accuracy evaluation and named experiment configs.
"""

__version__ = "1.0.0"
