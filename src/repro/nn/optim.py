"""First-order optimizers: SGD with momentum, and Adam.

Both the NN training and the paper's PWT offset-tuning (Section III-D)
run through these; PWT simply hands an optimizer the offset parameters
instead of the network weights.
"""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base optimizer holding a parameter list."""

    def __init__(self, params: Iterable[Parameter], lr: float):
        self.params: List[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params: Iterable[Parameter], lr: float,
                 momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba) with bias correction."""

    def __init__(self, params: Iterable[Parameter], lr: float = 1e-3,
                 betas=(0.9, 0.999), eps: float = 1e-8,
                 weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1.0 - b1 ** self._t
        bias2 = 1.0 - b2 ** self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= b1
            m += (1.0 - b1) * grad
            v *= b2
            v += (1.0 - b2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer's learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
