"""LeNet-5, the paper's MNIST workload (Fig. 5(a), Table I)."""

from __future__ import annotations

from repro.nn.layers import (Conv2d, Flatten, Linear, MaxPool2d, ReLU,
                             Sequential)
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, make_rng


class LeNet(Module):
    """LeNet-5 for 1x28x28 inputs.

    Structure follows the classic design: two 5x5 conv stages with 2x2
    pooling followed by the 120-84-``num_classes`` dense head. All
    conv/linear layers are crossbar-mappable (see
    :mod:`repro.core.crossbar_layers`).
    """

    def __init__(self, num_classes: int = 10, rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        self.features = Sequential(
            Conv2d(1, 6, kernel_size=5, padding=2, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Conv2d(6, 16, kernel_size=5, rng=rng),
            ReLU(),
            MaxPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Linear(16 * 5 * 5, 120, rng=rng),
            ReLU(),
            Linear(120, 84, rng=rng),
            ReLU(),
            Linear(84, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))
