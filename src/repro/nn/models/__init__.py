"""Network architectures used by the paper's evaluation."""

from repro.nn.models.lenet import LeNet
from repro.nn.models.resnet import (ResNet, resnet18, resnet18_slim,
                                    resnet_tiny)
from repro.nn.models.vgg import VGG, vgg16, vgg16_slim

__all__ = ["LeNet", "ResNet", "resnet18", "resnet18_slim", "resnet_tiny",
           "VGG", "vgg16", "vgg16_slim"]
