"""VGG-16, the workload used in the paper's Table III comparison.

The paper compares against PM / DVA+PM on VGG-16 with CIFAR-10. We
provide the faithful configuration-D network (13 conv + 3 FC layers)
plus a width-scaled slim variant for CPU-bound benchmarking.
"""

from __future__ import annotations

from typing import List, Union

from repro.nn.layers import (BatchNorm2d, Conv2d, Flatten, Linear, MaxPool2d,
                             ReLU, Sequential)
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, make_rng

# Configuration D from Simonyan & Zisserman; "M" is a 2x2 max pool.
VGG16_CONFIG: List[Union[int, str]] = [
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
    512, 512, 512, "M", 512, 512, 512, "M",
]


class VGG(Module):
    """VGG-style network with BatchNorm, sized for 32x32 inputs."""

    def __init__(self, config: List[Union[int, str]], num_classes: int = 10,
                 width_scale: float = 1.0, in_channels: int = 3,
                 rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        layers: List[Module] = []
        ch = in_channels
        for item in config:
            if item == "M":
                layers.append(MaxPool2d(2))
            else:
                out_ch = max(1, int(item * width_scale))
                layers.append(Conv2d(ch, out_ch, 3, padding=1, bias=False, rng=rng))
                layers.append(BatchNorm2d(out_ch))
                layers.append(ReLU())
                ch = out_ch
        self.features = Sequential(*layers)
        hidden = max(4, int(512 * width_scale))
        self.classifier = Sequential(
            Flatten(),
            Linear(ch, hidden, rng=rng),
            ReLU(),
            Linear(hidden, hidden, rng=rng),
            ReLU(),
            Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.classifier(self.features(x))


def vgg16(num_classes: int = 10, rng: RngLike = None) -> VGG:
    """Faithful VGG-16 (configuration D) for 32x32 inputs."""
    return VGG(VGG16_CONFIG, num_classes=num_classes, rng=rng)


def vgg16_slim(num_classes: int = 10, width_scale: float = 0.125,
               rng: RngLike = None) -> VGG:
    """Width-scaled VGG-16 for CPU-bound benchmarking (same depth)."""
    return VGG(VGG16_CONFIG, num_classes=num_classes,
               width_scale=width_scale, rng=rng)
