"""ResNet-18 (CIFAR-style stem), the paper's second workload.

The paper evaluates ResNet-18 on CIFAR-10 (Fig. 5(b), 5(c)). We provide
the faithful architecture plus a width-scaled "slim" variant used by the
CPU-bound benchmark harness; the digital-offset machinery is agnostic to
width (it operates per crossbar column), so the slim model preserves
every qualitative behaviour the paper reports.
"""

from __future__ import annotations

from typing import List

from repro.nn.layers import (BatchNorm2d, Conv2d, GlobalAvgPool2d, Identity,
                             Linear, ReLU, Sequential)
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, make_rng


class BasicBlock(Module):
    """Two 3x3 conv-BN stages with an identity (or 1x1-projected) shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride,
                            padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = Sequential(
                Conv2d(in_channels, out_channels, 1, stride=stride,
                       bias=False, rng=rng),
                BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = Identity()

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class ResNet(Module):
    """ResNet with BasicBlocks and a CIFAR stem (3x3 conv, no initial pool)."""

    def __init__(self, blocks_per_stage: List[int], num_classes: int = 10,
                 base_width: int = 64, in_channels: int = 3,
                 rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        widths = [base_width * (2 ** i) for i in range(len(blocks_per_stage))]
        self.stem = Sequential(
            Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(widths[0]),
            ReLU(),
        )
        stages = []
        in_ch = widths[0]
        for stage_idx, (width, n_blocks) in enumerate(zip(widths, blocks_per_stage)):
            for block_idx in range(n_blocks):
                stride = 2 if (stage_idx > 0 and block_idx == 0) else 1
                stages.append(BasicBlock(in_ch, width, stride=stride, rng=rng))
                in_ch = width
        self.stages = Sequential(*stages)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.stem(x)
        x = self.stages(x)
        x = self.pool(x)
        return self.fc(x)


def resnet18(num_classes: int = 10, rng: RngLike = None) -> ResNet:
    """The faithful ResNet-18 configuration ([2, 2, 2, 2], base width 64)."""
    return ResNet([2, 2, 2, 2], num_classes=num_classes, base_width=64, rng=rng)


def resnet18_slim(num_classes: int = 10, base_width: int = 8,
                  rng: RngLike = None) -> ResNet:
    """Width-scaled ResNet-18 for CPU-bound benchmarking (same topology)."""
    return ResNet([2, 2, 2, 2], num_classes=num_classes,
                  base_width=base_width, rng=rng)


def resnet_tiny(num_classes: int = 10, rng: RngLike = None) -> ResNet:
    """A 2-stage residual net for fast unit tests."""
    return ResNet([1, 1], num_classes=num_classes, base_width=4, rng=rng)
