"""A from-scratch numpy deep-learning framework.

This subpackage substitutes for PyTorch in the reproduction: tensors
with reverse-mode autograd, the layers/losses/optimizers needed to train
LeNet / ResNet-18 / VGG-16, and the models themselves.
"""

from repro.nn import functional
from repro.nn.layers import (AvgPool2d, BatchNorm2d, Conv2d, Dropout,
                             Flatten, GlobalAvgPool2d, Identity, Linear,
                             MaxPool2d, ReLU, Sequential)
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn.module import Module, Parameter
from repro.nn.optim import SGD, Adam, StepLR
from repro.nn.tensor import Tensor, as_tensor, concatenate, stack

__all__ = [
    "Tensor", "as_tensor", "stack", "concatenate",
    "Module", "Parameter", "functional",
    "Linear", "Conv2d", "BatchNorm2d", "ReLU", "MaxPool2d", "AvgPool2d",
    "GlobalAvgPool2d", "Flatten", "Dropout", "Identity", "Sequential",
    "CrossEntropyLoss", "MSELoss",
    "SGD", "Adam", "StepLR",
]
