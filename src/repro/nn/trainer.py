"""A compact supervised-training loop for the paper's workloads."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.data.loaders import Dataset, iterate_batches
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, make_rng

logger = get_logger(__name__)


@dataclass
class TrainResult:
    """Loss/accuracy traces from :func:`train_classifier`."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_accuracies: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        return self.epoch_accuracies[-1] if self.epoch_accuracies else float("nan")


def evaluate_accuracy(model: Module, dataset: Dataset,
                      batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode)."""
    model.eval()
    correct = 0
    for images, labels in iterate_batches(dataset, batch_size, shuffle=False):
        logits = model(Tensor(images))
        correct += int((logits.argmax(axis=1) == labels).sum())
    return correct / len(dataset)


def train_classifier(model: Module, train_data: Dataset,
                     epochs: int = 5, batch_size: int = 64,
                     lr: float = 1e-3, optimizer: Optional[Optimizer] = None,
                     eval_data: Optional[Dataset] = None,
                     rng: RngLike = None) -> TrainResult:
    """Train ``model`` with cross-entropy; returns per-epoch traces.

    Uses Adam by default. ``eval_data`` (if given) is scored after every
    epoch; otherwise the training set is scored.
    """
    rng = make_rng(rng)
    optimizer = optimizer or Adam(model.parameters(), lr=lr)
    result = TrainResult()
    score_data = eval_data if eval_data is not None else train_data
    for epoch in range(epochs):
        model.train()
        losses = []
        with span("train.epoch", epoch=epoch):
            for images, labels in iterate_batches(train_data, batch_size,
                                                  rng=rng):
                optimizer.zero_grad()
                loss = F.cross_entropy(model(Tensor(images)), labels)
                loss.backward()
                optimizer.step()
                losses.append(loss.item())
            acc = evaluate_accuracy(model, score_data)
        result.epoch_losses.append(float(np.mean(losses)))
        result.epoch_accuracies.append(acc)
        obs_metrics.inc("train.batches", len(losses))
        obs_metrics.observe("train.epoch_loss", result.epoch_losses[-1])
        obs_metrics.observe("train.epoch_accuracy", acc)
        logger.info("epoch %d: loss %.4f acc %.4f", epoch,
                    result.epoch_losses[-1], acc)
    return result
