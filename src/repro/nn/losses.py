"""Loss functions as Module objects (the paper trains with cross-entropy)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.tensor import Tensor


class CrossEntropyLoss(Module):
    """Mean cross-entropy over integer class labels (expects raw logits)."""

    def forward(self, logits: Tensor, labels: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, labels)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, pred: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(pred, target)
