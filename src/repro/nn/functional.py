"""Differentiable neural-network operations on :class:`~repro.nn.tensor.Tensor`.

Convolution and pooling are implemented as autograd primitives (with
hand-written backward passes over im2col buffers) because composing them
from elementwise ops would be prohibitively slow in numpy. The window
kernels themselves (im2col / col2im / pooling windows) are *not*
implemented here: they dispatch to the active compute backend
(:func:`repro.backend.get_backend`), so the same autograd graph runs
unchanged on the loop-based ``reference`` kernels, the ``vectorized``
ones, or the ``accel`` set (which shares the vectorized window kernels
bitwise and accelerates the crossbar VMM).
Everything here is validated against finite differences in ``tests/nn``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.backend import get_backend
from repro.nn.tensor import Tensor
from repro.utils.contracts import check_shapes
from repro.utils.rng import make_rng


# ----------------------------------------------------------------------
# im2col / col2im (dispatched to the active backend)
# ----------------------------------------------------------------------
def im2col(x: np.ndarray, kh: int, kw: int, stride: int,
           pad: int) -> Tuple[np.ndarray, int, int]:
    """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW).

    Thin dispatch wrapper: the actual kernel belongs to the active
    compute backend (``REPRO_BACKEND`` / ``--backend``).
    """
    return get_backend().im2col(x, kh, kw, stride, pad)


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kh: int,
           kw: int, stride: int, pad: int) -> np.ndarray:
    """Fold columns back into an image of shape ``x_shape``,
    accumulating overlaps (im2col adjoint); dispatched to the backend."""
    return get_backend().col2im(cols, x_shape, kh, kw, stride, pad)


# ----------------------------------------------------------------------
# convolution
# ----------------------------------------------------------------------
@check_shapes("(n,c,_,_),(f,c,kh,kw)->(n,f,_,_)", arg_names=["x", "weight"])
def conv2d(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
           stride: int = 1, padding: int = 0) -> Tensor:
    """2-D convolution (cross-correlation), NCHW layout.

    ``weight`` has shape (F, C, kh, kw). Implemented as a batched matmul
    over im2col buffers; the backward pass reuses the saved buffer.
    """
    f, c, kh, kw = weight.shape
    cols, oh, ow = im2col(x.data, kh, kw, stride, padding)
    w2 = weight.data.reshape(f, c * kh * kw)
    out = np.einsum("fk,nkp->nfp", w2, cols, optimize=True)
    out = out.reshape(x.shape[0], f, oh, ow)
    if bias is not None:
        out = out + bias.data.reshape(1, f, 1, 1)
    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        g2 = g.reshape(g.shape[0], f, oh * ow)
        if bias is not None and bias.requires_grad:
            bias._accumulate(g2.sum(axis=(0, 2)))
        if weight.requires_grad:
            dw = np.einsum("nfp,nkp->fk", g2, cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dcols = np.einsum("fk,nfp->nkp", w2, g2, optimize=True)
            x._accumulate(col2im(dcols, x_shape, kh, kw, stride, padding))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out, parents, backward)


# ----------------------------------------------------------------------
# pooling
# ----------------------------------------------------------------------
def _pool_windows(x: np.ndarray, k: int, stride: int) -> np.ndarray:
    """View ``x`` (N, C, H, W) as windows (N, C, k*k, OH, OW);
    dispatched to the active backend."""
    return get_backend().pool_windows(x, k, stride)


@check_shapes("(n,c,_,_)->(n,c,_,_)", arg_names=["x"])
def max_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Max pooling with square windows. ``stride`` defaults to ``kernel_size``."""
    k = kernel_size
    stride = stride or k
    windows = _pool_windows(x.data, k, stride)
    arg = windows.argmax(axis=2)
    out = np.take_along_axis(windows, arg[:, :, None], axis=2)[:, :, 0]
    n, c, oh, ow = out.shape
    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dwin = np.zeros((n, c, k * k, oh, ow), dtype=np.float64)
        np.put_along_axis(dwin, arg[:, :, None], g[:, :, None], axis=2)
        # Fold windows back; reuse col2im by treating k*k as (kh*kw) per channel.
        dcols = dwin.reshape(n, c * k * k, oh * ow)
        x._accumulate(col2im(dcols, x_shape, k, k, stride, 0))

    return Tensor._make(out, (x,), backward)


@check_shapes("(n,c,_,_)->(n,c,_,_)", arg_names=["x"])
def avg_pool2d(x: Tensor, kernel_size: int, stride: Optional[int] = None) -> Tensor:
    """Average pooling with square windows."""
    k = kernel_size
    stride = stride or k
    windows = _pool_windows(x.data, k, stride)
    out = windows.mean(axis=2)
    n, c, oh, ow = out.shape
    x_shape = x.shape

    def backward(g: np.ndarray) -> None:
        if not x.requires_grad:
            return
        dwin = np.broadcast_to(g[:, :, None] / (k * k),
                               (n, c, k * k, oh, ow)).astype(np.float64)
        dcols = dwin.reshape(n, c * k * k, oh * ow)
        x._accumulate(col2im(dcols, x_shape, k, k, stride, 0))

    return Tensor._make(out, (x,), backward)


@check_shapes("(n,c,_,_)->(n,c)", arg_names=["x"])
def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial dims, returning (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# dense / normalisation / regularisation
# ----------------------------------------------------------------------
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias``; weight is (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def batch_norm2d(x: Tensor, gamma: Tensor, beta: Tensor,
                 running_mean: np.ndarray, running_var: np.ndarray,
                 training: bool, momentum: float = 0.1,
                 eps: float = 1e-5) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    Composed from differentiable primitives; running statistics are
    updated in place (outside the autograd graph) when ``training``.
    """
    c = x.shape[1]
    gamma_b = gamma.reshape(1, c, 1, 1)
    beta_b = beta.reshape(1, c, 1, 1)
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        running_mean *= (1.0 - momentum)
        running_mean += momentum * mean.data.reshape(c)
        running_var *= (1.0 - momentum)
        running_var += momentum * var.data.reshape(c)
        x_hat = (x - mean) / ((var + eps) ** 0.5)
    else:
        mean = running_mean.reshape(1, c, 1, 1)
        std = np.sqrt(running_var.reshape(1, c, 1, 1) + eps)
        x_hat = (x - mean) * (1.0 / std)
    return x_hat * gamma_b + beta_b


def dropout(x: Tensor, p: float, training: bool,
            rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    rng = make_rng(rng)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g * mask)

    return Tensor._make(x.data * mask, (x,), backward)


# ----------------------------------------------------------------------
# classification heads
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax as an autograd primitive."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    softmax = np.exp(out)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g - softmax * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax via the stable log-softmax primitive."""
    return log_softmax(x, axis=axis).exp()


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross-entropy between logits (N, K) and integer labels (N,).

    Fused primitive: forward uses log-sum-exp, backward is the classic
    ``(softmax - onehot) / N``.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1 or logits.ndim != 2:
        raise ValueError("cross_entropy expects logits (N, K) and labels (N,)")
    n = logits.shape[0]
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_z
    loss = -log_probs[np.arange(n), labels].mean()
    probs = np.exp(log_probs)

    def backward(g: np.ndarray) -> None:
        if logits.requires_grad:
            d = probs.copy()
            d[np.arange(n), labels] -= 1.0
            logits._accumulate(float(g) * d / n)

    return Tensor._make(np.asarray(loss), (logits,), backward)


def mse_loss(pred: Tensor, target: Tensor) -> Tensor:
    """Mean squared error."""
    diff = pred - target
    return (diff * diff).mean()
