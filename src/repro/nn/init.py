"""Weight initialisation schemes (Kaiming / Xavier)."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import RngLike, make_rng


def kaiming_normal(shape, fan_in: int, rng: RngLike = None) -> np.ndarray:
    """He-normal init: N(0, sqrt(2 / fan_in)), suited to ReLU networks."""
    rng = make_rng(rng)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def kaiming_uniform(shape, fan_in: int, rng: RngLike = None) -> np.ndarray:
    """He-uniform init: U(-b, b) with b = sqrt(6 / fan_in)."""
    rng = make_rng(rng)
    bound = np.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: RngLike = None) -> np.ndarray:
    """Glorot-uniform init: U(-b, b) with b = sqrt(6 / (fan_in + fan_out))."""
    rng = make_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)
