"""Reverse-mode automatic differentiation on numpy arrays.

This is the substrate that replaces PyTorch for this reproduction: a
:class:`Tensor` wraps an ``ndarray`` and records the operations applied
to it so that :meth:`Tensor.backward` can accumulate gradients into every
tensor created with ``requires_grad=True``.

The design is a classic define-by-run tape:

* every differentiable op returns a new ``Tensor`` holding references to
  its parent tensors and a ``_backward`` closure that, given the output
  gradient, adds the correct contribution to each parent's ``.grad``;
* ``backward()`` topologically sorts the graph and runs the closures in
  reverse order.

Only the ops the paper's workloads need are implemented (dense and
convolutional arithmetic, reductions, shape manipulation, elementwise
nonlinearities); each one's gradient is verified against central finite
differences in the test suite.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, Sequence]


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` after numpy broadcasting.

    When a forward op broadcast an operand from ``shape`` up to the
    output shape, the gradient w.r.t. that operand is the output gradient
    summed over every broadcast axis.
    """
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Array contents; converted to ``float64`` unless already a float
        dtype (float32 is kept to allow memory-lean training).
    requires_grad:
        Whether gradients should be accumulated into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(self, data: ArrayLike, requires_grad: bool = False,
                 _parents: Tuple["Tensor", ...] = (),
                 _backward: Optional[Callable[[np.ndarray], None]] = None,
                 name: Optional[str] = None):
        arr = np.asarray(data)
        if not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self.name = name

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def item(self) -> float:
        """Return the value of a single-element tensor as a python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_error()

    @staticmethod
    def _item_error():
        raise ValueError("item() only valid for single-element tensors")

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Clear any accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------
    # graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value: ArrayLike) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's ``.grad`` buffer."""
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=np.float64)
        self.grad += grad

    @staticmethod
    def _make(data: np.ndarray, parents: Tuple["Tensor", ...],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        """Create an op output, tracking grads only if some parent does."""
        requires = any(p.requires_grad for p in parents)
        if not requires:
            return Tensor(data)
        return Tensor(data, requires_grad=True, _parents=parents, _backward=backward)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(-g)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(g * self.data, other.shape))

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-g * self.data / other.data**2,
                                               other.shape))

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data ** exponent

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * exponent * self.data ** (exponent - 1))

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                ga = g @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(ga, self.shape))
            if other.requires_grad:
                gb = np.swapaxes(self.data, -1, -2) @ g
                other._accumulate(_unbroadcast(gb, other.shape))

        return self._make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g / self.data)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * (1.0 - out_data**2))

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * out_data * (1.0 - out_data))

        return self._make(out_data, (self,), backward)

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp values to ``[lo, hi]``; gradient is 1 inside, 0 outside."""
        mask = (self.data >= lo) & (self.data <= hi)
        out_data = np.clip(self.data, lo, hi)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * mask)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g * sign)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            self._accumulate(np.broadcast_to(grad, self.shape).copy())

        return self._make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        """Biased (population) variance, matching BatchNorm's convention."""
        mu = self.mean(axis=axis, keepdims=True)
        sq = (self - mu) ** 2
        return sq.mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g: np.ndarray) -> None:
            if not self.requires_grad:
                return
            expanded = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded)
            # Split gradient equally among ties (matches numpy semantics
            # closely enough for pooling-style uses).
            counts = mask.sum(axis=axis, keepdims=True)
            grad = np.asarray(g)
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.ndim for a in axes)
                for a in sorted(axes):
                    grad = np.expand_dims(grad, a)
            self._accumulate(mask * grad / counts)

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        in_shape = self.shape

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.reshape(in_shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(g.transpose(inverse))

        return self._make(out_data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, idx) -> "Tensor":
        out_data = self.data[idx]

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                full = np.zeros_like(self.data, dtype=np.float64)
                np.add.at(full, idx, g)
                self._accumulate(full)

        return self._make(out_data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes by ``pad`` on every side."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, width)

        def backward(g: np.ndarray) -> None:
            if self.requires_grad:
                sl = [slice(None)] * (self.ndim - 2) + \
                     [slice(pad, -pad), slice(pad, -pad)]
                self._accumulate(g[tuple(sl)])

        return self._make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the loss). Gradients
        accumulate: call :meth:`zero_grad` (or an optimizer's
        ``zero_grad``) between backward passes.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be specified for non-scalar outputs")
            grad = np.ones_like(self.data, dtype=np.float64)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.shape:
                raise ValueError(
                    f"grad shape {grad.shape} does not match tensor shape {self.shape}")

        # Topological order over the graph reachable from self.
        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------
    # comparisons (non-differentiable, return raw arrays)
    # ------------------------------------------------------------------
    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis, differentiable in each input."""
    tensors = list(tensors)
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(g: np.ndarray) -> None:
        pieces = np.split(g, len(tensors), axis=axis)
        for t, piece in zip(tensors, pieces):
            if t.requires_grad:
                t._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward)


def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along an existing axis, differentiable."""
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g: np.ndarray) -> None:
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(lo, hi)
                t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tuple(tensors), backward)


def as_tensor(value: ArrayLike) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy for Tensors)."""
    return value if isinstance(value, Tensor) else Tensor(value)
