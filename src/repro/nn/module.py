"""Module base class: parameter registration, train/eval mode, state dicts."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Tuple

import numpy as np

from repro.nn.tensor import Tensor


class Parameter(Tensor):
    """A Tensor that a Module registers as trainable state."""

    def __init__(self, data, requires_grad: bool = True):
        super().__init__(np.asarray(data, dtype=np.float64),
                         requires_grad=requires_grad)


class Module:
    """Base class for all network components.

    Subclasses assign :class:`Parameter`, buffers (plain ndarrays via
    :meth:`register_buffer`), and child ``Module`` instances as
    attributes; this class discovers them by introspection, mirroring the
    PyTorch API surface the paper's workflow relies on.
    """

    def __init__(self):
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # attribute plumbing
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (e.g. BatchNorm running stats)."""
        self._buffers[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield f"{prefix}{name}", p
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, b in self._buffers.items():
            yield f"{prefix}{name}", b
        for name, mod in self._modules.items():
            yield from mod.named_buffers(prefix=f"{prefix}{name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for name, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    # ------------------------------------------------------------------
    # mode / grads
    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # state dict
    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters and buffers as a flat name -> array mapping."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, b in self.named_buffers():
            state[name] = np.array(b, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Copy arrays from ``state`` into matching parameters/buffers."""
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        for name, value in state.items():
            if name in params:
                if params[name].shape != value.shape:
                    raise ValueError(
                        f"shape mismatch for {name}: "
                        f"{params[name].shape} vs {value.shape}")
                params[name].data[...] = value
            elif name in buffers:
                buffers[name][...] = value
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    # ------------------------------------------------------------------
    # call protocol
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)
