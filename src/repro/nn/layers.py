"""Standard neural-network layers built on the autograd core."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn.init import kaiming_normal
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, make_rng


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with weight of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            kaiming_normal((out_features, in_features), fan_in=in_features, rng=rng))
        if bias:
            bound = 1.0 / np.sqrt(in_features)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution, NCHW, square kernels."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: RngLike = None):
        super().__init__()
        rng = make_rng(rng)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(kaiming_normal(
            (out_channels, in_channels, kernel_size, kernel_size),
            fan_in=fan_in, rng=rng))
        if bias:
            bound = 1.0 / np.sqrt(fan_in)
            self.bias = Parameter(rng.uniform(-bound, bound, size=out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias,
                        stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (f"Conv2d({self.in_channels}, {self.out_channels}, "
                f"k={self.kernel_size}, s={self.stride}, p={self.padding})")


class BatchNorm2d(Module):
    """Per-channel batch normalisation with running statistics."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features))
        self.beta = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm2d(x, self.gamma, self.beta, self.running_mean,
                              self.running_var, training=self.training,
                              momentum=self.momentum, eps=self.eps)


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class MaxPool2d(Module):
    """Max pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    """Average pooling with square windows."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Spatial mean pooling to (N, C)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


class Flatten(Module):
    """Flatten all dims after the batch dim."""

    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)


class Dropout(Module):
    """Inverted dropout (active only in training mode)."""

    def __init__(self, p: float = 0.5, rng: RngLike = None):
        super().__init__()
        self.p = p
        self._rng = make_rng(rng)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


class Identity(Module):
    """No-op layer, useful for optional residual shortcuts."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Sequential(Module):
    """Run child modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._seq = list(modules)
        for i, mod in enumerate(modules):
            setattr(self, f"m{i}", mod)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._seq:
            x = mod(x)
        return x

    def __iter__(self):
        return iter(self._seq)

    def __len__(self) -> int:
        return len(self._seq)

    def __getitem__(self, idx: int) -> Module:
        return self._seq[idx]
