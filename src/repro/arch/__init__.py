"""ISAAC architecture models: tile spec, overhead (Table II), read power (Table I)."""

from repro.arch.area import (FA_AREA_MM2, FA_POWER_MW, MULT_AREA_MM2,
                             MULT_POWER_MW, SRAM_BIT_AREA_MM2,
                             SRAM_BIT_POWER_MW, OverheadBreakdown,
                             sum_multiply_latency_ok, tile_overhead)
from repro.arch.energy import (deployment_reading_power, reading_power,
                               relative_reading_power)
from repro.arch.isaac import DEFAULT_TILE, ISAACTile
from repro.arch.latency import (LatencyEstimate, granularity_tradeoff,
                                layer_latency, layer_vmm_cycles,
                                model_latency)

__all__ = [
    "ISAACTile", "DEFAULT_TILE",
    "OverheadBreakdown", "tile_overhead", "sum_multiply_latency_ok",
    "reading_power", "relative_reading_power", "deployment_reading_power",
    "LatencyEstimate", "layer_vmm_cycles", "layer_latency",
    "model_latency", "granularity_tradeoff",
]
