"""ISAAC tile parameters (the paper's baseline architecture).

Constants follow Shafiee et al., ISCA'16, as used by the paper's
Section IV-B: 128x128 crossbars, 100 ns cycle, 8 crossbar arrays per
IMA, 12 IMAs per tile, and the published tile area/power that Table II
normalises against (0.372 mm^2 / 330 mW).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ISAACTile:
    """Structural and physical parameters of one ISAAC tile."""

    crossbar_size: int = 128
    crossbars_per_ima: int = 8
    imas_per_tile: int = 12
    cycle_ns: float = 100.0
    area_mm2: float = 0.372
    power_mw: float = 330.0
    weight_bits: int = 8
    cell_bits: int = 2                  # ISAAC stores weights on 2-bit MLCs

    @property
    def crossbars_per_tile(self) -> int:
        return self.crossbars_per_ima * self.imas_per_tile

    @property
    def cells_per_weight(self) -> int:
        return -(-self.weight_bits // self.cell_bits)

    @property
    def weight_cols_per_crossbar(self) -> int:
        """The paper's ``l``: weight columns stored per crossbar (32)."""
        return self.crossbar_size // self.cells_per_weight

    def offset_registers_per_crossbar(self, granularity: int) -> int:
        """Eq. 9: ``H = S * l / m`` registers per crossbar."""
        if granularity < 1:
            raise ValueError("granularity must be positive")
        return -(-self.crossbar_size * self.weight_cols_per_crossbar
                 // granularity)

    def offset_registers_per_tile(self, granularity: int) -> int:
        return self.offset_registers_per_crossbar(granularity) \
            * self.crossbars_per_tile


DEFAULT_TILE = ISAACTile()
