"""Device reading power (Table I).

At a fixed read voltage a cell's read power is proportional to its
conductance (P = V^2 G), so the total device reading power of a
deployment is the sum of the programmed cell conductances. VAWO*
deliberately drives cells toward higher-resistance (lower-conductance)
states — CTWs are smaller than NTWs, with the offset registers carrying
the difference — so its total reading power drops below the plain
scheme's. Table I reports exactly this ratio.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.device.cell import CellType
from repro.quant.bitslice import slice_weights


def reading_power(values: np.ndarray, cell: CellType,
                  weight_bits: int = 8) -> float:
    """Total (relative-unit) read power of integer weights ``values``.

    Slices each weight into cells and sums the nominal conductances —
    the activity-independent component the paper's Table I compares.
    """
    digits = slice_weights(np.asarray(values), weight_bits, cell.bits)
    return float(cell.read_power(digits).sum())


def relative_reading_power(ctw_layers: Iterable[np.ndarray],
                           ntw_layers: Iterable[np.ndarray],
                           cell: CellType,
                           weight_bits: int = 8) -> float:
    """Table I's metric: VAWO* read power relative to the plain scheme.

    ``ctw_layers`` are the per-layer CTW matrices chosen by VAWO*;
    ``ntw_layers`` the corresponding NTWs the plain scheme would write.
    """
    ctw_layers = list(ctw_layers)
    ntw_layers = list(ntw_layers)
    if len(ctw_layers) != len(ntw_layers):
        raise ValueError("layer lists must have equal length")
    if not ctw_layers:
        raise ValueError("need at least one layer")
    power_vawo = sum(reading_power(c, cell, weight_bits) for c in ctw_layers)
    power_plain = sum(reading_power(n, cell, weight_bits) for n in ntw_layers)
    return power_vawo / power_plain


def deployment_reading_power(deployer, cell: CellType = None) -> float:
    """Relative reading power of a prepared :class:`Deployer`.

    Compares the deployer's chosen CTWs against its NTWs (the plain
    scheme's write image) using its own cell technology.
    """
    cell = cell or deployer.config.cell
    ctws = [prep.assignment.ctw for prep in deployer.layers]
    ntws = [prep.ntw for prep in deployer.layers]
    return relative_reading_power(ctws, ntws, cell,
                                  deployer.config.weight_bits)
