"""Cycle-count model for crossbar VMM under limited wordline activation.

The paper (Section III-A) notes that only a limited number of wordlines
are activated per cycle, and that sharing an offset with fewer devices
— activating fewer wordlines — "costs more cycles to complete a VMM
operation". This module quantifies that trade-off: with ``m`` wordlines
active per cycle and bit-serial 8-bit inputs, a matrix of R rows needs

``cycles = input_bits * ceil(R / m)``   per crossbar column pass,

so halving the sharing granularity doubles the VMM latency. Together
with :mod:`repro.arch.area` this completes the granularity design
space: registers and accuracy favour small m, latency and adder area
favour large m.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.arch.isaac import DEFAULT_TILE, ISAACTile


@dataclass(frozen=True)
class LatencyEstimate:
    """VMM latency of one layer on the crossbar substrate."""

    rows: int
    granularity: int
    input_bits: int
    cycles: int
    nanoseconds: float

    @property
    def microseconds(self) -> float:
        return self.nanoseconds / 1e3


def layer_vmm_cycles(rows: int, granularity: int, input_bits: int = 8,
                     crossbar_size: int = 128) -> int:
    """Cycles to stream one input vector through one layer's crossbars.

    Row tiles beyond the crossbar size run on *parallel* crossbars, so
    only the per-crossbar row count (capped at ``crossbar_size``)
    serialises into cycles.
    """
    if rows < 1 or granularity < 1 or input_bits < 1:
        raise ValueError("rows, granularity, input_bits must be positive")
    rows_per_xbar = min(rows, crossbar_size)
    groups = -(-rows_per_xbar // granularity)
    return input_bits * groups


def layer_latency(rows: int, granularity: int, input_bits: int = 8,
                  tile: ISAACTile = DEFAULT_TILE) -> LatencyEstimate:
    """Latency of one layer's VMM at the tile's clock."""
    cycles = layer_vmm_cycles(rows, granularity, input_bits,
                              tile.crossbar_size)
    return LatencyEstimate(rows=rows, granularity=granularity,
                           input_bits=input_bits, cycles=cycles,
                           nanoseconds=cycles * tile.cycle_ns)


def model_latency(layer_rows: Iterable[int], granularity: int,
                  input_bits: int = 8,
                  tile: ISAACTile = DEFAULT_TILE) -> float:
    """Total nanoseconds for a non-pipelined pass over all layers.

    (ISAAC pipelines layers in steady state; this is the latency of a
    single inference through the pipe, the quantity the granularity
    trade-off changes.)
    """
    return sum(layer_latency(r, granularity, input_bits, tile).nanoseconds
               for r in layer_rows)


def granularity_tradeoff(layer_rows: Iterable[int],
                         granularities: Iterable[int] = (16, 32, 64, 128),
                         tile: ISAACTile = DEFAULT_TILE
                         ) -> List[Tuple[int, float, int]]:
    """(m, latency_ns, registers_per_crossbar) across granularities."""
    layer_rows = list(layer_rows)
    out = []
    for m in granularities:
        out.append((m, model_latency(layer_rows, m, tile=tile),
                    tile.offset_registers_per_crossbar(m)))
    return out
