"""Area/power overhead of the digital-offset support (Table II).

The paper adds, per crossbar (Fig. 4):

* one input-sum adder per weight column (NOT time-multiplexed): in each
  cycle it adds the ``m`` 1-bit inputs of the active wordline group —
  modelled as ``m - 1`` full-adder-equivalent slices;
* one 8x8 Wallace-tree multiplier, shared by all columns
  (time-multiplexed), computing ``b * sum(x)``;
* ``H = S * l / m`` 8-bit offset registers (Eq. 9), built from SRAM.

The unit costs below are *calibrated to the paper's published Table II
totals* (0.049 mm^2 / 8.05 mW at m=16; 0.064 mm^2 / 22.77 mW at m=128,
on a 0.372 mm^2 / 330 mW tile): the paper synthesised its adder and
multiplier with Design Compiler on the Nangate 45 nm library and scaled
to 32 nm, which we cannot re-run offline, so we invert its two published
design points into per-unit constants instead. The *model structure*
(what scales with m, what is fixed) is exactly the paper's; the
constants carry its synthesis results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.arch.isaac import DEFAULT_TILE, ISAACTile

# Calibrated unit costs (see module docstring).
FA_AREA_MM2 = 1.19e-7           # effective full-adder slice area
FA_POWER_MW = 4.53e-5           # per slice, at ISAAC's 100 ns cycle
MULT_AREA_MM2 = 1.46e-4         # one 8x8 Wallace-tree multiplier
MULT_POWER_MW = 5.2e-2
SRAM_BIT_AREA_MM2 = 1.5e-7      # per offset-register bit
SRAM_BIT_POWER_MW = 5.0e-6


@dataclass
class OverheadBreakdown:
    """Per-component area/power overhead of one ISAAC tile."""

    granularity: int
    adder_area_mm2: float
    multiplier_area_mm2: float
    register_area_mm2: float
    adder_power_mw: float
    multiplier_power_mw: float
    register_power_mw: float
    tile: ISAACTile = field(default_factory=lambda: DEFAULT_TILE)

    @property
    def total_area_mm2(self) -> float:
        return (self.adder_area_mm2 + self.multiplier_area_mm2
                + self.register_area_mm2)

    @property
    def total_power_mw(self) -> float:
        return (self.adder_power_mw + self.multiplier_power_mw
                + self.register_power_mw)

    @property
    def area_overhead_fraction(self) -> float:
        return self.total_area_mm2 / self.tile.area_mm2

    @property
    def power_overhead_fraction(self) -> float:
        return self.total_power_mw / self.tile.power_mw

    def as_dict(self) -> Dict[str, float]:
        return {
            "granularity": self.granularity,
            "total_area_mm2": self.total_area_mm2,
            "total_power_mw": self.total_power_mw,
            "area_overhead": self.area_overhead_fraction,
            "power_overhead": self.power_overhead_fraction,
        }


def tile_overhead(granularity: int, tile: ISAACTile = DEFAULT_TILE,
                  offset_bits: int = 8) -> OverheadBreakdown:
    """Digital-offset hardware overhead of one tile at granularity m."""
    if granularity < 1:
        raise ValueError("granularity must be positive")
    n_xbar = tile.crossbars_per_tile
    l_cols = tile.weight_cols_per_crossbar
    # Adders: one per weight column, each summing m 1-bit inputs.
    fa_slices = n_xbar * l_cols * max(granularity - 1, 1)
    # Multiplier: one per crossbar, time-multiplexed across columns.
    n_mult = n_xbar
    # Registers: Eq. 9 per crossbar.
    reg_bits = tile.offset_registers_per_tile(granularity) * offset_bits
    return OverheadBreakdown(
        granularity=granularity,
        adder_area_mm2=fa_slices * FA_AREA_MM2,
        multiplier_area_mm2=n_mult * MULT_AREA_MM2,
        register_area_mm2=reg_bits * SRAM_BIT_AREA_MM2,
        adder_power_mw=fa_slices * FA_POWER_MW,
        multiplier_power_mw=n_mult * MULT_POWER_MW,
        register_power_mw=reg_bits * SRAM_BIT_POWER_MW,
        tile=tile,
    )


def sum_multiply_latency_ok(granularity: int,
                            tile: ISAACTile = DEFAULT_TILE) -> bool:
    """Check the paper's pipeline claim (Section IV-B2).

    The Sum+Multi operation (an m-input adder tree followed by the 8x8
    multiply) must finish within ISAAC's 100 ns cycle. A first-order
    gate-delay model: ~0.1 ns per adder-tree level at 32 nm plus ~2 ns
    for the Wallace multiplier — comfortably under 100 ns for every
    granularity the paper considers, reproducing its conclusion that the
    operation integrates into the pipeline with no latency increase.
    """
    import math
    tree_levels = max(1, math.ceil(math.log2(max(granularity, 2))))
    latency_ns = 0.1 * tree_levels + 2.0
    return latency_ns <= tile.cycle_ns
