"""Grid-scoped one-shot broadcast of the trial callable to workers.

Every trial of a Monte-Carlo grid runs the *same* callable — typically
a ``partial`` closing over a fully-prepared ``Deployer`` and the test
set, hundreds of kilobytes to megabytes of read-only arrays. Shipping
that with every :class:`~repro.parallel.worker.TrialTask` made a
``--jobs N`` grid pay N×trials pickling costs for identical state.

This module ships it **once per worker** instead:

1. the parent encodes the callable with :func:`encode_broadcast` —
   one pickle blob per grid. Large ``np.ndarray`` payloads (≥ 1 MiB)
   are diverted into ``multiprocessing.shared_memory`` segments where
   available (protocol-5 ``reducer_override``), so even the one-time
   copy per worker becomes a zero-copy attach;
2. ``ProcessPoolExecutor(initializer=...)`` hands the blob to
   :func:`install_broadcast` exactly once per worker process;
3. tasks travel with ``fn=None`` and
   :func:`~repro.parallel.worker.run_trial_task` falls back to the
   installed :func:`broadcast_fn`.

Workers deliberately *unregister* attached segments from their
``resource_tracker`` (or attach with ``track=False`` on Pythons that
support it): the parent owns the segment lifetime and unlinks after
the grid, so a tracked worker copy would double-unlink at exit.
Set ``REPRO_SHM=0`` to disable the shared-memory diversion; any
failure to create/attach segments falls back to plain pickling.
"""

from __future__ import annotations

import io
import os
import pickle
from typing import Any, List, Optional, Tuple

import numpy as np

from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["broadcast_fn", "encode_broadcast", "install_broadcast",
           "release_segments", "shm_enabled"]

#: Arrays at or above this size are diverted into shared memory.
MIN_SHM_BYTES = 1 << 20

#: Worker-side slot the pool initializer fills (one fn per process).
_BROADCAST_FN: Optional[Any] = None

#: Worker-side references that keep attached segments mapped while the
#: broadcast fn is alive (closing them would invalidate its arrays).
_WORKER_SEGMENTS: List[Any] = []


def shm_enabled() -> bool:
    """Whether large-array shared-memory diversion is enabled."""
    if os.environ.get("REPRO_SHM", "").strip().lower() in ("0", "off"):
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:
        return False
    return True


def _attach_shm_array(name: str, shape: Tuple[int, ...],
                      dtype_str: str) -> np.ndarray:
    """Worker-side reducer: map segment ``name`` as a read-only array.

    Returns a ``shape``-shaped view backed by the shared segment (no
    copy). The segment handle is parked in a module global so the
    mapping outlives this call; tracking is disabled because the parent
    owns the unlink. On Pythons without ``track=`` (< 3.13, where
    attaching spuriously registers with the resource tracker),
    registration is suppressed for the duration of the attach —
    unregistering afterwards instead would clobber the *parent's*
    registration when fork-started workers share its tracker process.
    """
    from multiprocessing import shared_memory
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:                      # track= is 3.13+
        from multiprocessing import resource_tracker
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            shm = shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register
    _WORKER_SEGMENTS.append(shm)  # fork-ok — worker-local pin keeping attached segments mapped
    array: np.ndarray = np.ndarray(shape, dtype=np.dtype(dtype_str),
                                   buffer=shm.buf)
    array.flags.writeable = False
    return array


class _ShmPickler(pickle.Pickler):
    """Protocol-5 pickler that diverts big arrays into shared memory."""

    def __init__(self, file: io.BytesIO, segments: List[Any]) -> None:
        super().__init__(file, protocol=5)
        self.segments = segments

    def reducer_override(self, obj: Any) -> Any:
        if type(obj) is np.ndarray and obj.nbytes >= MIN_SHM_BYTES:
            from multiprocessing import shared_memory
            source = np.ascontiguousarray(obj)
            shm = shared_memory.SharedMemory(create=True, size=source.nbytes)
            self.segments.append(shm)
            np.ndarray(source.shape, dtype=source.dtype,
                       buffer=shm.buf)[...] = source
            return (_attach_shm_array,
                    (shm.name, source.shape, source.dtype.str))
        return NotImplemented


def encode_broadcast(fn: Any) -> Tuple[bytes, List[Any]]:
    """Pickle ``fn`` once for the whole grid.

    Returns ``(blob, segments)``: the bytes every worker's initializer
    receives and the shared-memory segments the blob references. The
    caller owns the segments and must :func:`release_segments` them
    after the grid (workers only attach). Any shared-memory failure
    falls back to a plain pickle with no segments.
    """
    if shm_enabled():
        buffer = io.BytesIO()
        segments: List[Any] = []
        try:
            _ShmPickler(buffer, segments).dump(fn)
            return buffer.getvalue(), segments
        except Exception as exc:           # noqa: BLE001 — fall back whole
            release_segments(segments)
            logger.warning("shared-memory broadcast failed (%s: %s); "
                           "falling back to plain pickling",
                           type(exc).__name__, exc)
    return pickle.dumps(fn, protocol=pickle.HIGHEST_PROTOCOL), []


def release_segments(segments: List[Any]) -> None:
    """Close and unlink parent-owned segments (idempotent, best-effort).

    Linux keeps the backing memory alive until every worker's mapping
    closes, so unlinking immediately after the grid is safe even with
    abandoned (timed-out) workers still holding attachments.
    """
    for shm in segments:
        for op in (shm.close, shm.unlink):
            try:
                op()
            except Exception:              # noqa: BLE001 — already gone
                pass
    segments.clear()


def install_broadcast(blob: bytes) -> None:
    """Pool-initializer: decode ``blob`` and install the grid callable.

    Runs exactly once per worker process, before any task; attached
    segments stay mapped for the worker's lifetime.
    """
    global _BROADCAST_FN
    _BROADCAST_FN = pickle.loads(blob)  # fork-ok — initializer slot, set once per worker


def broadcast_fn() -> Optional[Any]:
    """The callable installed by :func:`install_broadcast`, if any."""
    return _BROADCAST_FN
