"""Worker-process bootstrap for the parallel trial executor.

A :class:`TrialTask` is the complete, picklable description of one
Monte-Carlo trial: the trial index, its seed material (a
``SeedSequence`` child — see :mod:`repro.parallel.rngshard`) and the
trial callable. :func:`run_trial_task` is the module-level entry point
``ProcessPoolExecutor`` invokes in the child; it

1. synchronises the child's observability switch with the parent's
   (``obs_active``) and **resets** the child-global tracer/metrics —
   pool workers are reused across trials, and fork-started children
   inherit the parent's recorded state, so without the reset a trial's
   payload would smuggle foreign spans back;
2. rebuilds the trial generator and runs the callable, converting any
   exception into an error payload (a raising trial must not poison the
   pool);
3. snapshots the child's metrics registry and span records into the
   returned :class:`TrialPayload` so the parent can merge them
   (:mod:`repro.parallel.merge`) and ``--profile`` manifests stay
   complete.

Only the process backend routes through this module — serial and thread
execution share the parent's registries directly and need no snapshot
round-trip.
"""

from __future__ import annotations

import traceback as _traceback
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from repro.obs.trace import TraceContext
from repro.parallel.rngshard import rng_for_trial
from repro.utils.rng import SeedLike

__all__ = ["TrialTask", "TrialPayload", "run_trial_task"]

#: Signature every trial callable follows: ``fn(trial_index, rng)``.
TrialFn = Callable[[int, np.random.Generator], Any]


@dataclass
class TrialTask:
    """One trial's shippable work order.

    ``fn=None`` means "use the grid callable the pool initializer
    broadcast to this worker" (:mod:`repro.parallel.broadcast`) — the
    process backend strips the shared callable from every task so each
    trial ships only its index and seed.
    """

    index: int
    seed: SeedLike
    fn: Optional[TrialFn]
    obs_active: bool = False
    #: Trace coordinates of the submitting span (``--profile`` runs):
    #: the worker binds them so its span tree re-roots under the
    #: parent's ``parallel.trials`` span on merge.
    trace: Optional[TraceContext] = None
    #: The parent's resolved default array family at submit time:
    #: workers re-apply it so trial callables that resolve the HAL
    #: registry (:func:`repro.array.get_array`) see the parent's
    #: ``--array`` / ``set_default_array`` choice even in spawn-started
    #: or reused pool processes where the override global is absent.
    array: Optional[str] = None


@dataclass
class TrialPayload:
    """What a worker sends back: result or error, plus obs snapshots."""

    index: int
    ok: bool
    result: Any = None
    error: Optional[str] = None          # repr() of the raised exception
    traceback: Optional[str] = None
    duration_s: float = 0.0
    metrics: Optional[Dict[str, Any]] = None
    spans: Optional[List[Dict[str, Any]]] = field(default=None)


def run_trial_task(task: TrialTask) -> TrialPayload:
    """Execute one trial inside a worker process (see module docs)."""
    from repro.obs import metrics as obs_metrics
    from repro.obs import runtime as obs_runtime
    from repro.obs import trace as obs_trace

    if task.obs_active:
        obs_runtime.enable()
    else:
        obs_runtime.disable()
    if task.array is not None:
        from repro.array import set_default_array
        set_default_array(task.array)  # fork-ok — syncs the worker's HAL default with the parent's
    obs_trace.TRACER.reset()
    obs_metrics.REGISTRY.reset()
    if task.obs_active and task.trace is not None:
        obs_trace.TRACER.bind_context(task.trace)

    t0 = perf_counter()
    ok, result, error, tb = True, None, None, None
    try:
        fn = task.fn
        if fn is None:
            from repro.parallel.broadcast import broadcast_fn
            fn = broadcast_fn()
            if fn is None:
                raise RuntimeError(
                    "task carries no callable and no grid broadcast is "
                    "installed in this worker")
        result = fn(task.index, rng_for_trial(task.seed))
    except Exception as exc:            # noqa: BLE001 — shipped to parent
        ok, result = False, None
        error, tb = repr(exc), _traceback.format_exc()
    duration = perf_counter() - t0

    metrics_snapshot = spans = None
    if task.obs_active:
        metrics_snapshot = obs_metrics.REGISTRY.snapshot()
        spans = obs_trace.TRACER.records()
        obs_trace.TRACER.reset()
        obs_metrics.REGISTRY.reset()
    return TrialPayload(index=task.index, ok=ok, result=result, error=error,
                        traceback=tb, duration_s=duration,
                        metrics=metrics_snapshot, spans=spans)
