"""Parallel Monte-Carlo trial executor.

The paper's headline numbers average accuracy over independent
programming cycles: every trial re-samples the CCV noise, re-runs the
deployment pipeline and re-evaluates — embarrassingly parallel work
that the serial loops in :mod:`repro.eval.accuracy` and the experiment
runners used to burn one core on. :class:`TrialExecutor` shards such a
trial grid across a ``ProcessPoolExecutor`` while keeping three
guarantees:

**Determinism.** Per-trial generators come from ``SeedSequence.spawn``
children (:mod:`repro.parallel.rngshard`), the same streams the serial
loop uses, and results are collected by trial index — so ``jobs=N`` is
bit-identical to ``jobs=1`` at the same seed, on every backend.

**Robustness.** A trial that raises is retried once (configurable) and
then recorded as a fault instead of aborting the grid; with a per-trial
``timeout_s`` the process backend also times out hung trials
(retry-once-then-fault, the overdue worker is abandoned). Faulted
grids surface as :class:`TrialFaultError` when results are collected.

**Observability.** Worker processes snapshot their span/metric state
into the returned payloads and the executor merges them back into the
parent registries (:mod:`repro.parallel.merge`), so a ``--profile``
manifest of a ``--jobs 4`` run reports the same trial counters a
serial run would.

Backends: ``process`` (the default for ``jobs > 1``), ``thread`` (the
automatic fallback for pickling-hostile callables and platforms whose
process pools cannot start), and ``serial`` (``jobs=1``; runs in the
caller's thread exactly like the old loops). Timeouts are enforced on
the process backend only — a thread cannot be killed.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import FIRST_COMPLETED, Future
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from time import perf_counter
from traceback import format_exc
from typing import Any, Dict, List, Optional, Sequence

from repro.array import default_array_name
from repro.obs import metrics as obs_metrics
from repro.obs import runtime as obs_runtime
from repro.obs import trace as obs_trace
from repro.obs.trace import span
from repro.parallel.broadcast import (encode_broadcast, install_broadcast,
                                      release_segments)
from repro.parallel.merge import merge_trial_payload
from repro.parallel.rngshard import rng_for_trial, trial_seeds
from repro.parallel.worker import TrialFn, TrialPayload, TrialTask, run_trial_task
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, SeedLike

logger = get_logger(__name__)

__all__ = ["BACKENDS", "TrialExecutor", "TrialFaultError", "TrialOutcome",
           "TrialRun", "resolve_jobs", "run_trials"]

BACKENDS = ("process", "thread", "serial")


def resolve_jobs(jobs: Optional[int], n_trials: int) -> int:
    """Effective worker count: ``None``/``0`` = one per core, capped.

    Explicit values pass through (still capped by the trial count so a
    ``--jobs 8`` two-trial run does not spawn six idle workers);
    negative values are rejected.
    """
    if jobs is None or jobs == 0:
        jobs = os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 = auto), got {jobs}")
    return max(1, min(jobs, max(n_trials, 1)))


@dataclass
class TrialOutcome:
    """Everything recorded about one trial of a grid."""

    index: int
    result: Any = None
    error: Optional[str] = None
    traceback: Optional[str] = None
    attempts: int = 0
    duration_s: float = 0.0
    timed_out: bool = False

    @property
    def ok(self) -> bool:
        """Whether the trial produced a result (no recorded fault)."""
        return self.error is None


class TrialFaultError(RuntimeError):
    """Raised when results are collected from a grid with faulted trials."""

    def __init__(self, faults: Sequence[TrialOutcome]) -> None:
        self.faults = list(faults)
        detail = "; ".join(
            f"trial {f.index}: "
            f"{'timeout' if f.timed_out else f.error} "
            f"({f.attempts} attempts)" for f in self.faults)
        super().__init__(
            f"{len(self.faults)} trial(s) faulted after retry: {detail}")


@dataclass
class TrialRun:
    """The outcome of one trial grid, in trial-index order."""

    outcomes: List[TrialOutcome]
    backend: str
    jobs: int

    @property
    def faults(self) -> List[TrialOutcome]:
        """The trials that still had no result after their retries."""
        return [o for o in self.outcomes if not o.ok]

    def results(self, strict: bool = True) -> List[Any]:
        """Per-trial results in index order.

        With ``strict`` (the default) a grid containing faults raises
        :class:`TrialFaultError` — silently averaging over missing
        trials would corrupt the statistics the paper reports. With
        ``strict=False`` faulted trials are skipped.
        """
        faults = self.faults
        if faults and strict:
            raise TrialFaultError(faults)
        return [o.result for o in self.outcomes if o.ok]


@dataclass
class _Pending:
    """Parent-side bookkeeping for one in-flight trial attempt."""

    task: TrialTask
    attempts: int = 1
    deadline: Optional[float] = None
    submitted_rel_s: float = 0.0
    timed_out_once: bool = False


def _inline_payload(task: TrialTask) -> TrialPayload:
    """Run a task in the current process (serial/thread backends).

    Shares the parent's obs registries directly, so no snapshot is
    taken — only the error capture matches :func:`run_trial_task`.
    """
    t0 = perf_counter()
    try:
        assert task.fn is not None      # inline tasks keep their callable
        result = task.fn(task.index, rng_for_trial(task.seed))
    except Exception as exc:            # noqa: BLE001 — recorded as fault
        return TrialPayload(index=task.index, ok=False, error=repr(exc),
                            traceback=format_exc(),
                            duration_s=perf_counter() - t0)
    return TrialPayload(index=task.index, ok=True, result=result,
                        duration_s=perf_counter() - t0)


def _picklable(task: TrialTask) -> bool:
    """Whether the task survives the trip to a worker process."""
    try:
        pickle.dumps(task)
        return True
    except Exception:                   # noqa: BLE001 — any failure = no
        return False


class TrialExecutor:
    """Runs independent Monte-Carlo trials, in parallel where possible.

    Parameters
    ----------
    jobs:
        Worker count; ``None``/``0`` means one per core (capped by the
        trial count), ``1`` forces serial execution.
    timeout_s:
        Optional per-trial wall-clock budget, enforced on the process
        backend (an overdue trial is retried once, then recorded as a
        timed-out fault; the stuck worker is abandoned).
    retries:
        Extra attempts granted to a failing/timed-out trial (default 1:
        the retry-once-then-record-fault contract).
    backend:
        Force ``"process"``, ``"thread"`` or ``"serial"`` instead of
        auto-selection. Pickling-hostile work demoted from process to
        thread is logged and counted (``parallel.thread_fallbacks``).
    """

    def __init__(self, jobs: Optional[int] = None,
                 timeout_s: Optional[float] = None, retries: int = 1,
                 backend: Optional[str] = None) -> None:
        if backend is not None and backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; choose from {BACKENDS}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be positive, got {timeout_s}")
        self.jobs = jobs
        self.timeout_s = timeout_s
        self.retries = retries
        self.backend = backend

    # ------------------------------------------------------------------
    def run(self, fn: TrialFn, n_trials: int, seed: RngLike = None,
            seeds: Optional[Sequence[SeedLike]] = None) -> TrialRun:
        """Execute ``fn(trial, rng)`` for every trial of the grid.

        ``seed`` spawns the per-trial streams; ``seeds`` instead supplies
        pre-spawned ones (e.g. a slice of a larger experiment's grid).
        Returns a :class:`TrialRun` whose outcomes are in trial order.
        """
        if n_trials < 0:
            raise ValueError(f"n_trials must be >= 0, got {n_trials}")
        grid_seeds = trial_seeds(seed, n_trials, seeds)
        jobs = resolve_jobs(self.jobs, n_trials)
        obs_active = obs_runtime.enabled()
        array_name = default_array_name()
        tasks = [TrialTask(index=i, seed=s, fn=fn, obs_active=obs_active,
                           array=array_name)
                 for i, s in enumerate(grid_seeds)]
        backend = self._choose_backend(jobs, tasks)

        with span("parallel.trials", backend=backend, jobs=jobs,
                  trials=n_trials):
            obs_metrics.inc("parallel.trials_launched", n_trials)
            if obs_active:
                # Capture the trace coordinates *inside* the grid span:
                # workers bind them so every per-trial span tree
                # re-roots under this parallel.trials span on merge.
                context = obs_trace.current_trace_context()
                for task in tasks:
                    task.trace = context
            if backend == "serial" or not tasks:
                outcomes = self._run_serial(tasks)
            elif backend == "thread":
                outcomes = self._run_pool(
                    tasks, ThreadPoolExecutor(max_workers=jobs),
                    process_mode=False)
            else:
                outcomes = self._run_process(tasks, jobs)
            for outcome in outcomes:
                # Per-trial wall time feeds the percentile reservoir:
                # --profile manifests report trial.wall_s p50/p95/p99.
                obs_metrics.observe("trial.wall_s", outcome.duration_s)
        faults = [o for o in outcomes if not o.ok]
        if faults:
            obs_metrics.inc("parallel.trial_faults", len(faults))
            for fault in faults:
                # Keyed by trial index so `repro obs diff` can localize
                # which trials degrade, not just how many.
                obs_metrics.observe("parallel.fault", fault.index)
            logger.warning("%d/%d trial(s) faulted (backend=%s)",
                           len(faults), n_trials, backend)
        return TrialRun(outcomes=outcomes, backend=backend, jobs=jobs)

    # ------------------------------------------------------------------
    def _choose_backend(self, jobs: int, tasks: List[TrialTask]) -> str:
        """Pick (or validate) the execution backend for this grid."""
        backend = self.backend
        if backend is None:
            backend = "serial" if jobs == 1 else "process"
        if backend == "process" and tasks and not _picklable(tasks[0]):
            logger.warning(
                "trial callable does not pickle; falling back to the "
                "thread backend (no multi-core speedup)")
            obs_metrics.inc("parallel.thread_fallbacks")
            backend = "thread"
        return backend

    # ------------------------------------------------------------------
    def _run_serial(self, tasks: List[TrialTask]) -> List[TrialOutcome]:
        """In-caller-thread execution: the old loops, plus retry/fault."""
        outcomes = []
        for task in tasks:
            attempts = 0
            while True:
                attempts += 1
                payload = _inline_payload(task)
                if payload.ok or attempts > self.retries:
                    break
                obs_metrics.inc("parallel.trial_retries")
                obs_metrics.observe("parallel.retry", task.index)
            outcomes.append(TrialOutcome(
                index=task.index, result=payload.result, error=payload.error,
                traceback=payload.traceback, attempts=attempts,
                duration_s=payload.duration_s))
        return outcomes

    def _run_process(self, tasks: List[TrialTask],
                     jobs: int) -> List[TrialOutcome]:
        """Process-pool execution with a thread/serial safety net.

        The grid callable is identical across tasks (``run`` builds
        every task from one ``fn``), so it is pickled ONCE here and
        broadcast to each worker via the pool initializer; the tasks
        themselves travel with ``fn=None`` — per-trial submissions ship
        only an index and a seed. Large read-only arrays inside the
        callable ride shared memory where available
        (:mod:`repro.parallel.broadcast`).
        """
        blob, segments = encode_broadcast(tasks[0].fn)
        obs_metrics.inc("parallel.broadcasts")
        obs_metrics.inc("parallel.broadcast_payload_bytes", len(blob))
        if segments:
            obs_metrics.inc("parallel.broadcast_shm_bytes",
                            sum(seg.size for seg in segments))
        try:
            try:
                pool = ProcessPoolExecutor(max_workers=jobs,
                                           initializer=install_broadcast,
                                           initargs=(blob,))
            except (OSError, NotImplementedError, ImportError) as exc:
                logger.warning("cannot start a process pool (%s); falling "
                               "back to the thread backend", exc)
                obs_metrics.inc("parallel.thread_fallbacks")
                return self._run_pool(
                    tasks, ThreadPoolExecutor(max_workers=jobs),
                    process_mode=False)
            stripped = [replace(task, fn=None) for task in tasks]
            try:
                return self._run_pool(stripped, pool, process_mode=True)
            except BrokenProcessPool:
                logger.warning("process pool broke mid-grid; rerunning the "
                               "unfinished trials serially")
                obs_metrics.inc("parallel.serial_fallbacks")
                return self._run_serial(tasks)
        finally:
            release_segments(segments)

    def _run_pool(self, tasks: List[TrialTask], pool: Any,
                  process_mode: bool) -> List[TrialOutcome]:
        """Drive a futures pool with per-trial deadline/retry handling."""
        outcomes: List[Optional[TrialOutcome]] = [None] * len(tasks)
        payloads: List[Optional[TrialPayload]] = [None] * len(tasks)
        offsets: List[float] = [0.0] * len(tasks)
        runner = run_trial_task if process_mode else _inline_payload
        enforce_timeout = process_mode and self.timeout_s is not None
        pending: Dict[Future, _Pending] = {}

        def submit(state: _Pending) -> None:
            if enforce_timeout:
                state.deadline = perf_counter() + float(self.timeout_s or 0.0)
            state.submitted_rel_s = obs_trace.TRACER.now_s()
            pending[pool.submit(runner, state.task)] = state

        def settle(state: _Pending, payload: TrialPayload,
                   timed_out: bool = False) -> None:
            """Record the final attempt of a trial (success or fault)."""
            i = state.task.index
            outcomes[i] = TrialOutcome(
                index=i, result=payload.result, error=payload.error,
                traceback=payload.traceback, attempts=state.attempts,
                duration_s=payload.duration_s, timed_out=timed_out)
            payloads[i] = payload
            offsets[i] = state.submitted_rel_s

        def retry_or_settle(state: _Pending, payload: TrialPayload,
                            timed_out: bool = False) -> None:
            if state.attempts <= self.retries:
                state.attempts += 1
                state.timed_out_once = state.timed_out_once or timed_out
                obs_metrics.inc("parallel.trial_retries")
                obs_metrics.observe("parallel.retry", state.task.index)
                submit(state)
            else:
                settle(state, payload, timed_out=timed_out)

        try:
            for task in tasks:
                submit(_Pending(task=task))
            while pending:
                wait_s = None
                if enforce_timeout:
                    now = perf_counter()
                    wait_s = max(0.0, min(
                        s.deadline - now for s in pending.values()
                        if s.deadline is not None))
                done, _ = wait(set(pending), timeout=wait_s,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    state = pending.pop(future)
                    exc = future.exception()
                    if isinstance(exc, BrokenProcessPool):
                        raise exc
                    if exc is not None:
                        # Infrastructure failure (e.g. the result did not
                        # pickle) — same retry-then-fault path as a trial
                        # exception.
                        payload = TrialPayload(
                            index=state.task.index, ok=False,
                            error=repr(exc), traceback=None)
                    else:
                        payload = future.result()
                    if payload.ok:
                        settle(state, payload)
                    else:
                        retry_or_settle(state, payload)
                if enforce_timeout:
                    now = perf_counter()
                    overdue = [f for f, s in pending.items()
                               if s.deadline is not None and now >= s.deadline]
                    for future in overdue:
                        state = pending.pop(future)
                        future.cancel()     # abandon the worker if running
                        obs_metrics.inc("parallel.trial_timeouts")
                        obs_metrics.observe("parallel.timeout",
                                            state.task.index)
                        payload = TrialPayload(
                            index=state.task.index, ok=False,
                            error=f"TimeoutError: trial exceeded "
                                  f"{self.timeout_s}s")
                        retry_or_settle(state, payload, timed_out=True)
        finally:
            # wait=False: a hung (timed-out) worker must not block the
            # grid; abandoned processes finish their task and exit.
            pool.shutdown(wait=False)

        if process_mode and obs_runtime.enabled():
            parent_span = obs_trace.TRACER.current_span_id()
            for i, payload in enumerate(payloads):
                if payload is not None:
                    merge_trial_payload(payload, parent_span_id=parent_span,
                                        start_offset_s=offsets[i])
        return [o for o in outcomes if o is not None]

    # ------------------------------------------------------------------
    def map(self, fn: TrialFn, n_trials: int, seed: RngLike = None,
            seeds: Optional[Sequence[SeedLike]] = None) -> List[Any]:
        """:meth:`run` + strict result collection, in trial order."""
        return self.run(fn, n_trials, seed=seed, seeds=seeds).results()


def run_trials(fn: TrialFn, n_trials: int, seed: RngLike = None,
               seeds: Optional[Sequence[SeedLike]] = None,
               jobs: Optional[int] = 1, timeout_s: Optional[float] = None,
               retries: int = 1, backend: Optional[str] = None) -> TrialRun:
    """One-shot convenience around :class:`TrialExecutor`.

    ``jobs`` defaults to 1 (serial) so library call sites opt into
    parallelism explicitly; the CLI's ``--jobs`` default is the
    cpu-count-aware ``0``.
    """
    executor = TrialExecutor(jobs=jobs, timeout_s=timeout_s, retries=retries,
                             backend=backend)
    return executor.run(fn, n_trials, seed=seed, seeds=seeds)
