"""Per-trial RNG stream sharding for the parallel executor.

The determinism contract of :mod:`repro.parallel` is that a trial grid
run with ``jobs=N`` is **bit-identical** to the same grid run serially
at the same seed. That holds because both paths derive their per-trial
generators from the same ``SeedSequence.spawn`` children — the serial
loop via :func:`repro.utils.rng.spawn_rngs`, the executor via
:func:`trial_seeds` below — and ``SeedSequence`` objects pickle across
process boundaries intact, so a worker reconstructs the exact generator
the parent would have built.

Results therefore depend only on ``(seed, trial index)``, never on the
number of workers, the backend chosen, or the order trials finish in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.utils.rng import RngLike, SeedLike, make_rng, spawn_seeds

__all__ = ["trial_seeds", "rng_for_trial"]


def trial_seeds(seed: RngLike, n_trials: int,
                seeds: Optional[Sequence[SeedLike]] = None) -> List[SeedLike]:
    """The picklable per-trial seed material for an ``n_trials`` run.

    With ``seeds`` given (pre-spawned, e.g. a slice of a larger grid's
    streams) they are validated and returned; otherwise ``n_trials``
    children are spawned from ``seed`` exactly as
    :func:`repro.utils.rng.spawn_rngs` would — the source of the
    serial/parallel bit-identity guarantee.
    """
    if seeds is not None:
        materialised = list(seeds)
        if len(materialised) != n_trials:
            raise ValueError(
                f"got {len(materialised)} explicit seeds for "
                f"{n_trials} trials")
        return materialised
    return spawn_seeds(seed, n_trials)


def rng_for_trial(seed: SeedLike) -> np.random.Generator:
    """Rebuild one trial's generator from its shipped seed material.

    Called inside worker processes (and by the serial/thread paths, so
    every backend constructs generators identically).
    """
    return make_rng(seed)
