"""Parallel Monte-Carlo trial execution (``repro.parallel``).

Shards independent programming-cycle trials across a process pool with
bit-identical-to-serial determinism (``SeedSequence``-spawned per-trial
streams), retry-once-then-record-fault robustness, per-trial timeouts,
and worker→parent observability merging. See
:mod:`repro.parallel.executor` for the full contract.

Quick use::

    from repro.parallel import run_trials

    run = run_trials(fn, n_trials=8, seed=0, jobs=4)   # fn(trial, rng)
    values = run.results()      # trial-index order, faults raise

The deployment pipeline exposes this via ``Deployer.evaluate(...)``,
``repro.eval.accuracy.evaluate_deployment(..., jobs=...)``, the
experiment runners' ``jobs=`` parameters, and the CLI's ``--jobs/-j``.

On the process backend the grid callable is pickled once per grid and
broadcast to each worker through the pool initializer — with large
read-only arrays riding ``multiprocessing.shared_memory`` where
available (:mod:`repro.parallel.broadcast`, ``REPRO_SHM=0`` to
disable) — instead of being re-pickled into every trial task.
"""

from repro.parallel.broadcast import (broadcast_fn, encode_broadcast,
                                      install_broadcast, release_segments,
                                      shm_enabled)
from repro.parallel.executor import (BACKENDS, TrialExecutor,
                                     TrialFaultError, TrialOutcome, TrialRun,
                                     resolve_jobs, run_trials)
from repro.parallel.merge import merge_trial_payload
from repro.parallel.rngshard import rng_for_trial, trial_seeds
from repro.parallel.worker import TrialPayload, TrialTask, run_trial_task

__all__ = [
    "BACKENDS", "TrialExecutor", "TrialFaultError", "TrialOutcome",
    "TrialRun", "resolve_jobs", "run_trials", "merge_trial_payload",
    "trial_seeds", "rng_for_trial", "TrialTask", "TrialPayload",
    "run_trial_task", "broadcast_fn", "encode_broadcast",
    "install_broadcast", "release_segments", "shm_enabled",
]
