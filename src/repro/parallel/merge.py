"""Merge worker-process observability payloads into the parent registry.

Process-backend trials record their spans and metrics into the *child*
process's globals; without a merge step a ``--profile`` run with
``--jobs 4`` would report a quarter of the work. After every trial grid
the executor hands each :class:`~repro.parallel.worker.TrialPayload`
(in trial order, so manifests are deterministic) to
:func:`merge_trial_payload`, which

* folds the child metrics snapshot into the parent registry — counters
  add, gauges last-write-win, histograms combine exactly
  (:meth:`repro.obs.metrics.MetricsRegistry.merge`);
* adopts the child span records under the executor's open span with
  fresh ids, remapped parent links and a rebased timeline
  (:meth:`repro.obs.trace.Tracer.adopt`), tagging each with the trial
  index and ``subprocess: True`` so per-trial breakdowns survive.

Serial and thread backends write straight into the parent registries
(they share the process) and never reach this module.
"""

from __future__ import annotations

from typing import Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel.worker import TrialPayload

__all__ = ["merge_trial_payload"]


def merge_trial_payload(payload: TrialPayload,
                        parent_span_id: Optional[int] = None,
                        start_offset_s: float = 0.0) -> int:
    """Fold one worker payload's obs state into the parent registries.

    ``parent_span_id`` anchors the child's root spans in the parent
    trace (normally the executor's ``parallel.trials`` span);
    ``start_offset_s`` shifts child-relative span start times onto the
    parent timeline (the child clock starts ~when the task launches).
    Returns the number of span records adopted.
    """
    if payload.metrics:
        obs_metrics.REGISTRY.merge(payload.metrics)
    adopted = 0
    if payload.spans:
        adopted = obs_trace.TRACER.adopt(
            payload.spans, parent_id=parent_span_id,
            start_offset_s=start_offset_s,
            extra_attrs={"trial": payload.index, "subprocess": True})
    obs_metrics.inc("parallel.payloads_merged")
    return adopted
