"""Repeated-trial accuracy evaluation under device variation.

The paper repeats every experiment 5 times with fresh CCV draws and
reports the average (Section IV). :func:`evaluate_deployment` does
exactly that around a :class:`repro.core.pipeline.Deployer`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.pipeline import Deployer
from repro.data.loaders import Dataset
from repro.nn.trainer import evaluate_accuracy
from repro.obs.trace import span
from repro.utils.rng import RngLike, spawn_rngs


@dataclass
class TrialResult:
    """Accuracy statistics over independent programming cycles."""

    accuracies: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def n_trials(self) -> int:
        return len(self.accuracies)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} ({self.n_trials} trials)"


def evaluate_deployment(deployer: Deployer, test_data: Dataset,
                        n_trials: int = 5, rng: RngLike = None,
                        batch_size: int = 256) -> TrialResult:
    """Program the crossbars ``n_trials`` times and score each deployment.

    Each trial redraws all programming noise (the paper's cycle-to-cycle
    behaviour) and, if the deployer's config enables it, reruns PWT —
    PWT is post-writing, so it must adapt to every fresh write.
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    rngs = spawn_rngs(rng, n_trials)
    accuracies = []
    for trial, trial_rng in enumerate(rngs):
        deployed = deployer.program(rng=trial_rng)
        with span("deploy.eval", trial=trial):
            accuracies.append(evaluate_accuracy(deployed, test_data,
                                                batch_size))
    return TrialResult(accuracies=accuracies)


def ideal_accuracy(deployer: Deployer, test_data: Dataset,
                   batch_size: int = 256) -> float:
    """Accuracy of the noise-free quantized reference model."""
    return evaluate_accuracy(deployer.ideal_model(), test_data, batch_size)
