"""Repeated-trial accuracy evaluation under device variation.

The paper repeats every experiment 5 times with fresh CCV draws and
reports the average (Section IV). :func:`evaluate_deployment` does
exactly that around a :class:`repro.core.pipeline.Deployer` — and,
because the trials are independent programming cycles, shards them
across worker processes via :mod:`repro.parallel` when ``jobs != 1``.
Parallel runs are bit-identical to serial at the same seed (per-trial
``SeedSequence``-spawned streams).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional

import numpy as np

from repro.core.pipeline import Deployer
from repro.data.loaders import Dataset
from repro.nn.trainer import evaluate_accuracy
from repro.obs.trace import span
from repro.parallel import run_trials
from repro.utils.rng import RngLike


@dataclass
class TrialResult:
    """Accuracy statistics over independent programming cycles."""

    accuracies: List[float]

    @property
    def mean(self) -> float:
        return float(np.mean(self.accuracies))

    @property
    def std(self) -> float:
        return float(np.std(self.accuracies))

    @property
    def n_trials(self) -> int:
        return len(self.accuracies)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} ({self.n_trials} trials)"


def _deploy_and_score(deployer: Deployer, test_data: Dataset,
                      batch_size: int, trial: int,
                      rng: np.random.Generator) -> float:
    """One programming-cycle trial: program, then score the deployment.

    Module-level so ``functools.partial`` over it pickles into worker
    processes.
    """
    deployed = deployer.program(rng=rng)
    with span("deploy.eval", trial=trial):
        return evaluate_accuracy(deployed, test_data, batch_size)


def evaluate_deployment(deployer: Deployer, test_data: Dataset,
                        n_trials: int = 5, rng: RngLike = None,
                        batch_size: int = 256, jobs: Optional[int] = 1,
                        trial_timeout: Optional[float] = None) -> TrialResult:
    """Program the crossbars ``n_trials`` times and score each deployment.

    Each trial redraws all programming noise (the paper's cycle-to-cycle
    behaviour) and, if the deployer's config enables it, reruns PWT —
    PWT is post-writing, so it must adapt to every fresh write.

    ``jobs`` shards the trials across worker processes (``0``/``None``
    = one per core, ``1`` = serial); accuracies are identical either
    way. ``trial_timeout`` bounds one trial's wall-clock seconds in
    process mode (timed-out trials are retried once, then recorded as
    faults, which raise here).
    """
    if n_trials < 1:
        raise ValueError("n_trials must be >= 1")
    run = run_trials(partial(_deploy_and_score, deployer, test_data,
                             batch_size),
                     n_trials, seed=rng, jobs=jobs, timeout_s=trial_timeout)
    return TrialResult(accuracies=run.results())


def ideal_accuracy(deployer: Deployer, test_data: Dataset,
                   batch_size: int = 256) -> float:
    """Accuracy of the noise-free quantized reference model."""
    return evaluate_accuracy(deployer.ideal_model(), test_data, batch_size)
