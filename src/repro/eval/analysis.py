"""Deployment analysis: where does the residual weight error live?

Beyond a single accuracy number, a deployment can be dissected per
layer: how far are the effective network real weights (NRWs) from the
network target weights (NTWs), how much of that distance is systematic
bias vs random variation, and how much the offsets compensated. These
diagnostics drove several fixes during development (coherent group bias
is far more damaging than iid noise of the same magnitude) and are
exposed here as a public API plus a markdown renderer for reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.crossbar_layers import _CrossbarBase
from repro.core.pipeline import Deployer
from repro.nn.module import Module


@dataclass(frozen=True)
class LayerErrorStats:
    """Weight-error diagnostics of one deployed layer (integer units)."""

    path: str
    rows: int
    cols: int
    rms_error: float            # RMS of (NRW - NTW)
    mean_error: float           # global bias
    group_bias_rms: float       # RMS of per-offset-group mean error
    within_group_rms: float     # RMS after removing each group's mean
    max_abs_error: float
    offset_magnitude: float     # mean |register value|
    complement_fraction: float

    @property
    def bias_share(self) -> float:
        """Fraction of the error energy that is group-coherent.

        Group-coherent error is what a (better) shared offset could
        still remove; within-group error is irreducible at this sharing
        granularity.
        """
        total = self.group_bias_rms ** 2 + self.within_group_rms ** 2
        if total == 0:
            return 0.0
        return self.group_bias_rms ** 2 / total


def layer_error_stats(mod: _CrossbarBase, path: str = "") -> LayerErrorStats:
    """Diagnostics for one crossbar layer (requires its NTW metadata)."""
    if mod.ntw is None:
        raise ValueError("layer carries no NTW metadata")
    w_eff_q = mod._sign * (mod.crw + mod.plan.expand(mod.offsets.data)) \
        + mod._const
    err = w_eff_q - mod.ntw
    group_mean = mod.plan.group_reduce_weights(err, op="mean")
    centred = err - mod.plan.expand(group_mean)
    return LayerErrorStats(
        path=path, rows=mod.plan.rows, cols=mod.plan.cols,
        rms_error=float(np.sqrt((err ** 2).mean())),
        mean_error=float(err.mean()),
        group_bias_rms=float(np.sqrt((group_mean ** 2).mean())),
        within_group_rms=float(np.sqrt((centred ** 2).mean())),
        max_abs_error=float(np.abs(err).max()),
        offset_magnitude=float(np.abs(mod.offsets.data).mean()),
        complement_fraction=float(mod.complement_mask.mean()),
    )


def analyze_deployment(model: Module) -> List[LayerErrorStats]:
    """Diagnostics for every crossbar layer of a deployed model."""
    stats = []
    for name, mod in model.named_modules():
        if isinstance(mod, _CrossbarBase) and mod.ntw is not None:
            stats.append(layer_error_stats(mod, path=name))
    if not stats:
        raise ValueError("model has no analysable crossbar layers")
    return stats


def render_markdown(stats: List[LayerErrorStats],
                    title: Optional[str] = None) -> str:
    """A markdown table of per-layer diagnostics."""
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| layer | shape | RMS err | group bias | within group "
                  "| max err | mean offset | complement |")
    lines.append("|---|---|---|---|---|---|---|---|")
    for s in stats:
        lines.append(
            f"| {s.path} | {s.rows}x{s.cols} | {s.rms_error:.1f} "
            f"| {s.group_bias_rms:.1f} | {s.within_group_rms:.1f} "
            f"| {s.max_abs_error:.0f} | {s.offset_magnitude:.1f} "
            f"| {s.complement_fraction:.0%} |")
    return "\n".join(lines)


def compare_deployments(deployer: Deployer, rng_seed: int = 0
                        ) -> List[List[LayerErrorStats]]:
    """Analyse several programming cycles of the same deployer."""
    out = []
    for trial in range(3):
        deployed = deployer.program(rng=rng_seed + trial)
        out.append(analyze_deployment(deployed))
    return out
