"""Named workloads and experiment runners for every table and figure.

The paper's evaluation uses three workloads (LeNet/MNIST,
ResNet-18/CIFAR-10, VGG-16/CIFAR-10). This module builds their
synthetic-data equivalents, trains them once, caches the trained
weights on disk, and exposes one runner per paper artifact:

========  ==============================================  =============
Artifact  Content                                          Runner
========  ==============================================  =============
Fig 5(a)  LeNet, 5 methods x granularities, SLC, s=0.5    run_fig5_accuracy("lenet", ...)
Fig 5(b)  ResNet-18, same grid                             run_fig5_accuracy("resnet18", ...)
Fig 5(c)  ResNet-18, VAWO*+PWT, MLC, sigma sweep           run_fig5c(...)
Table I   relative reading power, VAWO* vs plain           run_table1(...)
Table II  ISAAC tile overhead                              run_table2(...)
Table III comparison vs DVA / PM / DVA+PM                  run_table3(...)
========  ==============================================  =============

Every runner accepts a ``preset``: ``"quick"`` (minutes, used by the
default benchmark run and CI) or ``"full"`` (the sizes EXPERIMENTS.md
reports). Numbers are averaged over independent programming cycles as
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.arch.area import tile_overhead
from repro.arch.energy import deployment_reading_power
from repro.backend import default_backend_name
from repro.baselines.dva import DVA_DEVICES_PER_WEIGHT, DVAConfig, train_dva
from repro.baselines.pm import (PM_DEVICES_PER_WEIGHT, PMConfig, deploy_pm)
from repro.cache import resolve_store, stage_key
from repro.core.pipeline import DeployConfig, Deployer
from repro.core.pwt import PWTConfig
from repro.data.loaders import Dataset
from repro.data.synthetic import synthetic_cifar, synthetic_digits
from repro.device.cell import MLC2, SLC
from repro.eval.accuracy import evaluate_deployment, ideal_accuracy
from repro.nn.models import LeNet, resnet18_slim, vgg16_slim
from repro.nn.optim import Adam
from repro.nn.trainer import evaluate_accuracy, train_classifier
from repro.obs.trace import span
from repro.parallel import run_trials
from repro.utils.logging import get_logger
from repro.utils.rng import make_rng, spawn_seeds
from repro.xbar.arch import normalized_crossbar_number

logger = get_logger(__name__)


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
@dataclass
class Workload:
    """A trained model plus its train/test data."""

    name: str
    model: object
    train: Dataset
    test: Dataset
    float_accuracy: float


@dataclass(frozen=True)
class WorkloadSpec:
    """How to synthesise and train one named workload."""

    name: str
    dataset: str                    # "digits" or "cifar"
    model_factory: Callable
    n_samples: int
    epochs: int
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 5e-4
    noise_augment: float = 0.2      # input-noise augmentation level


def _augmented(train: Dataset, level: float, rng) -> Dataset:
    """Duplicate the train set with additive input noise (robust training)."""
    from repro.data.augment import add_noise, augment_dataset
    if level <= 0:
        return train
    return augment_dataset(train, [lambda x: add_noise(x, level, rng)])


_SPECS: Dict[str, Dict[str, WorkloadSpec]] = {
    "lenet": {
        "quick": WorkloadSpec("lenet", "digits", LeNet, 1600, epochs=4),
        "full": WorkloadSpec("lenet", "digits", LeNet, 4000, epochs=8),
    },
    "resnet18": {
        "quick": WorkloadSpec("resnet18", "cifar",
                              lambda rng: resnet18_slim(base_width=8, rng=rng),
                              900, epochs=3),
        "full": WorkloadSpec("resnet18", "cifar",
                             lambda rng: resnet18_slim(base_width=8, rng=rng),
                             2400, epochs=6),
    },
    "vgg16": {
        "quick": WorkloadSpec("vgg16", "cifar",
                              lambda rng: vgg16_slim(width_scale=0.125, rng=rng),
                              900, epochs=3),
        "full": WorkloadSpec("vgg16", "cifar",
                             lambda rng: vgg16_slim(width_scale=0.125, rng=rng),
                             2400, epochs=6),
    },
}


def workload_names() -> List[str]:
    return sorted(_SPECS)


def build_workload(name: str, preset: str = "quick", seed: int = 0,
                   cache_dir: Optional[Path] = None,
                   train_override: Optional[Callable] = None) -> Workload:
    """Build (or load from the artifact cache) a trained workload.

    ``train_override(model, train, spec, rng)`` replaces the default
    training loop — the DVA baseline uses this to inject variation-aware
    training while sharing data synthesis and caching. Trained weights
    are stored through :mod:`repro.cache` (the ``workload`` stage):
    ``cache_dir`` forces a store location, otherwise ``REPRO_CACHE``
    resolves one (or disables reuse entirely).
    """
    if name not in _SPECS:
        raise ValueError(f"unknown workload {name!r}; choose from {workload_names()}")
    if preset not in _SPECS[name]:
        raise ValueError(f"unknown preset {preset!r}")
    spec = _SPECS[name][preset]
    rng = make_rng(seed)
    if spec.dataset == "digits":
        images, labels = synthetic_digits(spec.n_samples, rng=rng)
    else:
        images, labels = synthetic_cifar(spec.n_samples, rng=rng)
    data = Dataset(images, labels)
    train, test = data.split(0.8, rng=rng)

    model = spec.model_factory(rng=make_rng(seed + 1)) \
        if _accepts_rng(spec.model_factory) else spec.model_factory(make_rng(seed + 1))

    tag = "default" if train_override is None else train_override.__name__
    store = resolve_store(cache_dir)

    def train_state() -> Dict[str, np.ndarray]:
        aug = _augmented(train, spec.noise_augment, make_rng(seed + 2))
        with span("workload.train", workload=name, preset=preset):
            if train_override is None:
                opt = Adam(model.parameters(), lr=spec.lr,
                           weight_decay=spec.weight_decay)
                train_classifier(model, aug, epochs=spec.epochs,
                                 batch_size=spec.batch_size, optimizer=opt,
                                 rng=make_rng(seed + 3))
            else:
                train_override(model, aug, spec, make_rng(seed + 3))
        return model.state_dict()

    if store is None:
        train_state()
    else:
        # Every spec field that shapes the trained weights enters the
        # key, so editing a preset invalidates its artifacts; backend
        # numerics differ, so the backend name does too.
        key = stage_key(
            "workload", name=name, preset=preset, seed=seed, tag=tag,
            dataset=spec.dataset, n_samples=spec.n_samples,
            epochs=spec.epochs, batch_size=spec.batch_size, lr=spec.lr,
            weight_decay=spec.weight_decay,
            noise_augment=spec.noise_augment,
            backend=default_backend_name())
        state = store.fetch(key, train_state, stage="workload",
                            metadata={"workload": name, "preset": preset,
                                      "seed": seed, "tag": tag})
        model.load_state_dict(state)
    acc = evaluate_accuracy(model, test)
    return Workload(name=name, model=model, train=train, test=test,
                    float_accuracy=acc)


def _accepts_rng(factory: Callable) -> bool:
    import inspect
    try:
        return "rng" in inspect.signature(factory).parameters
    except (TypeError, ValueError):
        return False


# ----------------------------------------------------------------------
# Fig. 5(a) / 5(b): methods x granularity
# ----------------------------------------------------------------------
@dataclass
class AccuracyRow:
    """One point of a Fig. 5-style accuracy grid."""

    workload: str
    method: str
    granularity: int
    sigma: float
    cell_bits: int
    mean_accuracy: float
    std_accuracy: float
    ideal_accuracy: float

    @property
    def accuracy_drop(self) -> float:
        return self.ideal_accuracy - self.mean_accuracy


def _default_pwt(preset: str) -> PWTConfig:
    """PWT schedule for the experiment runners.

    Deep residual/VGG workloads need substantially more offset-training
    steps than LeNet (their loss surface over offsets is harder); a
    gently decayed Adam over the full train set works for all three
    workloads, so one schedule is used everywhere.
    """
    if preset == "quick":
        return PWTConfig(epochs=10, lr=1.0, lr_decay=0.9)
    return PWTConfig(epochs=16, lr=1.0, lr_decay=0.9)


def run_fig5_accuracy(workload_name: str, preset: str = "quick",
                      methods: Sequence[str] = DeployConfig.METHODS,
                      granularities: Sequence[int] = (16, 64, 128),
                      sigma: float = 0.5, cell=SLC, n_trials: int = 2,
                      seed: int = 0,
                      jobs: Optional[int] = 1) -> List[AccuracyRow]:
    """The Fig. 5(a)/(b) grid: every method at every granularity.

    ``jobs`` parallelises each cell's programming-cycle trials
    (bit-identical to serial; see :mod:`repro.parallel`).
    """
    wl = build_workload(workload_name, preset, seed)
    rows = []
    ideal = None
    for m in granularities:
        for method in methods:
            cfg = DeployConfig.from_method(
                method, sigma=sigma, cell=cell, granularity=m,
                pwt=_default_pwt(preset), bn_recalibrate=True)
            deployer = Deployer(wl.model, wl.train, cfg, rng=seed + 10)
            if ideal is None:
                ideal = ideal_accuracy(deployer, wl.test)
            result = evaluate_deployment(deployer, wl.test,
                                         n_trials=n_trials, rng=seed + 20,
                                         jobs=jobs)
            rows.append(AccuracyRow(
                workload=workload_name, method=method, granularity=m,
                sigma=sigma, cell_bits=cell.bits,
                mean_accuracy=result.mean, std_accuracy=result.std,
                ideal_accuracy=ideal))
            logger.info("%s m=%d %s: %.4f", workload_name, m, method,
                        result.mean)
    return rows


def run_fig5c(preset: str = "quick",
              sigmas: Sequence[float] = (0.2, 0.4, 0.5, 0.7, 1.0),
              granularities: Sequence[int] = (16, 64, 128),
              n_trials: int = 2, seed: int = 0,
              jobs: Optional[int] = 1) -> List[AccuracyRow]:
    """Fig. 5(c): ResNet-18 on 2-bit MLCs, VAWO*+PWT, sigma sweep.

    ``jobs`` parallelises each cell's programming-cycle trials.
    """
    wl = build_workload("resnet18", preset, seed)
    rows = []
    for sigma in sigmas:
        for m in granularities:
            cfg = DeployConfig.from_method(
                "vawo*+pwt", sigma=sigma, cell=MLC2, granularity=m,
                pwt=_default_pwt(preset), bn_recalibrate=True)
            deployer = Deployer(wl.model, wl.train, cfg, rng=seed + 10)
            ideal = ideal_accuracy(deployer, wl.test)
            result = evaluate_deployment(deployer, wl.test,
                                         n_trials=n_trials, rng=seed + 20,
                                         jobs=jobs)
            rows.append(AccuracyRow(
                workload="resnet18", method="vawo*+pwt", granularity=m,
                sigma=sigma, cell_bits=MLC2.bits,
                mean_accuracy=result.mean, std_accuracy=result.std,
                ideal_accuracy=ideal))
            logger.info("fig5c sigma=%.1f m=%d: %.4f", sigma, m, result.mean)
    return rows


# ----------------------------------------------------------------------
# scenario matrix: technique x non-ideality stack (repro.array.scenarios)
# ----------------------------------------------------------------------
@dataclass
class ScenarioRow:
    """One technique x scenario-stack point of the robustness matrix."""

    workload: str
    method: str
    scenario: str                   # human label ("none" = bare array)
    spec: Optional[str]             # the parsed spec string, None = empty
    sigma: float
    mean_accuracy: float
    std_accuracy: float
    clean_accuracy: float           # same method, empty scenario stack

    @property
    def accuracy_drop(self) -> float:
        return self.mean_accuracy - self.clean_accuracy


#: Default scenario axis of :func:`run_scenario_matrix` — label → spec.
#: ``None`` is the control column: the bare array, bit-identical to the
#: classic pipeline, against which every stack's drop is measured.
DEFAULT_SCENARIOS: Dict[str, Optional[str]] = {
    "none": None,
    "stuck_at": "stuck_at:sa0_rate=0.05,sa1_rate=0.01",
    "temperature": "temperature:temperature=360.0",
    "drift": "drift:t_seconds=1e5",
}


def run_scenario_matrix(workload_name: str = "lenet",
                        preset: str = "quick",
                        methods: Sequence[str] = ("plain", "vawo*+pwt"),
                        scenario_axis: Optional[Dict[str, Optional[str]]] = None,
                        scenarios: Optional[str] = None,
                        array: Optional[str] = None,
                        sigma: float = 0.5, n_trials: int = 2, seed: int = 0,
                        jobs: Optional[int] = 1) -> List[ScenarioRow]:
    """Technique x scenario robustness grid over the HAL scenario engine.

    Every (method, stack) cell programs through
    :class:`repro.array.scenarios.ScenarioArray` and evaluates
    ``n_trials`` programming cycles with the parallel executor
    (``jobs`` shards them; bit-identical to serial). ``scenarios``
    replaces the default axis with one caller-provided stack (plus the
    "none" control); ``array`` pins the HAL family for every cell.
    """
    axis = dict(scenario_axis) if scenario_axis is not None \
        else dict(DEFAULT_SCENARIOS)
    if scenarios is not None:
        axis = {"none": None, "custom": scenarios}
    if "none" not in axis:
        axis = {"none": None, **axis}
    wl = build_workload(workload_name, preset, seed)
    rows: List[ScenarioRow] = []
    for method in methods:
        clean: Optional[float] = None
        for label, spec in axis.items():
            cfg = DeployConfig.from_method(
                method, sigma=sigma, cell=SLC, granularity=16,
                pwt=_default_pwt(preset), bn_recalibrate=True,
                array=array, scenarios=spec)
            deployer = Deployer(wl.model, wl.train, cfg, rng=seed + 10)
            result = evaluate_deployment(deployer, wl.test,
                                         n_trials=n_trials, rng=seed + 20,
                                         jobs=jobs)
            if clean is None:       # "none" is always first in the axis
                clean = result.mean
            rows.append(ScenarioRow(
                workload=workload_name, method=method, scenario=label,
                spec=spec, sigma=sigma, mean_accuracy=result.mean,
                std_accuracy=result.std, clean_accuracy=clean))
            logger.info("scenario %s %s: %.4f", method, label, result.mean)
    return rows


# ----------------------------------------------------------------------
# Table I: relative reading power
# ----------------------------------------------------------------------
def run_table1(preset: str = "quick",
               granularities: Sequence[int] = (16, 128),
               seed: int = 0) -> Dict[str, Dict[int, float]]:
    """Relative total device reading power, VAWO* vs plain (2-bit MLC)."""
    out: Dict[str, Dict[int, float]] = {}
    for name in ("lenet", "resnet18"):
        wl = build_workload(name, preset, seed)
        out[name] = {}
        for m in granularities:
            cfg = DeployConfig.from_method("vawo*", sigma=0.5, cell=MLC2,
                                           granularity=m)
            deployer = Deployer(wl.model, wl.train, cfg, rng=seed + 10)
            out[name][m] = deployment_reading_power(deployer)
            logger.info("table1 %s m=%d: %.4f", name, m, out[name][m])
    return out


# ----------------------------------------------------------------------
# Table II: tile overhead
# ----------------------------------------------------------------------
def run_table2(granularities: Sequence[int] = (16, 128)) -> List[Dict]:
    """ISAAC tile area/power overhead of the digital-offset support."""
    return [tile_overhead(m).as_dict() for m in granularities]


# ----------------------------------------------------------------------
# Table III: comparison against DVA / PM / DVA+PM
# ----------------------------------------------------------------------
@dataclass
class ComparisonRow:
    """One column of Table III."""

    method: str
    network: str
    sigma: float
    accuracy_loss: float
    crossbar_number: float


def _dva_train(sigma: float):
    def train(model, data, spec, rng):
        cfg = DVAConfig(sigma=sigma, epochs=spec.epochs,
                        batch_size=spec.batch_size, lr=spec.lr,
                        weight_decay=spec.weight_decay)
        train_dva(model, data, cfg, rng=rng)
    train.__name__ = f"dva{sigma}"
    return train


def _pm_trial(model, test_data: Dataset, sigma: float, trial: int,
              rng) -> float:
    """One PM programming-cycle trial (module-level so it pickles)."""
    deployed = deploy_pm(model, PMConfig(sigma=sigma), rng=rng)
    return evaluate_accuracy(deployed, test_data)


def run_pm_trials(model, test_data: Dataset, sigma: float, n_trials: int,
                  seeds, jobs: Optional[int] = 1) -> List[float]:
    """PM trial accuracies over pre-spawned per-trial seed streams.

    ``seeds`` are ``SeedSequence`` children (one per trial), so the
    accuracies depend only on the streams — not on sweep ordering or
    the worker count.
    """
    run = run_trials(partial(_pm_trial, model, test_data, sigma),
                     n_trials, seeds=seeds, jobs=jobs)
    return run.results()


def run_table3(preset: str = "quick", n_trials: int = 2,
               seed: int = 0, jobs: Optional[int] = 1) -> List[ComparisonRow]:
    """Accuracy loss + normalised crossbar count for all four methods.

    Mirrors Table III: DVA at sigma=0.5, PM / DVA+PM / this work at
    sigma=0.8, all on the VGG-16 workload. Crossbar numbers follow the
    devices-per-weight normalisation of Section IV-C2 (ours = 1).
    ``jobs`` parallelises every method's programming-cycle trials.

    Each method's trials draw from their own ``SeedSequence``-spawned
    streams (one spawn child per method, re-spawned per trial), so
    trial seeds are independent of sweep ordering and of ``n_trials``
    elsewhere in the grid.
    """
    ours_devices = 4                       # 4 x 2-bit MLC per weight
    rows: List[ComparisonRow] = []
    pm_roots = spawn_seeds(seed + 99, 2)   # one root per PM-family method

    # --- DVA: variation-aware training, plain one-crossbar deployment.
    dva_wl = build_workload("vgg16", preset, seed,
                            train_override=_dva_train(0.5))
    cfg = DeployConfig.from_method("plain", sigma=0.5, cell=SLC)
    deployer = Deployer(dva_wl.model, dva_wl.train, cfg, rng=seed + 10)
    res = evaluate_deployment(deployer, dva_wl.test, n_trials=n_trials,
                              rng=seed + 20, jobs=jobs)
    rows.append(ComparisonRow(
        method="DVA", network="vgg16", sigma=0.5,
        accuracy_loss=dva_wl.float_accuracy - res.mean,
        crossbar_number=normalized_crossbar_number(
            DVA_DEVICES_PER_WEIGHT, ours_devices)))

    # --- PM and DVA+PM: unary coding + priority mapping, sigma=0.8.
    plain_wl = build_workload("vgg16", preset, seed)
    for root, (label, wl) in zip(pm_roots, (("PM", plain_wl),
                                            ("DVA+PM", dva_wl))):
        accs = run_pm_trials(wl.model, wl.test, 0.8, n_trials,
                             seeds=spawn_seeds(root, n_trials), jobs=jobs)
        rows.append(ComparisonRow(
            method=label, network="vgg16", sigma=0.8,
            accuracy_loss=wl.float_accuracy - float(np.mean(accs)),
            crossbar_number=normalized_crossbar_number(
                PM_DEVICES_PER_WEIGHT, ours_devices)))

    # --- This work: VAWO*+PWT on 2-bit MLCs at sigma=0.8.
    cfg = DeployConfig.from_method("vawo*+pwt", sigma=0.8, cell=MLC2,
                                   granularity=16, pwt=_default_pwt(preset),
                                   bn_recalibrate=True)
    deployer = Deployer(plain_wl.model, plain_wl.train, cfg, rng=seed + 10)
    res = evaluate_deployment(deployer, plain_wl.test, n_trials=n_trials,
                              rng=seed + 20, jobs=jobs)
    rows.append(ComparisonRow(
        method="This work", network="vgg16", sigma=0.8,
        accuracy_loss=plain_wl.float_accuracy - res.mean,
        crossbar_number=1.0))
    return rows
