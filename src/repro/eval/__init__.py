"""Evaluation harness: trial-averaged accuracy and named experiments."""

from repro.eval.accuracy import (TrialResult, evaluate_deployment,
                                 ideal_accuracy)
from repro.eval.analysis import (LayerErrorStats, analyze_deployment,
                                 layer_error_stats, render_markdown)
from repro.eval.experiments import (AccuracyRow, ComparisonRow, Workload,
                                    build_workload, run_fig5_accuracy,
                                    run_fig5c, run_table1, run_table2,
                                    run_table3, workload_names)

__all__ = [
    "TrialResult", "evaluate_deployment", "ideal_accuracy",
    "Workload", "build_workload", "workload_names",
    "AccuracyRow", "ComparisonRow",
    "run_fig5_accuracy", "run_fig5c",
    "run_table1", "run_table2", "run_table3",
    "LayerErrorStats", "analyze_deployment", "layer_error_stats",
    "render_markdown",
]
