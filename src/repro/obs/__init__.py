"""Observability layer: metrics, wall-time spans, and run manifests.

Three pieces, all process-local and dependency-free:

``repro.obs.metrics``
    Thread-safe counters / gauges / histograms behind one registry.
``repro.obs.trace``
    Nested wall-time spans (``perf_counter``); ``span`` works as a
    context manager *and* a decorator.
``repro.obs.exporters`` / ``repro.obs.manifest``
    JSONL span dumps and a single structured run-manifest JSON
    (preset, seed, git revision, environment, per-stage timings,
    metric totals). Long runs stream spans to the JSONL file as they
    close (``trace.TRACER.stream_to``) instead of buffering them.

The layer is **zero-cost when disabled** (the default): with
``REPRO_OBS`` unset, the ``span`` decorator returns the decorated
function unchanged and every metric helper is one flag read. Enable it
with ``REPRO_OBS=1``, the CLI's ``--profile`` flag, or
:func:`repro.obs.enable` at runtime. ``repro obs summarize
<manifest.json>`` renders a recorded run as per-stage tables.
"""

from repro.obs import metrics, trace
from repro.obs.exporters import export_run, write_spans_jsonl
from repro.obs.manifest import build_manifest, stage_totals
from repro.obs.runtime import disable, enable, enabled, env_enabled
from repro.obs.summary import render_summary, summarize_file
from repro.obs.trace import SpanSink, span


def reset() -> None:
    """Clear all recorded spans and metrics (tests; between CLI runs)."""
    trace.TRACER.reset()
    metrics.REGISTRY.reset()


__all__ = [
    "metrics", "trace", "span", "SpanSink", "enabled", "enable", "disable",
    "env_enabled", "reset", "export_run", "write_spans_jsonl",
    "build_manifest", "stage_totals", "render_summary", "summarize_file",
]
