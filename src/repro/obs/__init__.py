"""Observability layer: metrics, wall-time spans, and run manifests.

Four pieces, all process-local and dependency-free:

``repro.obs.metrics``
    Thread-safe counters / gauges / histograms behind one registry.
    Histograms carry a deterministic fixed-size reservoir, so
    snapshots (and cross-process merges of them) report p50/p95/p99.
``repro.obs.trace``
    Nested wall-time spans (``perf_counter``); ``span`` works as a
    context manager *and* a decorator. Records carry a ``trace_id``
    and ``pid``; :class:`TraceContext` ships the submitting span's
    identity into worker processes so their subtrees re-root under it
    on adoption — a profiled ``--jobs N`` run is one rooted tree.
``repro.obs.exporters`` / ``repro.obs.manifest``
    JSONL span dumps and a single structured run-manifest JSON
    (preset, seed, git revision, environment, per-stage timings,
    metric totals). Long runs stream spans to the JSONL file as they
    close (``trace.TRACER.stream_to``) instead of buffering them.
``repro.obs.analysis``
    Offline toolkit over recorded artifacts: span-tree reconstruction,
    critical-path extraction, folded flamegraph stacks, and
    percentile-aware two-run diffs (``repro obs
    critical-path|flame|diff``).

The layer is **zero-cost when disabled** (the default): with
``REPRO_OBS`` unset, the ``span`` decorator returns the decorated
function unchanged and every metric helper is one flag read. Enable it
with ``REPRO_OBS=1``, the CLI's ``--profile`` flag, or
:func:`repro.obs.enable` at runtime. ``repro obs summarize <path>``
renders a recorded run (manifest, span stream, or obs directory) as
per-stage tables.
"""

from repro.obs import analysis, metrics, trace
from repro.obs.analysis import (critical_path, diff_manifests, fold_stacks,
                                render_critical_path, render_diff,
                                render_folded)
from repro.obs.exporters import export_run, write_spans_jsonl
from repro.obs.manifest import build_manifest, stage_totals
from repro.obs.runtime import disable, enable, enabled, env_enabled
from repro.obs.summary import render_summary, summarize_file, summarize_path
from repro.obs.trace import (SpanSink, TraceContext, current_trace_context,
                             span)


def reset() -> None:
    """Clear all recorded spans and metrics (tests; between CLI runs)."""
    trace.TRACER.reset()
    metrics.REGISTRY.reset()


__all__ = [
    "metrics", "trace", "analysis", "span", "SpanSink", "TraceContext",
    "current_trace_context", "enabled", "enable", "disable",
    "env_enabled", "reset", "export_run", "write_spans_jsonl",
    "build_manifest", "stage_totals", "render_summary", "summarize_file",
    "summarize_path", "critical_path", "render_critical_path",
    "fold_stacks", "render_folded", "diff_manifests", "render_diff",
]
