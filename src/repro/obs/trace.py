"""Span-based wall-time tracer built on ``time.perf_counter``.

One :class:`span` object serves both idioms:

.. code-block:: python

    with span("deploy.vawo", layers=4):          # context manager
        ...

    @span("xbar.engine.forward")                 # decorator
    def forward(self, x): ...

Nesting is tracked per thread; each finished span becomes one flat
record ``{id, parent_id, name, depth, start_s, duration_s, attrs,
status, error}`` ready for JSONL export. ``start_s`` is relative to the
tracer epoch (process start or the last :func:`reset`).

Cost model (the layer must be invisible when off):

* decorator form — if ``REPRO_OBS`` is off *at decoration time* the
  function object is returned unchanged: no wrapper frame, no per-call
  overhead (the identity is asserted in the test suite);
* context-manager form — ``__enter__`` reads one flag and returns, so
  stage-level ``with`` spans stay in the code permanently and activate
  dynamically (``--profile`` enables them mid-process).

Long runs can stream: :meth:`Tracer.stream_to` attaches a
:class:`SpanSink` so each span is appended to a JSONL file the moment
it closes and its in-memory slot is released — a ``full``-preset run
holds only its *open* spans in memory. The sink keeps the aggregate
stats (count, per-name totals, top-level wall time) the run manifest
needs, so nothing is lost by not retaining the records. Streamed files
are in span *completion* order; sort by ``start_s`` to recover the
timeline.

Cross-process tracing: every record carries the tracer's ``trace_id``
and the recording ``pid``. A parent process captures its position with
:func:`current_trace_context` and ships the (picklable)
:class:`TraceContext` to a worker, which installs it via
:meth:`Tracer.bind_context` — the worker's root spans then reference
the submitting span's id, and :meth:`Tracer.adopt` re-parents them
under that *local* span on merge, so a ``--profile --jobs N`` manifest
is one rooted tree instead of N+1 concatenated forests.
"""

from __future__ import annotations

import functools
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, TypeVar

from repro.obs import runtime
from repro.utils.serialization import PathLike, _json_default

F = TypeVar("F", bound=Callable[..., Any])

_Token = Tuple[int, float]          # (record index, perf_counter at entry)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace identifier (unique, not reproducible —
    trace ids name runs, they never feed numerics)."""
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class TraceContext:
    """The picklable coordinates of one point in a distributed trace.

    ``trace_id`` names the run; ``parent_span_id`` is the id of the
    span that submitted the remote work (``None`` when captured outside
    any span). Ship it to a worker process and hand it to
    :meth:`Tracer.bind_context` so the worker's spans join the parent's
    tree on merge.
    """

    trace_id: str
    parent_span_id: Optional[int] = None


def current_trace_context() -> TraceContext:
    """The process tracer's trace id + the calling thread's open span."""
    return TraceContext(trace_id=TRACER.trace_id,
                        parent_span_id=TRACER.current_span_id())


class SpanSink:
    """Incremental JSONL writer for span records (one line per span).

    Owned by :class:`Tracer` while streaming; accumulates the summary
    statistics (:meth:`summary`) that :func:`repro.obs.build_manifest`
    would otherwise derive from the in-memory records. Thread-safe;
    writes are flushed per record so a crashed run still leaves a
    usable trace on disk.
    """

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w")
        self._lock = threading.Lock()
        self._n_spans = 0
        self._stages: Dict[str, Dict[str, Any]] = {}
        self._top_level_wall_s = 0.0
        self._closed = False

    def write(self, record: Dict[str, Any]) -> None:
        """Append one span record and fold it into the summary."""
        line = json.dumps(record, separators=(",", ":"),
                          default=_json_default)
        with self._lock:
            if self._closed:
                return
            self._fh.write(line + "\n")
            self._fh.flush()
            self._n_spans += 1
            entry = self._stages.setdefault(
                record["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0})
            entry["count"] += 1
            duration = record.get("duration_s")
            if duration is not None:
                entry["total_s"] += duration
                entry["max_s"] = max(entry["max_s"], duration)
                if record.get("parent_id") is None:
                    self._top_level_wall_s += duration

    def summary(self) -> Dict[str, Any]:
        """Manifest-ready aggregate of everything written so far."""
        with self._lock:
            return {
                "n_spans": self._n_spans,
                "wall_time_s": self._top_level_wall_s,
                "stages": {name: dict(entry)
                           for name, entry in self._stages.items()},
            }

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._fh.close()


class Tracer:
    """Collects finished span records; one instance per process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        # Flushed-to-sink slots become None so open-span *indices* held
        # on thread stacks stay valid without retaining closed records.
        self._records: List[Optional[Dict[str, Any]]] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self._next_id = 0
        self._sink: Optional[SpanSink] = None
        self._trace_id = new_trace_id()
        self._context_parent_id: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str:
        """The id naming the trace this tracer's spans belong to."""
        return self._trace_id

    def bind_context(self, ctx: TraceContext) -> None:
        """Join a foreign trace (worker side of the propagation).

        Subsequent spans carry ``ctx.trace_id``, and spans opened with
        an empty stack record ``ctx.parent_span_id`` as their parent —
        a *remote* reference the submitting process's
        :meth:`adopt` resolves against its own live spans, re-rooting
        the worker tree under the span that launched the work.
        """
        with self._lock:
            self._trace_id = ctx.trace_id
            self._context_parent_id = ctx.parent_span_id

    def _stack(self) -> List[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def push(self, name: str, attrs: Dict[str, Any]) -> _Token:
        """Open a span; returns the token :meth:`pop` closes it with."""
        t0 = time.perf_counter()
        stack = self._stack()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            # Stack entries are open spans, which are never flushed to a
            # sink, so the parent slot is always a live record.
            parent = self._records[stack[-1]] if stack else None
            if parent is not None:
                parent_id: Optional[int] = parent["id"]
            else:
                # Bound trace context: roots reference the remote
                # submitting span (resolved to a local one on adopt).
                parent_id = self._context_parent_id
            record = {
                "id": span_id,
                "parent_id": parent_id,
                "name": name,
                "depth": len(stack),
                "start_s": t0 - self._epoch,
                "duration_s": None,
                "attrs": dict(attrs),
                "status": "open",
                "error": None,
                "trace_id": self._trace_id,
                "pid": os.getpid(),
            }
            index = len(self._records)
            self._records.append(record)
        stack.append(index)
        return index, t0

    def pop(self, token: _Token, exc_type: Optional[type] = None) -> None:
        """Close the span opened by ``token`` (exception-safe)."""
        t1 = time.perf_counter()
        index, t0 = token
        stack = self._stack()
        # Unwind to the matching entry even if an inner span leaked.
        while stack and stack[-1] != index:
            stack.pop()
        if stack:
            stack.pop()
        with self._lock:
            record = self._records[index]
            if record is None:          # already drained by end_stream()
                return
            record["duration_s"] = t1 - t0
            record["status"] = "error" if exc_type is not None else "ok"
            record["error"] = exc_type.__name__ if exc_type is not None else None
            if self._sink is not None:
                self._sink.write(record)
                self._records[index] = None

    # ------------------------------------------------------------------
    def current_span_id(self) -> Optional[int]:
        """Id of the calling thread's innermost open span (or ``None``)."""
        stack = self._stack()
        if not stack:
            return None
        with self._lock:
            record = self._records[stack[-1]]
            return int(record["id"]) if record is not None else None

    def now_s(self) -> float:
        """Seconds since the tracer epoch (for rebasing foreign spans)."""
        return time.perf_counter() - self._epoch

    def adopt(self, records: List[Dict[str, Any]],
              parent_id: Optional[int] = None,
              start_offset_s: float = 0.0,
              extra_attrs: Optional[Dict[str, Any]] = None) -> int:
        """Append span records produced by another tracer (subprocess).

        Ids are re-issued from this tracer's counter and internal
        parent links remapped. Re-parenting resolves, in order: a parent
        inside the adopted batch (remapped id); a parent that is a
        *live local span id* — the trace-context reference a
        :meth:`bind_context`-bound worker stamps on its roots — kept as
        is; otherwise the explicit ``parent_id`` fallback (e.g. the
        executor's open span). Depths are recomputed from the resolved
        parent so the adopted subtree nests correctly, ``trace_id`` is
        preserved (foreign records without one get this tracer's), and
        start times shift by ``start_offset_s`` so a child that started
        its clock at task launch lands at the right place on the parent
        timeline. ``extra_attrs`` (e.g. the trial index) merge into
        every adopted record's attrs. Returns the number of records
        adopted.
        """
        with self._lock:
            local_depths: Dict[int, int] = {
                int(existing["id"]): int(existing.get("depth", 0))
                for existing in self._records if existing is not None}
            if parent_id is not None and parent_id not in local_depths:
                parent_id = None
            id_map: Dict[Any, int] = {}
            adopted_depths: Dict[int, int] = {}
            for record in records:
                new_id = self._next_id
                self._next_id += 1
                id_map[record.get("id")] = new_id
                adopted = dict(record)
                adopted["id"] = new_id
                old_parent = record.get("parent_id")
                if (old_parent is not None and old_parent in id_map
                        and old_parent != record.get("id")):
                    new_parent: Optional[int] = id_map[old_parent]
                    depth = adopted_depths.get(new_parent, 0) + 1
                elif old_parent is not None and old_parent in local_depths:
                    # Remote trace-context reference to a span we own.
                    new_parent = int(old_parent)
                    depth = local_depths[new_parent] + 1
                elif parent_id is not None:
                    new_parent = parent_id
                    depth = local_depths[parent_id] + 1 \
                        + int(record.get("depth", 0))
                else:
                    new_parent = None
                    depth = int(record.get("depth", 0))
                adopted["parent_id"] = new_parent
                adopted["depth"] = depth
                adopted_depths[new_id] = depth
                adopted["start_s"] = (float(record.get("start_s", 0.0))
                                      + start_offset_s)
                adopted.setdefault("trace_id", self._trace_id)
                adopted.setdefault("pid", None)
                if extra_attrs:
                    adopted["attrs"] = {**record.get("attrs", {}),
                                        **extra_attrs}
                if (self._sink is not None
                        and adopted.get("duration_s") is not None):
                    # Already closed by the worker: straight to disk.
                    self._sink.write(adopted)
                else:
                    self._records.append(adopted)
            return len(records)

    def records(self) -> List[Dict[str, Any]]:
        """Copies of every in-memory span record, in start order.

        While streaming, closed spans live on disk, not here — only the
        spans still open (plus anything recorded before the stream
        started) are returned.
        """
        with self._lock:
            return [dict(r) for r in self._records if r is not None]

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    @property
    def sink(self) -> Optional[SpanSink]:
        """The active streaming sink, or ``None`` when buffering."""
        return self._sink

    def stream_to(self, path: PathLike) -> Path:
        """Start streaming closed spans to ``path`` (JSONL, truncated).

        Records already closed in memory are flushed to the sink
        immediately, so a stream started mid-run loses nothing. Any
        previous sink is closed first. Returns the sink path.
        """
        sink = SpanSink(path)
        with self._lock:
            old, self._sink = self._sink, sink
            for index, record in enumerate(self._records):
                if record is not None and record.get("duration_s") is not None:
                    sink.write(record)
                    self._records[index] = None
        if old is not None:
            old.close()
        return sink.path

    def end_stream(self) -> Optional[SpanSink]:
        """Flush everything left in memory and close the stream.

        Spans still open (a crashed or mid-run export) are written with
        ``status="open"`` — the same way a buffered export reports
        them. Returns the closed sink (for its path and
        :meth:`SpanSink.summary`), or ``None`` if not streaming.
        """
        with self._lock:
            sink, self._sink = self._sink, None
            if sink is None:
                return None
            for index, record in enumerate(self._records):
                if record is not None:
                    sink.write(record)
                    self._records[index] = None
        sink.close()
        return sink

    def reset(self) -> None:
        """Drop all records, close any stream, restart the clock.

        Also leaves any bound trace context and issues a fresh trace
        id — a reset tracer starts a new trace.
        """
        with self._lock:
            sink, self._sink = self._sink, None
            self._records.clear()
            self._next_id = 0
            self._epoch = time.perf_counter()
            self._trace_id = new_trace_id()
            self._context_parent_id = None
        if sink is not None:
            sink.close()
        self._local = threading.local()


#: The process-wide tracer all instrumentation writes to.
TRACER = Tracer()


class span:
    """A named span — context manager and decorator (see module docs)."""

    __slots__ = ("name", "attrs", "_tokens")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.attrs = attrs
        self._tokens: List[Optional[_Token]] = []

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "span":
        if not runtime._STATE.active:
            self._tokens.append(None)
            return self
        self._tokens.append(TRACER.push(self.name, self.attrs))
        return self

    def __exit__(self, exc_type: Optional[type], exc: Optional[BaseException],
                 tb: Any) -> None:
        token = self._tokens.pop()
        if token is not None:
            TRACER.pop(token, exc_type)

    # -- decorator ------------------------------------------------------
    def __call__(self, func: F) -> F:
        if not runtime.env_enabled():
            return func
        name, attrs = self.name, self.attrs

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(name, **attrs):
                return func(*args, **kwargs)

        return wrapper  # type: ignore[return-value]


def current_depth() -> int:
    """Nesting depth of the calling thread (0 outside any span)."""
    return len(TRACER._stack())
