"""Structured run manifests: one JSON document describing a whole run.

A manifest captures everything needed to interpret (and re-run) an
instrumented invocation: the command and its arguments, preset/seed,
the git revision the code ran at, the library/interpreter environment,
per-stage wall-time totals aggregated from the span records, and the
final metric snapshot. The schema is versioned so downstream tooling
(``repro obs summarize``, CI artifact diffing) can evolve safely.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Mapping, Optional, Sequence

SCHEMA = "repro.obs.manifest/v1"

#: Environment variables worth recording (reproducibility knobs).
_ENV_KEYS = ("REPRO_OBS", "REPRO_DEBUG", "REPRO_LOG_LEVEL",
             "REPRO_BENCH_PRESET", "REPRO_BACKEND")


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current ``git rev-parse HEAD``, or ``None`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5)
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    rev = out.stdout.strip()
    return rev or None


def environment_info() -> Dict[str, Any]:
    """Interpreter/library/platform facts plus the ``REPRO_*`` env."""
    import numpy

    from repro import __version__

    return {
        "repro_version": __version__,
        "python": sys.version.split()[0],
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "env": {k: os.environ[k] for k in _ENV_KEYS if k in os.environ},
    }


def stage_totals(spans: Sequence[Mapping[str, Any]]) -> Dict[str, Dict[str, Any]]:
    """Aggregate span records into per-name wall-time totals.

    Returns ``{name: {count, total_s, max_s}}``; still-open spans
    (``duration_s`` is None) are counted but contribute no time.
    """
    totals: Dict[str, Dict[str, Any]] = {}
    for record in spans:
        entry = totals.setdefault(record["name"],
                                  {"count": 0, "total_s": 0.0, "max_s": 0.0})
        entry["count"] += 1
        duration = record.get("duration_s")
        if duration is not None:
            entry["total_s"] += duration
            entry["max_s"] = max(entry["max_s"], duration)
    return totals


def build_manifest(command: str,
                   argv: Optional[Sequence[str]] = None,
                   preset: Optional[str] = None,
                   seed: Optional[int] = None,
                   spans: Optional[Sequence[Mapping[str, Any]]] = None,
                   metrics_snapshot: Optional[Mapping[str, Any]] = None,
                   spans_file: Optional[str] = None,
                   extra: Optional[Mapping[str, Any]] = None,
                   stream_summary: Optional[Mapping[str, Any]] = None,
                   ) -> Dict[str, Any]:
    """Assemble the manifest document (plain JSON-able dict).

    ``stream_summary`` (a :meth:`repro.obs.trace.SpanSink.summary`
    document) substitutes for ``spans`` when the run streamed them to
    disk — the span-derived fields come from the sink's running
    aggregates instead of an in-memory pass.
    """
    if stream_summary is not None:
        n_spans = int(stream_summary.get("n_spans", 0))
        wall_time_s = float(stream_summary.get("wall_time_s", 0.0))
        stages: Dict[str, Dict[str, Any]] = {
            name: dict(entry)
            for name, entry in stream_summary.get("stages", {}).items()}
    else:
        span_list = list(spans) if spans is not None else []
        closed = [s for s in span_list if s.get("duration_s") is not None]
        top_level = [s for s in closed if s.get("parent_id") is None]
        n_spans = len(span_list)
        wall_time_s = sum(s["duration_s"] for s in top_level)
        stages = stage_totals(span_list)
    return {
        "schema": SCHEMA,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "preset": preset,
        "seed": seed,
        "created_unix": time.time(),
        "git_revision": git_revision(),
        "environment": environment_info(),
        "n_spans": n_spans,
        "wall_time_s": wall_time_s,
        "stages": stages,
        "metrics": dict(metrics_snapshot) if metrics_snapshot else
                   {"counters": {}, "gauges": {}, "histograms": {}},
        "spans_file": spans_file,
        "extra": dict(extra) if extra else {},
    }


def span_tree_lines(spans: Sequence[Mapping[str, Any]],
                    max_lines: int = 200) -> List[str]:
    """Indented one-line-per-span rendering (debugging aid)."""
    lines = []
    for record in spans[:max_lines]:
        duration = record.get("duration_s")
        shown = f"{duration * 1e3:9.2f} ms" if duration is not None else "     open"
        lines.append(f"{shown}  {'  ' * int(record.get('depth', 0))}"
                     f"{record['name']}")
    if len(spans) > max_lines:
        lines.append(f"... {len(spans) - max_lines} more span(s)")
    return lines
