"""Dump a run's spans and metrics to disk (JSONL + manifest JSON).

The canonical layout next to a run's results is::

    <out_dir>/<stem>-spans.jsonl      one span record per line
    <out_dir>/<stem>-manifest.json    the structured run manifest

:func:`export_run` snapshots the process-wide tracer and metrics
registry; pass ``reset=True`` (the CLI default) to clear both after the
export so back-to-back runs in one process do not bleed into each
other.

If the tracer is *streaming* (``TRACER.stream_to`` — the CLI starts a
stream whenever ``--obs-dir`` is set), spans are already on disk: the
export finalizes the stream, reuses its file, and builds the manifest
from the sink's running summary instead of re-reading the records.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Sequence

from repro.obs import metrics as _metrics
from repro.obs import trace as _trace
from repro.obs.manifest import build_manifest
from repro.utils.serialization import PathLike, save_json, write_jsonl


def write_spans_jsonl(path: PathLike,
                      spans: Sequence[Mapping[str, Any]]) -> Path:
    """Write span records as JSONL; returns the path written."""
    return write_jsonl(path, spans)


def export_run(out_dir: PathLike, command: str,
               argv: Optional[Sequence[str]] = None,
               preset: Optional[str] = None,
               seed: Optional[int] = None,
               extra: Optional[Mapping[str, Any]] = None,
               stem: Optional[str] = None,
               reset: bool = False) -> Dict[str, Path]:
    """Export the current tracer/metrics state as one run's artifacts.

    Returns ``{"manifest": Path, "spans": Path}``. ``stem`` defaults to
    a filesystem-safe version of ``command``.
    """
    out = Path(out_dir)
    stem = stem or "".join(c if c.isalnum() or c in "-_." else "-"
                           for c in command) or "run"
    snapshot = _metrics.REGISTRY.snapshot()
    sink = _trace.TRACER.end_stream()
    if sink is not None:
        spans_path = sink.path
        document = build_manifest(
            command, argv=argv, preset=preset, seed=seed,
            stream_summary=sink.summary(), metrics_snapshot=snapshot,
            spans_file=spans_path.name, extra=extra)
    else:
        spans = _trace.TRACER.records()
        spans_path = write_spans_jsonl(out / f"{stem}-spans.jsonl", spans)
        document = build_manifest(
            command, argv=argv, preset=preset, seed=seed, spans=spans,
            metrics_snapshot=snapshot, spans_file=spans_path.name, extra=extra)
    manifest_path = save_json(out / f"{stem}-manifest.json", document)
    if reset:
        _trace.TRACER.reset()
        _metrics.REGISTRY.reset()
    return {"manifest": manifest_path, "spans": spans_path}
