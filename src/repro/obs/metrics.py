"""Process-local metrics: counters, gauges and histograms.

The registry is a plain thread-safe in-memory store; nothing is pushed
anywhere. Library code records through the module-level helpers
(:func:`inc`, :func:`gauge`, :func:`observe`), which consult the
:mod:`repro.obs.runtime` switch first — with observability off each
call is a single attribute read and an early return.

Histograms keep running aggregates (count/total/min/max/last) plus the
raw value sequence up to :data:`SERIES_CAP` points, so slowly-evolving
curves (the PWT per-epoch offset loss, trainer epoch accuracy) survive
into the run manifest without unbounded memory growth.

For tail statistics (per-trial wall time, request latency) each
histogram additionally maintains a fixed-size **reservoir sample** of
at most :data:`RESERVOIR_CAP` values, from which p50/p95/p99 are
computed. The reservoir sampler is deterministic — its index stream
comes from a fixed-seed :func:`repro.utils.rng.make_rng` generator, so
the same observation sequence always yields the same reservoir — and it
survives :meth:`Histogram.merge`: worker shards merged in trial order
produce a deterministic merged reservoir whose percentiles match the
serial run's exactly while total counts stay under the cap, and within
sampling tolerance beyond it.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.obs import runtime
from repro.utils.rng import make_rng

Number = Union[int, float]

#: Maximum raw observations a histogram retains (aggregates keep going).
SERIES_CAP = 4096

#: Fixed reservoir size backing the percentile estimates.
RESERVOIR_CAP = 512

#: Seed of every histogram's reservoir index stream (determinism, not
#: statistics: the reservoir must be reproducible run-to-run).
RESERVOIR_SEED = 0x0B5E7E0


def percentile_of(values: Sequence[float], q: float) -> Optional[float]:
    """The ``q``-th percentile (0-100) of ``values``, linearly
    interpolated between order statistics; ``None`` on empty input."""
    if not values:
        return None
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Histogram:
    """Running aggregates, a capped raw series, and a percentile
    reservoir of one metric."""

    __slots__ = ("count", "total", "min", "max", "last", "series",
                 "truncated", "reservoir", "_rng")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self.series: List[float] = []
        self.truncated = False
        self.reservoir: List[float] = []
        # rng-ok — fixed-seed reservoir index stream: deterministic
        # sampling bookkeeping, never observable in trial numerics.
        self._rng = make_rng(RESERVOIR_SEED)

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self.last = v
        if len(self.series) < SERIES_CAP:
            self.series.append(v)
        else:
            self.truncated = True
        if len(self.reservoir) < RESERVOIR_CAP:
            self.reservoir.append(v)
        else:
            # Algorithm R with a deterministic index stream.
            j = int(self._rng.integers(0, self.count))
            if j < RESERVOIR_CAP:
                self.reservoir[j] = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> Optional[float]:
        """Reservoir estimate of the ``q``-th percentile (0-100)."""
        return percentile_of(self.reservoir, q)

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The p50/p95/p99 trio every snapshot and manifest reports."""
        return {"p50": self.percentile(50.0), "p95": self.percentile(95.0),
                "p99": self.percentile(99.0)}

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Aggregates (count/total/min/max) combine exactly; ``last`` takes
        the merged snapshot's value (the merge happens after those
        observations); the raw series is extended up to ``SERIES_CAP``
        and ``truncated`` records any overflow. The percentile
        reservoirs combine deterministically: concatenation while the
        union fits :data:`RESERVOIR_CAP`, otherwise a count-weighted
        subsample drawn from the fixed-seed index stream — so merging
        N worker shards in trial order always yields the same merged
        percentiles. Used to merge worker-process registries back into
        the parent.
        """
        count = int(snapshot.get("count", 0))
        if count == 0:
            return
        count_before = self.count
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        for other, pick in ((snapshot.get("min"), min),
                            (snapshot.get("max"), max)):
            if other is not None:
                current = self.min if pick is min else self.max
                merged = float(other) if current is None \
                    else pick(current, float(other))
                if pick is min:
                    self.min = merged
                else:
                    self.max = merged
        if snapshot.get("last") is not None:
            self.last = float(snapshot["last"])
        series = list(snapshot.get("series", ()))
        room = SERIES_CAP - len(self.series)
        self.series.extend(float(v) for v in series[:room])
        if snapshot.get("truncated") or len(series) > room:
            self.truncated = True
        # Older snapshots predate the reservoir field; their raw series
        # is the best available sample.
        other_res = [float(v) for v in
                     snapshot.get("reservoir", snapshot.get("series", ()))]
        self._merge_reservoir(other_res, count, count_before)

    def _merge_reservoir(self, other: List[float], other_count: int,
                         count_before: int) -> None:
        if not other:
            return
        if len(self.reservoir) + len(other) <= RESERVOIR_CAP:
            self.reservoir.extend(other)
            return
        # Count-weighted subsample: each side keeps a share of the cap
        # proportional to the observation mass its reservoir represents.
        total = max(count_before + other_count, 1)
        k_self = round(RESERVOIR_CAP * count_before / total)
        k_self = min(len(self.reservoir), max(
            k_self, RESERVOIR_CAP - len(other)))
        k_other = min(len(other), RESERVOIR_CAP - k_self)
        self.reservoir = (self._subsample(self.reservoir, k_self)
                          + self._subsample(other, k_other))

    def _subsample(self, values: List[float], k: int) -> List[float]:
        if k >= len(values):
            return list(values)
        if k <= 0:
            return []
        picked = self._rng.choice(len(values), size=k, replace=False)
        return [values[int(i)] for i in sorted(picked)]

    def snapshot(self) -> Dict[str, Any]:
        snap = {
            "count": self.count, "total": self.total, "mean": self.mean,
            "min": self.min, "max": self.max, "last": self.last,
            "series": list(self.series), "truncated": self.truncated,
            "reservoir": list(self.reservoir),
        }
        snap.update(self.percentiles())
        return snap


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a foreign registry :meth:`snapshot` into this registry.

        Counters add, gauges take the snapshot's value (last write
        wins), histograms merge via :meth:`Histogram.merge`. This is how
        :mod:`repro.parallel` folds each worker process's metrics back
        into the parent so ``--profile`` manifests stay complete.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) \
                    + float(value)
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, hist_snap in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge(hist_snap)

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop all recorded values (tests; the CLI between runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry all library instrumentation writes to.
REGISTRY = MetricsRegistry()


def inc(name: str, value: Number = 1) -> None:
    """Increment a counter — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.inc(name, value)


def gauge(name: str, value: Number) -> None:
    """Set a gauge — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.gauge(name, value)


def observe(name: str, value: Number) -> None:
    """Histogram observation — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.observe(name, value)
