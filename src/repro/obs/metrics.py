"""Process-local metrics: counters, gauges and histograms.

The registry is a plain thread-safe in-memory store; nothing is pushed
anywhere. Library code records through the module-level helpers
(:func:`inc`, :func:`gauge`, :func:`observe`), which consult the
:mod:`repro.obs.runtime` switch first — with observability off each
call is a single attribute read and an early return.

Histograms keep running aggregates (count/total/min/max/last) plus the
raw value sequence up to :data:`SERIES_CAP` points, so slowly-evolving
curves (the PWT per-epoch offset loss, trainer epoch accuracy) survive
into the run manifest without unbounded memory growth.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs import runtime

Number = Union[int, float]

#: Maximum raw observations a histogram retains (aggregates keep going).
SERIES_CAP = 4096


class Histogram:
    """Running aggregates plus a capped raw series of one metric."""

    __slots__ = ("count", "total", "min", "max", "last", "series",
                 "truncated")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None
        self.series: List[float] = []
        self.truncated = False

    def observe(self, value: Number) -> None:
        v = float(value)
        self.count += 1
        self.total += v
        self.min = v if self.min is None else min(self.min, v)
        self.max = v if self.max is None else max(self.max, v)
        self.last = v
        if len(self.series) < SERIES_CAP:
            self.series.append(v)
        else:
            self.truncated = True

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another histogram's :meth:`snapshot` into this one.

        Aggregates (count/total/min/max) combine exactly; ``last`` takes
        the merged snapshot's value (the merge happens after those
        observations); the raw series is extended up to ``SERIES_CAP``
        and ``truncated`` records any overflow. Used to merge worker-
        process registries back into the parent.
        """
        count = int(snapshot.get("count", 0))
        if count == 0:
            return
        self.count += count
        self.total += float(snapshot.get("total", 0.0))
        for other, pick in ((snapshot.get("min"), min),
                            (snapshot.get("max"), max)):
            if other is not None:
                current = self.min if pick is min else self.max
                merged = float(other) if current is None \
                    else pick(current, float(other))
                if pick is min:
                    self.min = merged
                else:
                    self.max = merged
        if snapshot.get("last") is not None:
            self.last = float(snapshot["last"])
        series = list(snapshot.get("series", ()))
        room = SERIES_CAP - len(self.series)
        self.series.extend(float(v) for v in series[:room])
        if snapshot.get("truncated") or len(series) > room:
            self.truncated = True

    def snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count, "total": self.total, "mean": self.mean,
            "min": self.min, "max": self.max, "last": self.last,
            "series": list(self.series), "truncated": self.truncated,
        }


class MetricsRegistry:
    """Thread-safe named counters, gauges and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    def inc(self, name: str, value: Number = 1) -> None:
        """Add ``value`` to the counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: Number) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: Number) -> None:
        """Record one observation into the histogram ``name``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.observe(value)

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a foreign registry :meth:`snapshot` into this registry.

        Counters add, gauges take the snapshot's value (last write
        wins), histograms merge via :meth:`Histogram.merge`. This is how
        :mod:`repro.parallel` folds each worker process's metrics back
        into the parent so ``--profile`` manifests stay complete.
        """
        with self._lock:
            for name, value in snapshot.get("counters", {}).items():
                self._counters[name] = self._counters.get(name, 0.0) \
                    + float(value)
            for name, value in snapshot.get("gauges", {}).items():
                self._gauges[name] = float(value)
            for name, hist_snap in snapshot.get("histograms", {}).items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = Histogram()
                hist.merge(hist_snap)

    def counter_value(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        with self._lock:
            return self._counters.get(name, 0.0)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-able copy of everything recorded so far."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {name: h.snapshot()
                               for name, h in self._histograms.items()},
            }

    def reset(self) -> None:
        """Drop all recorded values (tests; the CLI between runs)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-wide registry all library instrumentation writes to.
REGISTRY = MetricsRegistry()


def inc(name: str, value: Number = 1) -> None:
    """Increment a counter — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.inc(name, value)


def gauge(name: str, value: Number) -> None:
    """Set a gauge — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.gauge(name, value)


def observe(name: str, value: Number) -> None:
    """Histogram observation — no-op (one flag read) when obs is off."""
    if runtime._STATE.active:
        REGISTRY.observe(name, value)
