"""Process-wide observability switch (``REPRO_OBS``).

Every obs entry point pays one attribute read when observability is
off, and the :func:`repro.obs.trace.span` *decorator* pays nothing at
all (it returns the function unchanged when the environment says off at
decoration time — the same zero-cost contract as
:mod:`repro.utils.contracts`).

The switch is deliberately dynamic on top of the environment default:
``repro deploy --profile`` enables collection from inside the process
(:func:`enable`) even when ``REPRO_OBS`` was unset at startup, and
tests flip it on/off without touching ``os.environ``.
"""

from __future__ import annotations

import os
from typing import Optional

_TRUTHY = {"1", "true", "yes", "on"}


def env_enabled(env: Optional[str] = None) -> bool:
    """Whether ``REPRO_OBS`` asks for observability (truthy values only).

    ``env`` overrides the environment lookup (for tests).
    """
    value = os.environ.get("REPRO_OBS", "") if env is None else env
    return value.strip().lower() in _TRUTHY


class _State:
    """One mutable bool behind a slot — the cheapest dynamic flag."""

    __slots__ = ("active",)

    def __init__(self, active: bool) -> None:
        self.active = active


_STATE = _State(env_enabled())


def enabled() -> bool:
    """Whether metric/span collection is currently active."""
    return _STATE.active


def enable() -> None:
    """Turn collection on for the rest of the process (or until off)."""
    _STATE.active = True


def disable() -> None:
    """Turn collection off."""
    _STATE.active = False
