"""Offline analysis of recorded span streams (``repro obs ...``).

Three read-only tools over the JSONL traces ``--profile`` runs write:

``critical-path``
    For every root span, the longest child chain (each step the child
    with the largest duration), with *self-time* attribution — the part
    of a span's duration not covered by its children — so the line that
    actually burns the time is visible even when it sits five levels
    deep.
``flame``
    Folded-stack output (``root;child;leaf <microseconds>`` per line),
    the interchange format standard flamegraph tools consume
    (``flamegraph.pl``, speedscope, inferno). Values are integer
    microseconds of self time, so stacks aggregate correctly.
``diff``
    Two obs artifacts (manifests or whole ``--obs-dir`` directories) →
    a per-span-name delta table of counts and wall-time totals, plus a
    percentile-aware comparison of every histogram the two runs share
    (p50/p95/p99 shifts — how the *tail* moved, not just the mean).

All inputs go through :func:`resolve_spans_path` /
:func:`load_trace`, which accept a spans JSONL file, a run-manifest
JSON (its ``spans_file`` is followed), or an ``--obs-dir`` directory —
including the stream a crashed run left behind: a torn final line
(killed mid-write) is dropped instead of failing the whole read.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.utils.logging import get_logger
from repro.utils.serialization import PathLike, SerializationError, load_json

logger = get_logger(__name__)

__all__ = ["SpanNode", "SpanTree", "CriticalPathStep", "StageDelta",
           "PercentileDelta", "load_trace", "resolve_spans_path",
           "resolve_manifest_path", "build_tree", "critical_path",
           "render_critical_path", "fold_stacks", "render_folded",
           "diff_manifests", "render_diff"]


# ----------------------------------------------------------------------
# input resolution
# ----------------------------------------------------------------------
def load_trace(path: PathLike) -> List[Dict[str, Any]]:
    """Read span records from a JSONL trace, crash-tolerantly.

    Unlike the strict :func:`repro.utils.serialization.read_jsonl`, a
    torn *final* line — what a process killed mid-``write`` leaves —
    is dropped with a warning; a malformed line anywhere else is still
    an error (the file is not a span stream).
    """
    p = Path(path)
    lines = p.read_text().splitlines()
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                logger.warning("%s:%d: dropping torn final line "
                               "(crashed mid-write?)", p, lineno)
                break
            raise SerializationError(
                f"{p}:{lineno} is not valid JSON ({exc})") from exc
    return records


def _pick_match(directory: Path, pattern: str) -> Optional[Path]:
    """The file matching ``pattern`` in ``directory`` — newest on ties.

    A default ``obs/`` directory accumulates one artifact set per
    command (``deploy-manifest.json``, ``serve-manifest.json``, …);
    resolving to the most recently written run keeps ``repro obs
    summarize|critical-path|flame obs/`` working out of the box, and
    the note names the siblings so older runs stay reachable by path.
    """
    matches = sorted(directory.glob(pattern))
    if len(matches) > 1:
        newest = max(matches, key=lambda m: m.stat().st_mtime)
        others = ", ".join(m.name for m in matches if m is not newest)
        logger.info("%s holds %d files matching %r; using newest %s "
                    "(also present: %s)", directory, len(matches), pattern,
                    newest.name, others)
        return newest
    return matches[0] if matches else None


def resolve_spans_path(path: PathLike) -> Path:
    """The spans JSONL behind ``path`` (file, manifest, or obs dir)."""
    p = Path(path)
    if p.is_dir():
        manifest = _pick_match(p, "*-manifest.json")
        if manifest is not None:
            return resolve_spans_path(manifest)
        spans = _pick_match(p, "*-spans.jsonl")
        if spans is None:
            raise FileNotFoundError(
                f"{p} holds neither a *-manifest.json nor a *-spans.jsonl")
        return spans
    if p.name.endswith(".jsonl"):
        return p
    document = load_json(p)
    spans_file = document.get("spans_file") if isinstance(document, dict) \
        else None
    if not spans_file:
        raise FileNotFoundError(f"{p} is a manifest without a spans_file")
    return p.parent / spans_file


def resolve_manifest_path(path: PathLike) -> Path:
    """The run-manifest JSON behind ``path`` (file or obs dir)."""
    p = Path(path)
    if p.is_dir():
        manifest = _pick_match(p, "*-manifest.json")
        if manifest is None:
            raise FileNotFoundError(f"{p} holds no *-manifest.json")
        return manifest
    return p


# ----------------------------------------------------------------------
# span tree
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One span record plus its resolved children."""

    record: Dict[str, Any]
    children: List["SpanNode"] = field(default_factory=list)

    @property
    def name(self) -> str:
        return str(self.record.get("name", "?"))

    @property
    def span_id(self) -> Any:
        return self.record.get("id")

    @property
    def duration_s(self) -> float:
        duration = self.record.get("duration_s")
        return float(duration) if duration is not None else 0.0

    @property
    def self_s(self) -> float:
        """Duration not covered by children (clamped at 0: adopted
        worker subtrees overlap in wall time under a parallel grid)."""
        return max(0.0, self.duration_s
                   - sum(c.duration_s for c in self.children))


@dataclass
class SpanTree:
    """A forest reconstructed from flat span records."""

    roots: List[SpanNode]
    n_spans: int
    n_open: int

    def is_single_rooted(self) -> bool:
        """Whether every span transitively parents under one root."""
        return len(self.roots) == 1


def build_tree(spans: Sequence[Mapping[str, Any]]) -> SpanTree:
    """Link flat records into a forest by id/parent_id.

    Records whose parent is absent from the batch become roots (the
    stream of a crashed run can lose an unclosed ancestor). Roots are
    ordered heaviest-first.
    """
    nodes: Dict[Any, SpanNode] = {}
    ordered: List[SpanNode] = []
    for record in spans:
        node = SpanNode(record=dict(record))
        ordered.append(node)
        if record.get("id") is not None:
            nodes[record["id"]] = node
    roots: List[SpanNode] = []
    for node in ordered:
        parent_id = node.record.get("parent_id")
        parent = nodes.get(parent_id) if parent_id is not None else None
        if parent is not None and parent is not node:
            parent.children.append(node)
        else:
            roots.append(node)
    roots.sort(key=lambda n: n.duration_s, reverse=True)
    n_open = sum(1 for n in ordered if n.record.get("duration_s") is None)
    return SpanTree(roots=roots, n_spans=len(ordered), n_open=n_open)


# ----------------------------------------------------------------------
# critical path
# ----------------------------------------------------------------------
@dataclass
class CriticalPathStep:
    """One hop of a root's longest chain."""

    name: str
    depth: int
    duration_s: float
    self_s: float
    status: str


def critical_path(spans: Sequence[Mapping[str, Any]]
                  ) -> List[List[CriticalPathStep]]:
    """Longest child chain per root (heaviest child at every step)."""
    chains: List[List[CriticalPathStep]] = []
    for root in build_tree(spans).roots:
        chain: List[CriticalPathStep] = []
        node: Optional[SpanNode] = root
        depth = 0
        while node is not None:
            chain.append(CriticalPathStep(
                name=node.name, depth=depth, duration_s=node.duration_s,
                self_s=node.self_s,
                status=str(node.record.get("status", "?"))))
            node = max(node.children, key=lambda c: c.duration_s,
                       default=None)
            depth += 1
        chains.append(chain)
    return chains


def render_critical_path(chains: Sequence[Sequence[CriticalPathStep]],
                         ) -> str:
    """Fixed-width rendering of :func:`critical_path` output."""
    lines: List[str] = []
    for chain in chains:
        if not chain:
            continue
        root = chain[0]
        total = root.duration_s
        lines.append(f"critical path — {root.name} "
                     f"(total {total:.3f} s, {len(chain)} hop(s))")
        lines.append(f"  {'span':<38}{'total':>12}{'self':>12}{'share':>8}")
        for step in chain:
            share = step.self_s / total if total > 0 else 0.0
            marker = "" if step.status != "open" else "  [open]"
            lines.append(
                f"  {'  ' * step.depth}{step.name:<{max(1, 38 - 2 * step.depth)}}"
                f"{step.duration_s:>11.4f}s{step.self_s:>11.4f}s"
                f"{share:>8.1%}{marker}")
        lines.append("")
    if not lines:
        lines.append("(no spans)")
    return "\n".join(lines).rstrip("\n")


# ----------------------------------------------------------------------
# flame (folded stacks)
# ----------------------------------------------------------------------
def fold_stacks(spans: Sequence[Mapping[str, Any]]) -> Dict[str, int]:
    """Aggregate self time into folded stacks, in integer microseconds.

    Keys are ``;``-joined span-name chains from the root; values sum
    the self time of every span sharing that chain — exactly the input
    ``flamegraph.pl`` and compatible tools expect.
    """
    folded: Dict[str, int] = {}

    def walk(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{node.name}" if prefix else node.name
        micros = int(round(node.self_s * 1e6))
        if micros > 0 or not node.children:
            folded[stack] = folded.get(stack, 0) + micros
        for child in node.children:
            walk(child, stack)

    for root in build_tree(spans).roots:
        walk(root, "")
    return folded


def render_folded(folded: Mapping[str, int]) -> str:
    """One ``stack value`` line per entry, sorted for stable diffs."""
    return "\n".join(f"{stack} {value}"
                     for stack, value in sorted(folded.items()))


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
@dataclass
class StageDelta:
    """Per-span-name count/total comparison between two runs."""

    name: str
    count_a: int
    count_b: int
    total_a_s: float
    total_b_s: float

    @property
    def delta_s(self) -> float:
        return self.total_b_s - self.total_a_s

    @property
    def ratio(self) -> float:
        if self.total_a_s > 0:
            return self.total_b_s / self.total_a_s
        return float("inf") if self.total_b_s > 0 else 1.0


@dataclass
class PercentileDelta:
    """p50/p95/p99 shift of one shared histogram between two runs."""

    name: str
    a: Dict[str, Optional[float]]
    b: Dict[str, Optional[float]]

    def shift(self, key: str) -> Optional[float]:
        va, vb = self.a.get(key), self.b.get(key)
        if va is None or vb is None:
            return None
        return vb - va


def _percentile_block(hist: Mapping[str, Any]) -> Dict[str, Optional[float]]:
    out: Dict[str, Optional[float]] = {}
    for key in ("p50", "p95", "p99"):
        value = hist.get(key)
        out[key] = float(value) if value is not None else None
    return out


def diff_manifests(a: Mapping[str, Any], b: Mapping[str, Any],
                   ) -> Tuple[List[StageDelta], List[PercentileDelta]]:
    """Compare two run manifests: stage totals + histogram percentiles."""
    stages_a = a.get("stages") or {}
    stages_b = b.get("stages") or {}
    stage_rows = []
    for name in sorted(set(stages_a) | set(stages_b)):
        ea, eb = stages_a.get(name, {}), stages_b.get(name, {})
        stage_rows.append(StageDelta(
            name=name,
            count_a=int(ea.get("count", 0)), count_b=int(eb.get("count", 0)),
            total_a_s=float(ea.get("total_s", 0.0)),
            total_b_s=float(eb.get("total_s", 0.0))))
    stage_rows.sort(key=lambda r: abs(r.delta_s), reverse=True)

    hists_a = (a.get("metrics") or {}).get("histograms") or {}
    hists_b = (b.get("metrics") or {}).get("histograms") or {}
    hist_rows = [PercentileDelta(name=name,
                                 a=_percentile_block(hists_a[name]),
                                 b=_percentile_block(hists_b[name]))
                 for name in sorted(set(hists_a) & set(hists_b))]
    return stage_rows, hist_rows


def _fmt_opt(value: Optional[float]) -> str:
    return f"{value:10.4g}" if value is not None else f"{'-':>10}"


def render_diff(stage_rows: Sequence[StageDelta],
                hist_rows: Sequence[PercentileDelta],
                label_a: str = "a", label_b: str = "b") -> str:
    """Fixed-width rendering of :func:`diff_manifests` output."""
    lines = [f"obs diff — a: {label_a}  b: {label_b}"]
    if stage_rows:
        lines.append("")
        lines.append(f"{'span':<34}{'calls a/b':>12}{'total a':>11}"
                     f"{'total b':>11}{'delta':>11}{'ratio':>8}")
        for row in stage_rows:
            ratio = f"{row.ratio:7.2f}x" if row.ratio != float("inf") \
                else "    new "
            lines.append(
                f"{row.name:<34}{row.count_a:>5}/{row.count_b:<6}"
                f"{row.total_a_s:>10.3f}s{row.total_b_s:>10.3f}s"
                f"{row.delta_s:>+10.3f}s{ratio:>8}")
    if hist_rows:
        lines.append("")
        lines.append(f"{'histogram':<34}{'p50 a→b':>22}{'p95 a→b':>22}"
                     f"{'p99 a→b':>22}")
        for row in hist_rows:
            cells = []
            for key in ("p50", "p95", "p99"):
                cells.append(f"{_fmt_opt(row.a.get(key))}→"
                             f"{_fmt_opt(row.b.get(key))}")
            lines.append(f"{row.name:<34}" + "".join(f"{c:>22}"
                                                     for c in cells))
    if len(lines) == 1:
        lines.append("(nothing to compare)")
    return "\n".join(lines)
