"""Human-readable rendering of a run manifest (``repro obs summarize``).

Turns the per-stage wall-time totals and the metric snapshot of a
manifest JSON into fixed-width tables. Pure string building — no I/O
except :func:`summarize_file`'s manifest load.
"""

from __future__ import annotations

from typing import Any, List, Mapping

from repro.utils.serialization import PathLike, load_json


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:9.3f} s "
    return f"{value * 1e3:9.3f} ms"


def render_summary(manifest: Mapping[str, Any]) -> str:
    """Render one manifest as a per-stage time table + metric totals."""
    lines: List[str] = []
    command = manifest.get("command", "?")
    lines.append(f"run manifest — {command}")
    for key in ("preset", "seed", "git_revision", "wall_time_s"):
        value = manifest.get(key)
        if value is not None:
            shown = f"{value:.3f}" if key == "wall_time_s" else str(value)
            lines.append(f"  {key}: {shown}")
    env = manifest.get("environment") or {}
    if env:
        lines.append(f"  repro {env.get('repro_version', '?')} / "
                     f"python {env.get('python', '?')} / "
                     f"numpy {env.get('numpy', '?')}")

    stages = manifest.get("stages") or {}
    wall = manifest.get("wall_time_s") or 0.0
    if stages:
        lines.append("")
        lines.append(f"{'stage':<32}{'calls':>7}{'total':>13}{'share':>8}")
        order = sorted(stages.items(),
                       key=lambda item: item[1].get("total_s", 0.0),
                       reverse=True)
        for name, entry in order:
            total = entry.get("total_s", 0.0)
            share = f"{total / wall:6.1%}" if wall > 0 else "     -"
            lines.append(f"{name:<32}{entry.get('count', 0):>7}"
                         f"{_fmt_seconds(total):>13}{share:>8}")
    else:
        lines.append("")
        lines.append("(no spans recorded — run with REPRO_OBS=1 or --profile)")

    metric_block = manifest.get("metrics") or {}
    counters = metric_block.get("counters") or {}
    gauges = metric_block.get("gauges") or {}
    histograms = metric_block.get("histograms") or {}
    if counters or gauges or histograms:
        lines.append("")
        lines.append(f"{'metric':<40}{'value':>18}")
        for name in sorted(counters):
            lines.append(f"{name:<40}{counters[name]:>18g}")
        for name in sorted(gauges):
            lines.append(f"{name + ' (gauge)':<40}{gauges[name]:>18g}")
        for name in sorted(histograms):
            hist = histograms[name]
            shown = (f"n={hist.get('count', 0)} mean={hist.get('mean'):.4g} "
                     f"last={hist.get('last'):.4g}"
                     if hist.get("count") else "n=0")
            lines.append(f"{name + ' (hist)':<40}{shown:>18}")
    return "\n".join(lines)


def summarize_file(path: PathLike) -> str:
    """Load a manifest JSON from ``path`` and render its summary."""
    return render_summary(load_json(path))
