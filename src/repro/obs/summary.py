"""Human-readable rendering of a run manifest (``repro obs summarize``).

Turns the per-stage wall-time totals and the metric snapshot of a
manifest JSON into fixed-width tables. :func:`summarize_path` accepts
any obs artifact — a manifest JSON, a raw spans JSONL (including the
stream a crashed run left mid-write), or a whole ``--obs-dir``
directory — and renders the same summary for all of them: when no
manifest exists the span stream is aggregated on the fly, so streamed
and post-hoc exports read identically.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, List, Mapping, Optional

from repro.utils.serialization import PathLike, load_json


def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:9.3f} s "
    return f"{value * 1e3:9.3f} ms"


def _fmt_hist(hist: Mapping[str, Any]) -> str:
    if not hist.get("count"):
        return "n=0"
    parts = [f"n={hist.get('count', 0)}", f"mean={hist.get('mean'):.4g}",
             f"last={hist.get('last'):.4g}"]
    for key in ("p50", "p95", "p99"):
        value = hist.get(key)
        if value is not None:
            parts.append(f"{key}={value:.4g}")
    return " ".join(parts)


def render_summary(manifest: Mapping[str, Any]) -> str:
    """Render one manifest as a per-stage time table + metric totals."""
    lines: List[str] = []
    command = manifest.get("command", "?")
    lines.append(f"run manifest — {command}")
    for key in ("preset", "seed", "git_revision", "wall_time_s"):
        value = manifest.get(key)
        if value is not None:
            shown = f"{value:.3f}" if key == "wall_time_s" else str(value)
            lines.append(f"  {key}: {shown}")
    env = manifest.get("environment") or {}
    if env:
        lines.append(f"  repro {env.get('repro_version', '?')} / "
                     f"python {env.get('python', '?')} / "
                     f"numpy {env.get('numpy', '?')}")

    stages = manifest.get("stages") or {}
    wall = manifest.get("wall_time_s") or 0.0
    if stages:
        lines.append("")
        lines.append(f"{'stage':<32}{'calls':>7}{'total':>13}{'share':>8}")
        order = sorted(stages.items(),
                       key=lambda item: item[1].get("total_s", 0.0),
                       reverse=True)
        for name, entry in order:
            total = entry.get("total_s", 0.0)
            share = f"{total / wall:6.1%}" if wall > 0 else "     -"
            lines.append(f"{name:<32}{entry.get('count', 0):>7}"
                         f"{_fmt_seconds(total):>13}{share:>8}")
    else:
        lines.append("")
        lines.append("(no spans recorded — run with REPRO_OBS=1 or --profile)")

    metric_block = manifest.get("metrics") or {}
    counters = metric_block.get("counters") or {}
    gauges = metric_block.get("gauges") or {}
    histograms = metric_block.get("histograms") or {}
    if counters or gauges or histograms:
        lines.append("")
        lines.append(f"{'metric':<40}{'value':>18}")
        for name in sorted(counters):
            lines.append(f"{name:<40}{counters[name]:>18g}")
        for name in sorted(gauges):
            lines.append(f"{name + ' (gauge)':<40}{gauges[name]:>18g}")
        for name in sorted(histograms):
            lines.append(f"{name + ' (hist)':<40}  "
                         f"{_fmt_hist(histograms[name])}")
    return "\n".join(lines)


def summarize_file(path: PathLike) -> str:
    """Load a manifest JSON from ``path`` and render its summary."""
    return render_summary(load_json(path))


def manifest_from_spans(path: PathLike) -> Mapping[str, Any]:
    """Aggregate a raw spans JSONL into an on-the-fly manifest.

    This is the crash path: a run that died mid-stream leaves only the
    ``Tracer.stream_to`` JSONL behind. The lenient loader drops a torn
    final line, and still-open spans (no ``duration_s``) count but add
    no time — so ``summarize`` reports the same tables it would have
    from a clean export.
    """
    from repro.obs.analysis import load_trace
    from repro.obs.manifest import build_manifest

    return build_manifest(command=f"<spans:{Path(path).name}>",
                          spans=load_trace(path))


def summarize_path(path: PathLike) -> str:
    """Summarize any obs artifact: manifest, spans JSONL, or obs dir.

    Directories prefer their manifest when one exists and fall back to
    the streamed span file otherwise (interrupted run); a bare
    ``.jsonl`` path always takes the span-aggregation route. When a
    directory holds artifacts from several commands (``deploy-…`` and
    ``serve-…`` side by side), the most recently written run wins —
    same rule as the ``repro obs`` analysis resolvers.
    """
    from repro.obs.analysis import _pick_match, resolve_manifest_path

    p = Path(path)
    manifest: Optional[Path] = None
    if p.is_dir():
        try:
            manifest = resolve_manifest_path(p)
        except FileNotFoundError:
            spans = _pick_match(p, "*-spans.jsonl")
            if spans is None:
                raise
            p = spans
    elif not p.name.endswith(".jsonl"):
        manifest = p
    if manifest is not None:
        return summarize_file(manifest)
    return render_summary(manifest_from_spans(p))
