"""Stable content-addressed key derivation for pipeline stages.

A stage key is a SHA-256 hex digest over three ingredient classes:

1. the stage name and its *code-version salt* (:data:`STAGE_VERSIONS`) —
   bump the salt whenever the stage's algorithm changes so stale
   artifacts are never reused across incompatible code;
2. the exact config fields the stage reads (scalars, strings, tuples);
3. digests of the input arrays the stage consumes
   (:func:`digest_array` — dtype, shape and raw bytes all contribute).

RNG *generators* are deliberately not hashable ingredients: stages that
consume randomness are handed a dedicated integer seed drawn from the
parent stream in a config-determined order, and that **seed** enters the
key instead (see DESIGN.md, "Why stage keys exclude RNG-dependent
inputs"). Two runs with the same seed therefore share artifacts, while
the cached and uncached paths stay bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

import numpy as np

__all__ = ["STAGE_VERSIONS", "digest_array", "digest_arrays",
           "fingerprint", "stage_key"]

#: Code-version salt per cached stage. Bump a stage's number whenever
#: its algorithm (not just its inputs) changes, so artifacts written by
#: older code are never reused against newer code.
STAGE_VERSIONS: Mapping[str, int] = {
    "workload": 1,      # trained workload weights (eval.experiments)
    "lut": 1,           # device E[R(v)] / Var[R(v)] tables (device.lut)
    "quantize": 1,      # per-layer NTWs + scales (core.pipeline)
    "calibrate": 1,     # per-layer input activation peaks (core.pipeline)
    "gradients": 1,     # per-weight gradient RMS estimates (core.pipeline)
    "vawo": 1,          # run_vawo solutions (core.vawo via core.pipeline)
    "serve_program": 3,  # programmed deployments (serve.registry);
                         # v2: HAL array capability dict + scenario
                         # parameters entered the key
                         # v3: key folds the backend's cache_tag
                         # (numeric-equivalence class) instead of its
                         # name, so accel/vectorized share artifacts

}


def digest_array(array: np.ndarray) -> str:
    """SHA-256 hex digest of an array's dtype, shape and raw bytes.

    Accepts any shape; non-contiguous inputs are copied to C order
    first so logically-equal arrays always digest equally.
    """
    arr = np.ascontiguousarray(array)
    h = hashlib.sha256()
    h.update(str(arr.dtype.str).encode())
    h.update(repr(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def digest_arrays(arrays: Mapping[str, np.ndarray]) -> str:
    """One digest over a named array family (e.g. a model state dict).

    Key order does not matter: entries are folded in sorted-name order.
    Arrays may have any shape.
    """
    h = hashlib.sha256()
    for name in sorted(arrays):
        h.update(name.encode())
        h.update(digest_array(arrays[name]).encode())
    return h.hexdigest()


def fingerprint(value: Any) -> str:
    """Canonical string form of one key ingredient.

    Handles None, bools, ints, floats (via ``repr`` — full precision),
    strings, bytes, numpy scalars/arrays (digested) and nested
    tuples/lists/dicts. Anything else is rejected loudly rather than
    silently fingerprinted by id.
    """
    if value is None:
        return "none"
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, (int, np.integer)):
        return f"i:{int(value)}"
    if isinstance(value, (float, np.floating)):
        return f"f:{float(value)!r}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, bytes):
        return f"x:{hashlib.sha256(value).hexdigest()}"
    if isinstance(value, np.ndarray):
        return f"a:{digest_array(value)}"
    if isinstance(value, (tuple, list)):
        inner = ",".join(fingerprint(v) for v in value)
        return f"t:({inner})"
    if isinstance(value, dict):
        inner = ",".join(f"{k}={fingerprint(value[k])}"
                         for k in sorted(value))
        return f"d:{{{inner}}}"
    raise TypeError(
        f"cannot fingerprint {type(value).__name__} for a cache key — "
        f"pass primitives, arrays, or nested tuples/dicts of them")


def stage_key(stage: str, **components: Any) -> str:
    """Content-addressed key for one stage invocation.

    ``components`` are the stage's actual inputs (config fields, array
    digests, derived seeds). The stage's :data:`STAGE_VERSIONS` salt is
    folded in automatically; unknown stages get version 0. Returns a
    64-char SHA-256 hex string.
    """
    h = hashlib.sha256()
    h.update(f"repro.cache/{stage}/v{STAGE_VERSIONS.get(stage, 0)}".encode())
    for name in sorted(components):
        h.update(f"|{name}={fingerprint(components[name])}".encode())
    return h.hexdigest()
