"""Content-addressed stage cache for noise-independent pipeline work.

Public surface:

- :func:`stage_key` / :func:`digest_array` / :func:`digest_arrays` —
  stable key derivation from stage inputs (``keys``);
- :class:`CacheStore` with :func:`active_store` / :func:`resolve_store`
  / :func:`cache_enabled` — the disk-backed artifact store (``store``).

See DESIGN.md ("Artifact cache") for the keying rules, in particular
why RNG generators never enter a key.
"""

from repro.cache.keys import (
    STAGE_VERSIONS,
    digest_array,
    digest_arrays,
    fingerprint,
    stage_key,
)
from repro.cache.store import (
    DEFAULT_CACHE_DIR,
    DEFAULT_MAX_BYTES,
    CacheStore,
    active_store,
    cache_enabled,
    resolve_store,
)

__all__ = [
    "STAGE_VERSIONS",
    "digest_array",
    "digest_arrays",
    "fingerprint",
    "stage_key",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_BYTES",
    "CacheStore",
    "active_store",
    "cache_enabled",
    "resolve_store",
]
