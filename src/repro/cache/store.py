"""Content-addressed, disk-backed artifact store for pipeline stages.

One artifact = one ``.npz`` archive under ``<dir>/objects/<k[:2]>/<key>.npz``
holding a named array family plus an embedded JSON metadata record
(``__meta__``). The store guarantees:

**Atomic writes.** Artifacts are written to a same-directory temp file
and ``os.replace``d into place, so a reader never sees a half-written
archive and two processes racing on one key leave exactly one intact
winner (content-addressing makes either winner correct).

**Corrupt-artifact recovery.** An archive that exists but cannot be
read back (truncated, bit-rotted — the failure class that broke the
seed's end-to-end test) is discarded with a warning and treated as a
miss, never surfaced to the caller.

**LRU size cap.** Each hit bumps the artifact's mtime; when the store
grows past ``max_bytes`` the oldest artifacts are evicted after every
write until it fits.

**Observability.** ``cache.hits`` / ``cache.misses`` / ``cache.evictions``
/ ``cache.corrupt`` counters (plus per-stage ``cache.hits.<stage>``
variants) flow through :mod:`repro.obs`, so ``--profile`` manifests
show exactly what a run reused.

Resolution order for the process-wide store: an explicit directory
argument, then the ``REPRO_CACHE`` environment variable (a path, or
``0``/``off`` to disable caching entirely), then the package default
``.cache/repro``. ``REPRO_CACHE_MAX_MB`` bounds the on-disk size.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.utils.logging import get_logger
from repro.utils.serialization import SerializationError

logger = get_logger(__name__)

PathLike = Union[str, Path]
ArrayFamily = Dict[str, np.ndarray]

__all__ = ["CacheStore", "DEFAULT_CACHE_DIR", "DEFAULT_MAX_BYTES",
           "active_store", "cache_enabled", "resolve_store"]

#: Where artifacts live when neither ``REPRO_CACHE`` nor an explicit
#: directory says otherwise (shared with the trained-workload cache).
DEFAULT_CACHE_DIR = Path(".cache/repro")

#: Default LRU size cap (bytes) — ``REPRO_CACHE_MAX_MB`` overrides.
DEFAULT_MAX_BYTES = 4096 * 1024 * 1024

#: ``REPRO_CACHE`` values that disable the cache layer entirely.
_DISABLED_VALUES = frozenset({"0", "off", "none", "disabled"})

#: Reserved archive member carrying the JSON metadata record.
_META_KEY = "__meta__"


class CacheStore:
    """A content-addressed ``.npz`` artifact store (see module docs)."""

    def __init__(self, directory: PathLike,
                 max_bytes: Optional[int] = DEFAULT_MAX_BYTES) -> None:
        """Create a store rooted at ``directory`` (created lazily).

        ``max_bytes`` caps the total artifact size (LRU eviction after
        each write); ``None`` means unbounded.
        """
        self.directory = Path(directory)
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.max_bytes = max_bytes

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    @property
    def objects_dir(self) -> Path:
        """Root of the content-addressed object tree."""
        return self.directory / "objects"

    def path_for(self, key: str) -> Path:
        """On-disk archive path for ``key`` (two-level fan-out)."""
        if not key or any(c not in "0123456789abcdef" for c in key):
            raise ValueError(f"cache keys are lowercase hex, got {key!r}")
        return self.objects_dir / key[:2] / f"{key}.npz"

    # ------------------------------------------------------------------
    # read / write
    # ------------------------------------------------------------------
    def get(self, key: str, stage: str = "") -> Optional[ArrayFamily]:
        """The array family stored under ``key``, or ``None`` on a miss.

        A corrupt artifact is discarded with a warning and reported as
        a miss. Hits bump the artifact's LRU clock.
        """
        path = self.path_for(key)
        try:
            with np.load(str(path)) as data:  # npz-ok
                family = {k: data[k] for k in data.files if k != _META_KEY}
        except FileNotFoundError:
            self._count("misses", stage)
            return None
        except Exception as exc:  # noqa: BLE001 — any unreadable archive
            logger.warning("discarding corrupt cache artifact %s (%s: %s)",
                           path, type(exc).__name__, exc)
            self._count("corrupt", stage)
            self._count("misses", stage)
            path.unlink(missing_ok=True)
            return None
        try:
            os.utime(path)          # LRU clock: most-recently-used
        except OSError:
            pass
        self._count("hits", stage)
        return family

    def put(self, key: str, arrays: Mapping[str, np.ndarray],
            stage: str = "", metadata: Optional[Mapping[str, Any]] = None,
            ) -> Path:
        """Atomically store ``arrays`` (any shapes) under ``key``.

        The archive is written to a same-directory temp file and
        ``os.replace``d into place; concurrent writers of one key both
        succeed and leave one intact artifact. Returns the final path.
        """
        if _META_KEY in arrays:
            raise ValueError(f"array name {_META_KEY!r} is reserved")
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {"key": key, "stage": stage, **(dict(metadata or {}))}
        meta_blob = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".npz")
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, __meta__=meta_blob,  # npz-ok (file object)
                         **{k: np.asarray(v) for k, v in arrays.items()})
            os.replace(tmp_name, path)
        except BaseException:  # noqa: BLE001 — cleanup only; the failure is re-raised
            Path(tmp_name).unlink(missing_ok=True)
            raise
        self._count("writes", stage)
        if self.max_bytes is not None:
            self._evict(keep=path)
        return path

    def fetch(self, key: str, compute: Callable[[], ArrayFamily],
              stage: str = "",
              metadata: Optional[Mapping[str, Any]] = None) -> ArrayFamily:
        """Get-or-compute: the memoization primitive stages call.

        On a miss, ``compute()`` runs, its result is stored, and the
        *computed* family is returned (``.npz`` round-trips are
        lossless, so hit and miss return bit-identical arrays).
        """
        cached = self.get(key, stage=stage)
        if cached is not None:
            return cached
        arrays = compute()
        self.put(key, arrays, stage=stage, metadata=metadata)
        return arrays

    def contains(self, key: str) -> bool:
        """Whether an artifact for ``key`` is currently on disk."""
        return self.path_for(key).exists()

    def metadata(self, key: str) -> Optional[Dict[str, Any]]:
        """The JSON metadata record stored with ``key``, if readable."""
        try:
            with np.load(str(self.path_for(key))) as data:  # npz-ok
                if _META_KEY not in data.files:
                    return None
                return dict(json.loads(bytes(data[_META_KEY]).decode()))
        except FileNotFoundError:
            return None
        except Exception as exc:  # noqa: BLE001 — corrupt = no metadata
            raise SerializationError(
                f"{self.path_for(key)} exists but its metadata is "
                f"unreadable ({type(exc).__name__}: {exc})") from exc

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def artifacts(self) -> List[Path]:
        """All artifact paths currently in the store (unsorted)."""
        if not self.objects_dir.is_dir():
            return []
        return [p for p in self.objects_dir.rglob("*.npz")
                if not p.name.startswith(".tmp-")]

    def size_bytes(self) -> int:
        """Total on-disk size of all artifacts."""
        return sum(self._safe_stat(p)[1] for p in self.artifacts())

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for path in self.artifacts():
            path.unlink(missing_ok=True)
            removed += 1
        return removed

    def _evict(self, keep: Optional[Path] = None) -> None:
        """Drop least-recently-used artifacts until under ``max_bytes``.

        The artifact at ``keep`` (the one just written) survives even
        when it alone exceeds the cap — evicting your own write would
        turn every warm lookup into a miss.
        """
        entries: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self.artifacts():
            mtime, size = self._safe_stat(path)
            total += size
            entries.append((mtime, size, path))
        if self.max_bytes is None or total <= self.max_bytes:
            return
        entries.sort(key=lambda e: e[0])          # oldest first
        for mtime, size, path in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and path == keep:
                continue
            path.unlink(missing_ok=True)
            total -= size
            self._count("evictions", "")
            logger.info("evicted cache artifact %s (%d bytes)", path, size)

    @staticmethod
    def _safe_stat(path: Path) -> Tuple[float, int]:
        """(mtime, size) of ``path``; (0, 0) if it vanished mid-scan."""
        try:
            st = path.stat()
        except OSError:
            return (0.0, 0)
        return (st.st_mtime, st.st_size)

    @staticmethod
    def _count(event: str, stage: str) -> None:
        obs_metrics.inc(f"cache.{event}")
        if stage:
            obs_metrics.inc(f"cache.{event}.{stage}")


# ----------------------------------------------------------------------
# process-wide resolution (env-driven)
# ----------------------------------------------------------------------
_STORES: Dict[Tuple[str, Optional[int]], CacheStore] = {}


def _env_max_bytes() -> Optional[int]:
    raw = os.environ.get("REPRO_CACHE_MAX_MB")
    if raw is None or not raw.strip():
        return DEFAULT_MAX_BYTES
    try:
        mb = int(raw)
    except ValueError:
        raise ValueError(
            f"REPRO_CACHE_MAX_MB must be an integer, got {raw!r}")
    if mb <= 0:
        raise ValueError(f"REPRO_CACHE_MAX_MB must be positive, got {mb}")
    return mb * 1024 * 1024


def cache_enabled() -> bool:
    """Whether the env leaves the cache layer enabled (default: yes)."""
    raw = os.environ.get("REPRO_CACHE", "")
    return raw.strip().lower() not in _DISABLED_VALUES or raw.strip() == ""


def resolve_store(directory: Optional[PathLike] = None,
                  ) -> Optional[CacheStore]:
    """The store for ``directory``, or the env-resolved default.

    An explicit ``directory`` always yields a store there (callers that
    pass one have opted in); with ``directory=None`` the ``REPRO_CACHE``
    env var picks the location — or disables caching, in which case
    ``None`` is returned and every stage recomputes.
    """
    if directory is None:
        raw = os.environ.get("REPRO_CACHE", "").strip()
        if raw.lower() in _DISABLED_VALUES and raw != "":
            return None
        directory = Path(raw) if raw else DEFAULT_CACHE_DIR
    cache_key = (str(Path(directory)), _env_max_bytes())
    store = _STORES.get(cache_key)
    if store is None:
        store = _STORES[cache_key] = CacheStore(  # fork-ok — per-process handle; data is on disk
            cache_key[0], max_bytes=cache_key[1])
    return store


def active_store() -> Optional[CacheStore]:
    """The process-wide default store (``None`` when caching is off)."""
    return resolve_store(None)
