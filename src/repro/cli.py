"""Command-line interface: train, deploy, evaluate, and run experiments.

Usage (after ``pip install -e .``):

.. code-block:: bash

    python -m repro train --workload lenet --preset quick
    python -m repro deploy --workload lenet --method "vawo*+pwt" \
        --sigma 0.5 --granularity 16 --trials 5
    python -m repro experiment --name fig5a
    python -m repro overhead --granularity 16 128
    python -m repro info

Workloads are trained once and cached (``.cache/repro``), so repeated
deploy/experiment invocations are fast.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import __version__


def _add_train(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("train", help="train (and cache) a workload")
    p.add_argument("--workload", default="lenet",
                   choices=["lenet", "resnet18", "vgg16"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dva-sigma", type=float, default=None,
                   help="train with DVA variation injection at this sigma")


def _add_deploy(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("deploy",
                       help="deploy a workload onto the simulated crossbar")
    p.add_argument("--workload", default="lenet",
                   choices=["lenet", "resnet18", "vgg16"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--method", default="vawo*+pwt",
                   choices=["plain", "vawo", "vawo*", "pwt", "vawo*+pwt"])
    p.add_argument("--sigma", type=float, default=0.5)
    p.add_argument("--granularity", "-m", type=int, default=16)
    p.add_argument("--cell-bits", type=int, default=1, choices=[1, 2],
                   help="1 = SLC, 2 = 2-bit MLC")
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--saf", type=float, nargs=2, metavar=("SA0", "SA1"),
                   default=None, help="stuck-at fault rates")


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment", help="run a named paper experiment")
    p.add_argument("--name", required=True,
                   choices=["fig5a", "fig5b", "fig5c", "table1", "table2",
                            "table3"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--trials", type=int, default=2)


def _add_overhead(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("overhead",
                       help="ISAAC tile overhead of the offset hardware")
    p.add_argument("--granularity", "-m", type=int, nargs="+",
                   default=[16, 128])


def _cmd_train(args) -> int:
    from repro.eval.experiments import build_workload

    override = None
    if args.dva_sigma is not None:
        from repro.baselines.dva import DVAConfig, train_dva

        def override(model, data, spec, rng):
            cfg = DVAConfig(sigma=args.dva_sigma, epochs=spec.epochs,
                            batch_size=spec.batch_size, lr=spec.lr)
            train_dva(model, data, cfg, rng=rng)
        override.__name__ = f"dva{args.dva_sigma}"

    wl = build_workload(args.workload, args.preset, args.seed,
                        train_override=override)
    print(f"{args.workload} ({args.preset}, seed {args.seed}): "
          f"float accuracy {wl.float_accuracy:.2%}")
    return 0


def _cmd_deploy(args) -> int:
    from repro.core import DeployConfig, Deployer
    from repro.device.cell import MLC2, SLC
    from repro.eval import evaluate_deployment, ideal_accuracy
    from repro.eval.experiments import _default_pwt, build_workload

    wl = build_workload(args.workload, args.preset, args.seed)
    cell = SLC if args.cell_bits == 1 else MLC2
    config = DeployConfig.from_method(
        args.method, sigma=args.sigma, granularity=args.granularity,
        cell=cell, pwt=_default_pwt(args.preset), bn_recalibrate=True,
        saf_rates=tuple(args.saf) if args.saf else None)
    deployer = Deployer(wl.model, wl.train, config, rng=args.seed + 10)
    ideal = ideal_accuracy(deployer, wl.test)
    result = evaluate_deployment(deployer, wl.test, n_trials=args.trials,
                                 rng=args.seed + 20)
    print(f"workload:  {args.workload} (float {wl.float_accuracy:.2%}, "
          f"ideal quantized {ideal:.2%})")
    print(f"method:    {args.method}  sigma={args.sigma}  "
          f"m={args.granularity}  cell={args.cell_bits}-bit")
    print(f"deployed:  {result}")
    print(f"registers: {deployer.total_registers()}   "
          f"crossbars: {deployer.crossbar_count()}")
    return 0


def _cmd_experiment(args) -> int:
    from repro.eval import experiments as ex

    if args.name == "fig5a":
        rows = ex.run_fig5_accuracy("lenet", args.preset,
                                    n_trials=args.trials)
    elif args.name == "fig5b":
        rows = ex.run_fig5_accuracy("resnet18", args.preset,
                                    n_trials=args.trials)
    elif args.name == "fig5c":
        rows = ex.run_fig5c(args.preset, n_trials=args.trials)
    elif args.name == "table1":
        for wl, per_m in ex.run_table1(args.preset).items():
            for m, v in per_m.items():
                print(f"{wl:<10} m={m:<4} relative reading power {v:.2%}")
        return 0
    elif args.name == "table2":
        for row in ex.run_table2():
            print(f"m={row['granularity']:<4} area {row['total_area_mm2']:.3f} mm^2 "
                  f"({row['area_overhead']:.1%})  power "
                  f"{row['total_power_mw']:.2f} mW ({row['power_overhead']:.1%})")
        return 0
    else:
        for row in ex.run_table3(args.preset, n_trials=args.trials):
            print(f"{row.method:<10} sigma={row.sigma} "
                  f"loss {row.accuracy_loss:.2%} "
                  f"crossbars {row.crossbar_number}")
        return 0
    for r in rows:
        print(f"{r.method:<10} m={r.granularity:<4} sigma={r.sigma} "
              f"acc {r.mean_accuracy:.2%} (ideal {r.ideal_accuracy:.2%})")
    return 0


def _cmd_overhead(args) -> int:
    from repro.arch import tile_overhead

    for m in args.granularity:
        o = tile_overhead(m)
        print(f"m={m:<4} area {o.total_area_mm2:.3f} mm^2 "
              f"({o.area_overhead_fraction:.1%})  power "
              f"{o.total_power_mw:.2f} mW ({o.power_overhead_fraction:.1%})")
    return 0


def _cmd_info(_args) -> int:
    import numpy
    import scipy
    print(f"repro {__version__} — DATE 2021 digital-offset reproduction")
    print(f"numpy {numpy.__version__}, scipy {scipy.__version__}")
    print("workloads: lenet, resnet18 (slim), vgg16 (slim)")
    print("methods:   plain, vawo, vawo*, pwt, vawo*+pwt")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Digital Offset for RRAM-based Neuromorphic Computing "
                    "(DATE 2021) — reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_train(sub)
    _add_deploy(sub)
    _add_experiment(sub)
    _add_overhead(sub)
    sub.add_parser("info", help="library and environment information")

    args = parser.parse_args(argv)
    handlers = {
        "train": _cmd_train,
        "deploy": _cmd_deploy,
        "experiment": _cmd_experiment,
        "overhead": _cmd_overhead,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
