"""Command-line interface: train, deploy, evaluate, and run experiments.

Usage (after ``pip install -e .``):

.. code-block:: bash

    python -m repro train --workload lenet --preset quick
    python -m repro deploy --workload lenet --method "vawo*+pwt" \
        --sigma 0.5 --granularity 16 --trials 5 --jobs 4 --profile
    python -m repro serve --workload lenet --port 0 \
        --port-file serve.port --max-batch 8 --profile
    python -m repro experiment --name fig5a
    python -m repro obs summarize obs/deploy-manifest.json
    python -m repro obs critical-path obs/
    python -m repro obs flame obs/ --out deploy.folded
    python -m repro obs diff baseline-obs/ current-obs/
    python -m repro overhead --granularity 16 128
    python -m repro info

Workloads are trained once and every noise-independent pipeline stage
(LUTs, quantization, calibration, gradients, VAWO solves) is memoized
in the content-addressed artifact cache (``.cache/repro`` by default),
so repeated deploy/experiment invocations are fast. ``--cache-dir DIR``
relocates the store, ``--no-cache`` disables reuse entirely (results
are bit-identical either way); both export ``REPRO_CACHE`` so ``--jobs``
workers follow the same policy.

``--jobs/-j`` (on ``deploy``/``experiment``) shards the independent
programming-cycle trials across worker processes (``0`` = one per
core); results are bit-identical to a serial run at the same seed.

``--array``/``--scenarios`` (on ``deploy``/``serve``/``experiment``)
select the crossbar hardware-abstraction family (``repro.array``) and
stack composable non-idealities on top of it (stuck-at faults,
temperature coefficients, conductance drift, extra program noise).
The default ``sim`` array with no scenarios is bit-identical to the
pre-HAL pipeline.

``serve`` starts a long-lived inference server over a programmed
deployment (see ``repro.serve``): requests are micro-batched through
the vectorized backend with responses bitwise identical to serving
each request alone, programmed states warm-start from the artifact
cache, and a bounded queue sheds overload with 429-style errors.

``--profile`` (on ``train``/``deploy``/``serve``/``experiment``)
enables the
observability layer for the run and writes a spans JSONL plus a
structured run manifest under ``--obs-dir`` (default ``obs/``). The
``repro obs`` toolkit reads those artifacts back: ``summarize``
(per-stage time/metric tables, works on manifests, raw span streams and
obs directories alike), ``critical-path`` (longest chain per root with
self-time attribution), ``flame`` (folded stacks for flamegraph tools)
and ``diff`` (percentile-aware two-run comparison).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import Any, List, Optional

from repro import __version__


def _echo(message: str = "") -> None:
    """User-facing CLI output (stdout) — the one place it is emitted.

    The library itself must never ``print`` (lint rule R6): modules log
    through ``repro.utils.logging`` and report numbers through the obs
    exporters; only this front end talks to the terminal.
    """
    sys.stdout.write(message + "\n")


def _add_profile_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--profile", action="store_true",
                   help="record spans/metrics and write a run manifest")
    p.add_argument("--obs-dir", default="obs",
                   help="directory for --profile artifacts (default: obs/)")


def _add_jobs_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=0, metavar="N",
                   help="parallel trial workers: 0 = auto (one per core, "
                        "capped by the trial count), 1 = serial. Results "
                        "are bit-identical either way (default: 0)")


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--backend", default=None, metavar="NAME",
                   help="compute backend for all kernels (vectorized, accel, "
                        "reference; see 'repro backends'); default: "
                        "$REPRO_BACKEND or vectorized. Every backend is "
                        "numerically interchangeable")


def _add_array_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--array", default=None, metavar="NAME",
                   help="crossbar array family (e.g. sim); default: "
                        "$REPRO_ARRAY or sim. The default family with no "
                        "scenarios is bit-identical to the classic path")
    p.add_argument("--scenarios", default=None, metavar="SPEC",
                   help="non-ideality scenario stack, e.g. "
                        "'stuck_at:sa0_rate=0.05,sa1_rate=0.01;"
                        "drift:t_seconds=1e4' (semicolon-separated "
                        "name:param=value scenarios, applied in order)")


def _add_cache_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="artifact cache location (default: $REPRO_CACHE or "
                        ".cache/repro). Cached and recomputed runs are "
                        "bit-identical")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the artifact cache: recompute every "
                        "pipeline stage (same results, no reuse)")


def _add_train(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("train", help="train (and cache) a workload")
    p.add_argument("--workload", default="lenet",
                   choices=["lenet", "resnet18", "vgg16"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dva-sigma", type=float, default=None,
                   help="train with DVA variation injection at this sigma")
    _add_cache_args(p)
    _add_backend_arg(p)
    _add_profile_args(p)


def _add_deploy(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("deploy",
                       help="deploy a workload onto the simulated crossbar")
    p.add_argument("--workload", default="lenet",
                   choices=["lenet", "resnet18", "vgg16"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--method", default="vawo*+pwt",
                   choices=["plain", "vawo", "vawo*", "pwt", "vawo*+pwt"])
    p.add_argument("--sigma", type=float, default=0.5)
    p.add_argument("--granularity", "-m", type=int, default=16)
    p.add_argument("--cell-bits", type=int, default=1, choices=[1, 2],
                   help="1 = SLC, 2 = 2-bit MLC")
    p.add_argument("--trials", type=int, default=2)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--saf", type=float, nargs=2, metavar=("SA0", "SA1"),
                   default=None, help="stuck-at fault rates")
    _add_jobs_arg(p)
    _add_array_args(p)
    _add_cache_args(p)
    _add_backend_arg(p)
    _add_profile_args(p)


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "serve", help="serve inference requests over a programmed "
                      "crossbar deployment")
    p.add_argument("--workload", default="lenet",
                   choices=["lenet", "resnet18", "vgg16"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--method", default="vawo*+pwt",
                   choices=["plain", "vawo", "vawo*", "pwt", "vawo*+pwt"])
    p.add_argument("--sigma", type=float, default=0.5)
    p.add_argument("--granularity", "-m", type=int, default=16)
    p.add_argument("--cell-bits", type=int, default=1, choices=[1, 2],
                   help="1 = SLC, 2 = 2-bit MLC")
    p.add_argument("--seed", type=int, default=0,
                   help="responses bitwise-match trial 0 of `repro deploy "
                        "--seed N` (default: 0)")
    p.add_argument("--saf", type=float, nargs=2, metavar=("SA0", "SA1"),
                   default=None, help="stuck-at fault rates")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7453,
                   help="TCP port; 0 picks an ephemeral port "
                        "(default: 7453)")
    p.add_argument("--port-file", default=None, metavar="FILE",
                   help="write host:port here once bound (for --port 0)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="micro-batch size; every dispatch is padded to "
                        "exactly this many samples (default: 8)")
    p.add_argument("--max-wait-ms", type=float, default=2.0,
                   help="batching window from the oldest queued request "
                        "(default: 2.0)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded-queue depth; requests past it are shed "
                        "with a 429-style error (default: 64)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="default per-request deadline; expired requests "
                        "get a 504-style error (default: none)")
    _add_array_args(p)
    _add_cache_args(p)
    _add_backend_arg(p)
    _add_profile_args(p)


def _add_experiment(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("experiment", help="run a named paper experiment")
    p.add_argument("--name", required=True,
                   choices=["fig5a", "fig5b", "fig5c", "table1", "table2",
                            "table3", "scenarios"])
    p.add_argument("--preset", default="quick", choices=["quick", "full"])
    p.add_argument("--trials", type=int, default=2)
    _add_jobs_arg(p)
    _add_array_args(p)
    _add_cache_args(p)
    _add_backend_arg(p)
    _add_profile_args(p)


def _add_overhead(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("overhead",
                       help="ISAAC tile overhead of the offset hardware")
    p.add_argument("--granularity", "-m", type=int, nargs="+",
                   default=[16, 128])


def _add_obs(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("obs", help="inspect observability artifacts")
    obs_sub = p.add_subparsers(dest="obs_action", required=True)

    s = obs_sub.add_parser(
        "summarize", help="render a run as per-stage time/metric tables")
    s.add_argument("path",
                   help="manifest JSON, spans JSONL, or --obs-dir directory")

    c = obs_sub.add_parser(
        "critical-path",
        help="longest child chain per root span, with self-time")
    c.add_argument("path",
                   help="manifest JSON, spans JSONL, or --obs-dir directory")

    f = obs_sub.add_parser(
        "flame", help="folded-stack output for flamegraph tools")
    f.add_argument("path",
                   help="manifest JSON, spans JSONL, or --obs-dir directory")
    f.add_argument("--out", default=None, metavar="FILE",
                   help="write folded stacks to FILE instead of stdout")

    d = obs_sub.add_parser(
        "diff", help="per-span-name delta table between two runs "
                     "(percentile-aware)")
    d.add_argument("path_a", help="baseline manifest JSON or obs directory")
    d.add_argument("path_b", help="candidate manifest JSON or obs directory")


# ----------------------------------------------------------------------
# profiling plumbing
# ----------------------------------------------------------------------
def _profile_begin(args: argparse.Namespace, command: str) -> bool:
    """Enable the obs layer for a ``--profile`` run.

    Sets ``REPRO_OBS`` *before* the heavy modules are imported (the
    command handlers import lazily), so decorator-form spans on the hot
    kernels activate too, then turns the dynamic switch on. Spans
    stream straight to ``<obs-dir>/<command>-spans.jsonl`` as they
    close, so a long ``full``-preset run never buffers its trace in
    memory (and a crash still leaves the trace on disk).

    Opens a ``run.<command>`` root span held until :func:`_profile_end`
    — every span the run records (including worker subtrees re-rooted
    on merge) nests under it, so the manifest's spans always form one
    rooted tree.
    """
    if not getattr(args, "profile", False):
        return False
    os.environ.setdefault("REPRO_OBS", "1")
    import repro.obs as obs
    args._obs_was_active = obs.enabled()
    obs.enable()
    obs.reset()
    obs.trace.TRACER.stream_to(
        Path(args.obs_dir) / f"{command}-spans.jsonl")
    # The run-root span deliberately outlives this frame: _profile_end
    # closes it before export, and a crash in between still streams
    # every closed child to disk.
    args._obs_root = obs.span(f"run.{command}")  # span-ok — closed in _profile_end
    args._obs_root.__enter__()
    return True


def _profile_end(args: argparse.Namespace, command: str,
                 extra: Optional[dict] = None) -> None:
    """Export manifest + spans for a ``--profile`` run and say where."""
    import repro.obs as obs

    root = getattr(args, "_obs_root", None)
    if root is not None:
        root.__exit__(None, None, None)
        args._obs_root = None
    paths = obs.export_run(
        args.obs_dir, command, argv=sys.argv[1:],
        preset=getattr(args, "preset", None),
        seed=getattr(args, "seed", None), extra=extra, stem=command,
        reset=True)
    if not getattr(args, "_obs_was_active", False):
        obs.disable()           # leave the process as --profile found it
    _echo(f"obs:       manifest {paths['manifest']}  spans {paths['spans']}")


# ----------------------------------------------------------------------
# command handlers
# ----------------------------------------------------------------------
def _cmd_train(args: argparse.Namespace) -> int:
    profiling = _profile_begin(args, "train")
    from repro.eval.experiments import build_workload

    override = None
    if args.dva_sigma is not None:
        from repro.baselines.dva import DVAConfig, train_dva

        def override(model: Any, data: Any, spec: Any, rng: Any) -> None:
            cfg = DVAConfig(sigma=args.dva_sigma, epochs=spec.epochs,
                            batch_size=spec.batch_size, lr=spec.lr)
            train_dva(model, data, cfg, rng=rng)
        override.__name__ = f"dva{args.dva_sigma}"

    wl = build_workload(args.workload, args.preset, args.seed,
                        train_override=override)
    _echo(f"{args.workload} ({args.preset}, seed {args.seed}): "
          f"float accuracy {wl.float_accuracy:.2%}")
    if profiling:
        _profile_end(args, "train",
                     extra={"workload": args.workload,
                            "float_accuracy": wl.float_accuracy})
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    profiling = _profile_begin(args, "deploy")
    from repro.core import DeployConfig, Deployer
    from repro.device.cell import MLC2, SLC
    from repro.eval import evaluate_deployment, ideal_accuracy
    from repro.eval.experiments import _default_pwt, build_workload

    wl = build_workload(args.workload, args.preset, args.seed)
    cell = SLC if args.cell_bits == 1 else MLC2
    config = DeployConfig.from_method(
        args.method, sigma=args.sigma, granularity=args.granularity,
        cell=cell, pwt=_default_pwt(args.preset), bn_recalibrate=True,
        saf_rates=tuple(args.saf) if args.saf else None,
        array=args.array, scenarios=args.scenarios)
    deployer = Deployer(wl.model, wl.train, config, rng=args.seed + 10)
    ideal = ideal_accuracy(deployer, wl.test)
    result = evaluate_deployment(deployer, wl.test, n_trials=args.trials,
                                 rng=args.seed + 20, jobs=args.jobs)
    _echo(f"workload:  {args.workload} (float {wl.float_accuracy:.2%}, "
          f"ideal quantized {ideal:.2%})")
    _echo(f"method:    {args.method}  sigma={args.sigma}  "
          f"m={args.granularity}  cell={args.cell_bits}-bit")
    _echo(f"deployed:  {result}")
    _echo(f"registers: {deployer.total_registers()}   "
          f"crossbars: {deployer.crossbar_count()}")
    if profiling:
        _profile_end(args, "deploy",
                     extra={"workload": args.workload, "method": args.method,
                            "sigma": args.sigma,
                            "granularity": args.granularity,
                            "jobs": args.jobs, "trials": args.trials,
                            "mean_accuracy": result.mean,
                            "accuracies": result.accuracies,
                            "ideal_accuracy": ideal})
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    profiling = _profile_begin(args, "serve")
    import asyncio

    from repro.serve import InferenceService, ServeConfig, ServeServer

    config = ServeConfig(
        workload=args.workload, preset=args.preset, method=args.method,
        sigma=args.sigma, granularity=args.granularity,
        cell_bits=args.cell_bits, seed=args.seed,
        saf_rates=tuple(args.saf) if args.saf else None,
        array=args.array, scenarios=args.scenarios,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        queue_limit=args.queue_limit, deadline_ms=args.deadline_ms)
    service = InferenceService(config)
    prepared = service.prepare()
    _echo(f"model:    {config.describe()}")
    _echo(f"state:    {'warm start' if prepared.warm_start else 'programmed'}"
          f"  key {prepared.model_key[:16]}…")
    _echo(f"batching: max_batch={config.max_batch} "
          f"max_wait_ms={config.max_wait_ms} "
          f"queue_limit={config.queue_limit}")

    def on_ready(host: str, port: int) -> None:
        if args.port_file:
            path = Path(args.port_file)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(f"{host}:{port}\n")
        _echo(f"listening: {host}:{port}  (op: ping|infer|stats|shutdown; "
              f"newline-delimited JSON)")

    server = ServeServer(service, host=args.host, port=args.port,
                         on_ready=on_ready)
    asyncio.run(server.run())
    stats = server.stats()
    _echo(f"drained:  {stats['requests']} request(s) in "
          f"{stats['batches']} batch(es), {stats['shed']} shed, "
          f"{stats['expired']} expired")
    if profiling:
        _profile_end(args, "serve",
                     extra={"workload": args.workload, "method": args.method,
                            "seed": args.seed, "model_key": stats["model_key"],
                            "warm_start": stats["warm_start"],
                            "max_batch": args.max_batch,
                            "requests": stats["requests"],
                            "batches": stats["batches"],
                            "shed": stats["shed"]})
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    profiling = _profile_begin(args, f"experiment-{args.name}")
    from repro.eval import experiments as ex

    def finish(code: int = 0) -> int:
        if profiling:
            _profile_end(args, f"experiment-{args.name}",
                         extra={"experiment": args.name, "jobs": args.jobs})
        return code

    if args.name == "fig5a":
        rows = ex.run_fig5_accuracy("lenet", args.preset,
                                    n_trials=args.trials, jobs=args.jobs)
    elif args.name == "fig5b":
        rows = ex.run_fig5_accuracy("resnet18", args.preset,
                                    n_trials=args.trials, jobs=args.jobs)
    elif args.name == "fig5c":
        rows = ex.run_fig5c(args.preset, n_trials=args.trials,
                            jobs=args.jobs)
    elif args.name == "scenarios":
        for s_row in ex.run_scenario_matrix(
                preset=args.preset, n_trials=args.trials, jobs=args.jobs,
                array=args.array, scenarios=args.scenarios):
            _echo(f"{s_row.method:<10} scenario={s_row.scenario:<12} "
                  f"acc {s_row.mean_accuracy:.2%} "
                  f"(drop {s_row.accuracy_drop:+.2%} vs clean)")
        return finish()
    elif args.name == "table1":
        for wl, per_m in ex.run_table1(args.preset).items():
            for m, v in per_m.items():
                _echo(f"{wl:<10} m={m:<4} relative reading power {v:.2%}")
        return finish()
    elif args.name == "table2":
        for row in ex.run_table2():
            _echo(f"m={row['granularity']:<4} area {row['total_area_mm2']:.3f} mm^2 "
                  f"({row['area_overhead']:.1%})  power "
                  f"{row['total_power_mw']:.2f} mW ({row['power_overhead']:.1%})")
        return finish()
    else:
        for row in ex.run_table3(args.preset, n_trials=args.trials,
                                 jobs=args.jobs):
            _echo(f"{row.method:<10} sigma={row.sigma} "
                  f"loss {row.accuracy_loss:.2%} "
                  f"crossbars {row.crossbar_number}")
        return finish()
    for r in rows:
        _echo(f"{r.method:<10} m={r.granularity:<4} sigma={r.sigma} "
              f"acc {r.mean_accuracy:.2%} (ideal {r.ideal_accuracy:.2%})")
    return finish()


def _cmd_overhead(args: argparse.Namespace) -> int:
    from repro.arch import tile_overhead

    for m in args.granularity:
        o = tile_overhead(m)
        _echo(f"m={m:<4} area {o.total_area_mm2:.3f} mm^2 "
              f"({o.area_overhead_fraction:.1%})  power "
              f"{o.total_power_mw:.2f} mW ({o.power_overhead_fraction:.1%})")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from repro.obs import analysis
    from repro.obs.summary import summarize_path
    from repro.utils.serialization import load_json

    try:
        if args.obs_action == "summarize":
            _echo(summarize_path(args.path))
        elif args.obs_action == "critical-path":
            spans = analysis.load_trace(analysis.resolve_spans_path(args.path))
            _echo(analysis.render_critical_path(analysis.critical_path(spans)))
        elif args.obs_action == "flame":
            spans = analysis.load_trace(analysis.resolve_spans_path(args.path))
            folded = analysis.render_folded(analysis.fold_stacks(spans))
            if args.out:
                out = Path(args.out)
                out.parent.mkdir(parents=True, exist_ok=True)
                out.write_text(folded + "\n")
                _echo(f"folded stacks: {out} "
                      f"({len(folded.splitlines())} stack(s))")
            else:
                _echo(folded)
        else:                                       # diff
            manifest_a = analysis.resolve_manifest_path(args.path_a)
            manifest_b = analysis.resolve_manifest_path(args.path_b)
            stage_rows, hist_rows = analysis.diff_manifests(
                load_json(manifest_a), load_json(manifest_b))
            _echo(analysis.render_diff(stage_rows, hist_rows,
                                       label_a=str(manifest_a),
                                       label_b=str(manifest_b)))
    except FileNotFoundError as exc:
        _echo(f"repro obs: {exc}")
        return 2
    return 0


def _cmd_backends(_args: argparse.Namespace) -> int:
    from repro.array import available_arrays, default_array_name, get_array
    from repro.backend import (available_backends, default_backend_name,
                               get_backend)
    active = default_backend_name()
    _echo("compute backends (REPRO_BACKEND / --backend):")
    for name in available_backends():
        marker = "*" if name == active else " "
        _echo(f"{marker} {name:<12} {get_backend(name).status()}")
    active_array = default_array_name()
    _echo("array backends (REPRO_ARRAY / --array):")
    for name in available_arrays():
        marker = "*" if name == active_array else " "
        get_array(name)                      # import-checks the family
        _echo(f"{marker} {name:<12} available")
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    import numpy
    import scipy
    _echo(f"repro {__version__} — DATE 2021 digital-offset reproduction")
    _echo(f"numpy {numpy.__version__}, scipy {scipy.__version__}")
    _echo("workloads: lenet, resnet18 (slim), vgg16 (slim)")
    _echo("methods:   plain, vawo, vawo*, pwt, vawo*+pwt")
    _echo("observability: REPRO_OBS=1 / --profile, REPRO_LOG_LEVEL, "
          "repro obs summarize|critical-path|flame|diff")
    _echo("parallelism:   --jobs/-j on deploy/experiment "
          "(repro.parallel, bit-identical to serial)")
    _echo("serving:       repro serve (micro-batched, bitwise-"
          "reproducible; registry warm starts via the artifact cache)")
    from repro.backend import available_backends, default_backend_name
    _echo(f"backends:      {', '.join(available_backends())} "
          f"(active: {default_backend_name()}; REPRO_BACKEND / --backend)")
    from repro.array import available_arrays, default_array_name
    from repro.array.scenarios import available_scenarios
    _echo(f"arrays:        {', '.join(available_arrays())} "
          f"(active: {default_array_name()}; REPRO_ARRAY / --array)")
    _echo(f"scenarios:     {', '.join(available_scenarios())} "
          "(--scenarios 'name:param=value;…' on deploy/serve)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Digital Offset for RRAM-based Neuromorphic Computing "
                    "(DATE 2021) — reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)
    _add_train(sub)
    _add_deploy(sub)
    _add_serve(sub)
    _add_experiment(sub)
    _add_overhead(sub)
    _add_obs(sub)
    sub.add_parser("info", help="library and environment information")
    sub.add_parser("backends",
                   help="list compute/array backends with availability")

    args = parser.parse_args(argv)
    backend = getattr(args, "backend", None)
    if backend is not None:
        from repro.backend import available_backends
        if backend not in available_backends():
            parser.error(f"unknown backend {backend!r} "
                         f"(registered: {', '.join(available_backends())})")
        # Exported through the environment (not set_default_backend) so
        # --jobs worker processes inherit the same kernel set.
        os.environ["REPRO_BACKEND"] = backend
    array = getattr(args, "array", None)
    if array is not None:
        from repro.array import available_arrays
        if array not in available_arrays():
            parser.error(f"unknown array {array!r} "
                         f"(registered: {', '.join(available_arrays())})")
        # Same env-export pattern as --backend: --jobs workers resolve
        # the same HAL family when they build arrays themselves.
        os.environ["REPRO_ARRAY"] = array
    scenarios = getattr(args, "scenarios", None)
    if scenarios is not None:
        from repro.array.scenarios import parse_scenario_spec
        try:
            parse_scenario_spec(scenarios)
        except ValueError as exc:
            parser.error(f"bad --scenarios spec: {exc}")
    if getattr(args, "no_cache", False) and getattr(args, "cache_dir", None):
        parser.error("--no-cache and --cache-dir are mutually exclusive")
    if getattr(args, "no_cache", False):
        # Same env-export pattern as --backend: worker processes and
        # every library layer see one consistent cache policy.
        os.environ["REPRO_CACHE"] = "0"
    elif getattr(args, "cache_dir", None):
        os.environ["REPRO_CACHE"] = str(args.cache_dir)
    handlers = {
        "train": _cmd_train,
        "deploy": _cmd_deploy,
        "serve": _cmd_serve,
        "experiment": _cmd_experiment,
        "overhead": _cmd_overhead,
        "obs": _cmd_obs,
        "info": _cmd_info,
        "backends": _cmd_backends,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
