"""DVA baseline: variation-aware training (Long et al., DATE'19).

DVA trains the network *with* injected device variation so the learned
weights are intrinsically robust: every forward pass perturbs the
weights multiplicatively with the same lognormal model the crossbar
exhibits, gradients are applied to the clean weights (the usual
noisy-forward / clean-update scheme). At deployment the network is
written plainly (no offsets) on a one-crossbar architecture using
8 SLCs per weight — hence its normalised crossbar count of 2 in
Table III (vs 4 MLC devices = 1 for this work).

The paper reports DVA's accuracy loss at sigma = 0.5 (from [9]); our
bench regenerates that row by training with this module and deploying
through the plain scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.data.loaders import Dataset, iterate_batches
from repro.nn import functional as F
from repro.nn.module import Module
from repro.nn.optim import Adam, Optimizer
from repro.nn.tensor import Tensor
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, make_rng

logger = get_logger(__name__)


@dataclass
class DVAConfig:
    """Variation-aware training hyper-parameters."""

    sigma: float = 0.5              # injected lognormal sigma
    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    perturb_biases: bool = False    # biases are digital; usually clean

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")


class _WeightPerturber:
    """Temporarily multiplies weights by exp(theta) for one forward/backward."""

    def __init__(self, model: Module, perturb_biases: bool):
        self._params = [
            p for name, p in model.named_parameters()
            if name.endswith("weight") or (perturb_biases and name.endswith("bias"))
        ]
        self._saved: Optional[List[np.ndarray]] = None

    def apply(self, sigma: float, rng: np.random.Generator) -> None:
        if self._saved is not None:
            raise RuntimeError("perturbation already active")
        self._saved = [p.data.copy() for p in self._params]
        for p in self._params:
            p.data *= np.exp(rng.normal(0.0, sigma, size=p.shape))

    def restore(self) -> None:
        if self._saved is None:
            raise RuntimeError("no active perturbation")
        for p, saved in zip(self._params, self._saved):
            p.data[...] = saved
        self._saved = None


def train_dva(model: Module, train_data: Dataset,
              config: DVAConfig = None, optimizer: Optional[Optimizer] = None,
              rng: RngLike = None) -> List[float]:
    """Variation-aware training in place; returns per-epoch mean losses.

    Each minibatch draws a fresh lognormal perturbation of every weight
    (the device's cycle-to-cycle behaviour), computes the loss and
    gradients on the perturbed network, then applies the update to the
    clean weights.
    """
    config = config or DVAConfig()
    rng = make_rng(rng)
    optimizer = optimizer or Adam(model.parameters(), lr=config.lr,
                                  weight_decay=config.weight_decay)
    perturber = _WeightPerturber(model, config.perturb_biases)
    epoch_losses = []
    for epoch in range(config.epochs):
        model.train()
        losses = []
        for images, labels in iterate_batches(train_data, config.batch_size,
                                              rng=rng):
            perturber.apply(config.sigma, rng)
            try:
                optimizer.zero_grad()
                loss = F.cross_entropy(model(Tensor(images)), labels)
                loss.backward()
            finally:
                perturber.restore()
            optimizer.step()
            losses.append(loss.item())
        epoch_losses.append(float(np.mean(losses)))
        logger.info("DVA epoch %d: loss %.4f", epoch, epoch_losses[-1])
    return epoch_losses


DVA_DEVICES_PER_WEIGHT = 8      # 8 SLCs per weight (Section IV-C2)
