"""Comparison methods for Table III: DVA, PM, and DVA+PM."""

from repro.baselines.dva import (DVA_DEVICES_PER_WEIGHT, DVAConfig,
                                 train_dva)
from repro.baselines.pm import (PM_DEVICES_PER_WEIGHT, PMConfig, UnaryCoder,
                                deploy_pm)

__all__ = [
    "DVAConfig", "train_dva", "DVA_DEVICES_PER_WEIGHT",
    "PMConfig", "UnaryCoder", "deploy_pm", "PM_DEVICES_PER_WEIGHT",
]
