"""PM baseline: unary synapse coding with priority mapping (Ma et al., DATE'20).

"Go unary" represents each weight across several equal-significance
cells instead of binary bit slices: a signed 8-bit weight is split into
positive/negative magnitudes (two-crossbar architecture) and each
magnitude is spread over ``cells_per_polarity`` 2-bit MLCs holding
near-equal levels. Two consequences the paper exploits:

* no high-significance cell exists, so a single deviating device
  perturbs the weight by at most 1/cells of its range (variance
  averaging);
* *priority mapping* places each weight's charge on the devices within
  its cell group whose persistent (device-to-device) deviation is
  smallest — which requires testing every device and, critically,
  **cannot see cycle-to-cycle variation**, the weakness the digital
  offset paper targets (Section IV-C1).

Hardware cost: 10 MLC devices per weight across the crossbar pair —
the 2.5 normalised crossbar count of Table III.

Simplification vs the original (documented in DESIGN.md): priority
mapping is applied within each weight's own device group (choosing
which of its cells carry charge) rather than re-permuting whole
rows/columns of the crossbar; both variants use only the persistent DDV
knowledge, which is the property Table III's comparison hinges on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.pipeline import (_rebuild_sequentials, _replace_module,
                                 mappable_layers, weight_to_matrix)
from repro.device.cell import MLC2, CellType
from repro.device.variation import VariationModel
from repro.nn import functional as F
from repro.nn.layers import Conv2d
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import RngLike, make_rng

PM_DEVICES_PER_WEIGHT = 10      # 10 2-bit MLCs across the crossbar pair


@dataclass
class PMConfig:
    """Unary-coding deployment parameters."""

    sigma: float = 0.8
    ddv_fraction: float = 0.5        # share of variance PM *can* see
    cells_per_polarity: int = 5      # 5 + 5 = 10 devices per weight
    cell: CellType = MLC2
    weight_bits: int = 8
    priority_mapping: bool = True

    @property
    def levels_per_polarity(self) -> int:
        return self.cells_per_polarity * self.cell.max_level


class UnaryCoder:
    """Encode signed integer weights onto equal-significance cells."""

    def __init__(self, config: PMConfig):
        self.config = config
        half = 1 << (config.weight_bits - 1)
        self.scale = half / config.levels_per_polarity

    def encode_magnitude(self, magnitude: np.ndarray) -> np.ndarray:
        """Non-negative integer magnitudes -> cell levels (..., cells).

        The magnitude (in units of ``scale``) is spread as evenly as
        possible: ``q`` full levels of value ``ceil`` and the remainder
        at a lower level, e.g. 7 units over 5 cells of max level 3 ->
        [3, 3, 1, 0, 0].
        """
        cfg = self.config
        units = np.clip(np.round(np.asarray(magnitude) / self.scale),
                        0, cfg.levels_per_polarity).astype(np.int64)
        cells = np.zeros(units.shape + (cfg.cells_per_polarity,),
                         dtype=np.int64)
        remaining = units.copy()
        for i in range(cfg.cells_per_polarity):
            level = np.minimum(remaining, cfg.cell.max_level)
            cells[..., i] = level
            remaining -= level
        return cells

    def decode(self, noisy_cells: np.ndarray) -> np.ndarray:
        """Noisy cell conductances -> magnitude value (float)."""
        return noisy_cells.sum(axis=-1) * self.scale


def _order_cells_by_reliability(cells: np.ndarray,
                                ddv_theta: np.ndarray) -> np.ndarray:
    """Priority mapping: charge goes to the least-deviating devices.

    ``cells`` holds per-weight levels sorted descending by construction;
    we permute each weight's levels so the largest levels land on the
    devices with the smallest persistent |theta|.
    """
    order = np.argsort(np.abs(ddv_theta), axis=-1)      # best devices first
    mapped = np.zeros_like(cells)
    np.put_along_axis(mapped, order, cells, axis=-1)
    return mapped


class PMLinear(Module):
    """Dense layer on the two-crossbar unary-coded substrate."""

    def __init__(self, weight_eff: np.ndarray, bias: Optional[np.ndarray]):
        super().__init__()
        self.weight_eff = weight_eff            # (in, out) float
        self.bias = bias

    def forward(self, x: Tensor) -> Tensor:
        y = x @ Tensor(self.weight_eff)
        if self.bias is not None:
            y = y + self.bias
        return y


class PMConv2d(Module):
    """Convolution on the two-crossbar unary-coded substrate."""

    def __init__(self, weight_eff: np.ndarray, kernel_shape,
                 stride: int, padding: int, bias: Optional[np.ndarray]):
        super().__init__()
        f, c, kh, kw = kernel_shape
        self.kernel = weight_eff.T.reshape(f, c, kh, kw)
        self.stride = stride
        self.padding = padding
        self.bias = bias

    def forward(self, x: Tensor) -> Tensor:
        bias_t = None if self.bias is None else Tensor(self.bias)
        return F.conv2d(x, Tensor(self.kernel), bias_t,
                        stride=self.stride, padding=self.padding)


def deploy_pm(model: Module, config: PMConfig = None,
              rng: RngLike = None) -> Module:
    """Deploy ``model`` with unary coding + priority mapping; returns a copy.

    Steps per layer: symmetric-quantize weights to signed integers,
    split positive/negative magnitudes (two-crossbar), unary-encode each
    magnitude over its device group, priority-map using the *persistent*
    DDV component (known from testing), then program — the CCV component
    strikes unseen, exactly the failure mode the digital-offset paper
    exploits in its comparison.
    """
    import copy

    config = config or PMConfig()
    rng = make_rng(rng)
    variation = VariationModel(config.sigma, config.ddv_fraction)
    coder = UnaryCoder(config)
    half = 1 << (config.weight_bits - 1)

    deployed = copy.deepcopy(model)
    for path, layer in mappable_layers(model):
        w = layer.weight.data
        w_mat = weight_to_matrix(w)                      # (rows, cols)
        scale = np.abs(w_mat).max() / (half - 1) if np.abs(w_mat).max() > 0 else 1.0
        q = np.clip(np.round(w_mat / scale), -(half - 1), half - 1)
        pos, neg = np.maximum(q, 0), np.maximum(-q, 0)

        w_eff = np.zeros_like(w_mat)
        for sign, mag in ((1.0, pos), (-1.0, neg)):
            cells = coder.encode_magnitude(mag)
            ddv = variation.sample_ddv(cells.shape, rng)
            if config.priority_mapping:
                cells = _order_cells_by_reliability(cells, ddv)
            nominal = config.cell.conductance(cells)
            # Remove the constant OFF-state leak the readout calibrates out.
            leak = config.cell.conductance(np.zeros_like(cells))
            noisy = variation.perturb(nominal, rng, ddv_theta=ddv) - leak
            w_eff += sign * coder.decode(noisy)
        w_eff *= scale

        bias = None if layer.bias is None else layer.bias.data.copy()
        if isinstance(layer, Conv2d):
            new = PMConv2d(w_eff, tuple(layer.weight.shape),
                           layer.stride, layer.padding, bias)
        else:
            new = PMLinear(w_eff, bias)
        _replace_module(deployed, path, new)
    _rebuild_sequentials(deployed)
    deployed.eval()
    return deployed
