"""RRAM device models: cells, lognormal variation, LUTs, programming."""

from repro.device.cell import MLC2, SLC, CellType
from repro.device.faults import (FaultMap, FaultyDeviceModel,
                                 sample_fault_map)
from repro.device.lut import (DeviceLUT, DeviceModel, build_lut_analytic,
                              build_lut_monte_carlo)
from repro.device.programming import WriteVerifyResult, write_verify
from repro.device.variation import VariationModel

__all__ = [
    "CellType", "SLC", "MLC2", "VariationModel",
    "DeviceModel", "DeviceLUT", "build_lut_analytic", "build_lut_monte_carlo",
    "write_verify", "WriteVerifyResult",
    "FaultMap", "FaultyDeviceModel", "sample_fault_map",
]
