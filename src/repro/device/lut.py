"""Device characterisation: the E[R(v)] / Var[R(v)] look-up tables.

VAWO (paper Section III-B) needs, for every possible crossbar target
weight ``v``, the mean and variance of the crossbar real weight
``R(v)`` that results from programming ``v`` under variation. The paper
obtains them by *statistical testing*: program K random device sets J
times each and measure. We implement exactly that
(:func:`build_lut_monte_carlo`) plus the closed-form lognormal moments
(:func:`build_lut_analytic`) that the Monte-Carlo table converges to —
the test suite checks their agreement.

The same module provides :class:`DeviceModel`, the end-to-end
"program an integer weight, get a noisy real weight back" simulator
used everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.device.cell import CellType
from repro.device.variation import VariationModel
from repro.quant.bitslice import (assemble_weights, cell_significances,
                                  num_cells, slice_weights)
from repro.utils.rng import RngLike, make_rng


@dataclass
class DeviceModel:
    """A weight-level device simulator: CTW in, CRW out.

    Combines a :class:`CellType` (bit slicing + finite ON/OFF ratio) and
    a :class:`VariationModel` (lognormal DDV/CCV). An n-bit weight ``v``
    is sliced into cells, each cell's nominal conductance is perturbed
    independently, and the noisy cells are reassembled:

    ``R(v) = sum_k 2^(k * cell_bits) * u(c_k) * exp(theta_k)``.
    """

    cell: CellType
    variation: VariationModel
    n_bits: int = 8

    def __post_init__(self):
        if self.n_bits < self.cell.bits:
            raise ValueError("weight bit-width smaller than one cell")

    @property
    def cells_per_weight(self) -> int:
        """Physical cells needed to store one n-bit weight."""
        return num_cells(self.n_bits, self.cell.bits)

    @property
    def qmax(self) -> int:
        """Largest writable integer weight, ``2^n_bits - 1``."""
        return (1 << self.n_bits) - 1

    # ------------------------------------------------------------------
    # programming
    # ------------------------------------------------------------------
    def nominal_cells(self, values: np.ndarray) -> np.ndarray:
        """Nominal per-cell conductances for integer weights ``values``.

        Appends a cell axis: (...,) values -> (..., cells_per_weight).
        """
        digits = slice_weights(values, self.n_bits, self.cell.bits)
        return self.cell.conductance(digits)

    def program(self, values: np.ndarray, rng: RngLike = None,
                ddv_theta: Optional[np.ndarray] = None) -> np.ndarray:
        """Program integer weights once; return the resulting CRWs.

        The CRW array has the same shape as ``values``.
        Each call models one programming cycle: the CCV component is
        redrawn, so repeated calls with the same ``values`` return
        different CRWs (the paper's cycle-to-cycle behaviour).
        """
        rng = make_rng(rng)
        nominal = self.nominal_cells(values)
        noisy = self.variation.perturb(nominal, rng, ddv_theta=ddv_theta)
        return assemble_weights(noisy, self.cell.bits)

    def program_cells(self, values: np.ndarray, rng: RngLike = None,
                      ddv_theta: Optional[np.ndarray] = None) -> np.ndarray:
        """Like :meth:`program` but return the noisy per-cell conductances.

        Appends a cell axis: (...,) values -> (..., cells_per_weight).
        """
        rng = make_rng(rng)
        nominal = self.nominal_cells(values)
        return self.variation.perturb(nominal, rng, ddv_theta=ddv_theta)

    # ------------------------------------------------------------------
    # exact moments
    # ------------------------------------------------------------------
    def exact_mean(self, values: np.ndarray) -> np.ndarray:
        """Closed-form E[R(v)] for lognormal cell noise (elementwise:
        same shape as ``values``)."""
        nominal = self.nominal_cells(np.asarray(values))
        sig = cell_significances(self.n_bits, self.cell.bits)
        return self.variation.mean_factor() * (nominal * sig).sum(axis=-1)

    def exact_var(self, values: np.ndarray) -> np.ndarray:
        """Closed-form Var[R(v)] (elementwise: same shape as ``values``).

        Cells are independent, so their variances add.
        """
        nominal = self.nominal_cells(np.asarray(values))
        sig = cell_significances(self.n_bits, self.cell.bits)
        return self.variation.variance_factor() * ((nominal * sig) ** 2).sum(axis=-1)


class DeviceLUT:
    """Mean / variance of R(v) for every writable value v, with inversion.

    ``invert(target)`` answers VAWO's constraint (Eq. 6): find the CTW
    ``v`` whose expected CRW is closest to ``target``. Works for
    arbitrary (possibly non-monotone, e.g. Monte-Carlo-estimated) mean
    tables via a sorted binary search.
    """

    def __init__(self, mean: np.ndarray, var: np.ndarray):
        """Build a LUT from 1-D tables: ``mean[v]`` and ``var[v]``, both
        shape (n_values,), indexed by the writable value ``v``."""
        mean = np.asarray(mean, dtype=np.float64)
        var = np.asarray(var, dtype=np.float64)
        if mean.shape != var.shape or mean.ndim != 1:
            raise ValueError("mean and var must be equal-length 1-D arrays")
        if np.any(var < 0):
            raise ValueError("variances must be non-negative")
        self.mean = mean
        self.var = var
        self._order = np.argsort(mean, kind="stable")
        self._sorted_mean = mean[self._order]

    def __len__(self) -> int:
        return len(self.mean)

    @property
    def n_values(self) -> int:
        """Number of writable values the table covers."""
        return len(self.mean)

    def invert(self, targets: np.ndarray) -> np.ndarray:
        """Value(s) v whose E[R(v)] is nearest each target.

        Vectorised: the result has the same shape as ``targets``.
        """
        targets = np.asarray(targets, dtype=np.float64)
        idx = np.searchsorted(self._sorted_mean, targets)
        lo = np.clip(idx - 1, 0, len(self.mean) - 1)
        hi = np.clip(idx, 0, len(self.mean) - 1)
        pick_hi = (np.abs(self._sorted_mean[hi] - targets) <
                   np.abs(self._sorted_mean[lo] - targets))
        chosen = np.where(pick_hi, hi, lo)
        return self._order[chosen]

    def residual(self, targets: np.ndarray) -> np.ndarray:
        """``E[R(invert(t))] - t``: the bias VAWO cannot remove
        (elementwise: same shape as ``targets``)."""
        return self.mean[self.invert(targets)] - np.asarray(targets)


def lut_to_arrays(lut: DeviceLUT) -> Dict[str, np.ndarray]:
    """A LUT as a cacheable array family.

    Returns ``{"mean": (n_values,), "var": (n_values,)}`` float64
    arrays; :func:`lut_from_arrays` is the exact inverse (the sort
    order used by ``invert`` is rebuilt, not stored).
    """
    return {"mean": lut.mean, "var": lut.var}


def lut_from_arrays(arrays: Mapping[str, np.ndarray]) -> DeviceLUT:
    """Rebuild a :class:`DeviceLUT` from :func:`lut_to_arrays` output.

    Expects 1-D ``mean`` / ``var`` entries of equal length
    (n_values,); validation happens in the ``DeviceLUT`` constructor.
    """
    return DeviceLUT(arrays["mean"], arrays["var"])


def device_key_components(device: DeviceModel) -> Dict[str, Any]:
    """Every :class:`DeviceModel` field that shapes its LUT, as scalars.

    The cache layer folds these into LUT stage keys so two devices get
    the same artifact exactly when their tables would be identical.
    Returns a flat name -> scalar dict (no arrays).
    """
    return {
        "cell_bits": device.cell.bits,
        "on_off_ratio": device.cell.on_off_ratio,
        "sigma": device.variation.sigma,
        "ddv_fraction": device.variation.ddv_fraction,
        "n_bits": device.n_bits,
    }


def build_lut_analytic(device: DeviceModel) -> DeviceLUT:
    """Exact lognormal-moment LUT over all 2^n writable values."""
    values = np.arange(device.qmax + 1)
    return DeviceLUT(device.exact_mean(values), device.exact_var(values))


def build_lut_monte_carlo(device: DeviceModel, k_sets: int = 16,
                          j_cycles: int = 16,
                          rng: RngLike = None) -> DeviceLUT:
    """The paper's statistical-testing procedure (Section III-B).

    For each value ``v``, ``k_sets`` random device sets are programmed
    ``j_cycles`` times each; the K*J measured CRWs give the empirical
    E[R(v)] and Var[R(v)]. (With the lognormal model all devices are
    exchangeable, so the K sets are simply K*J independent programmings.)
    """
    rng = make_rng(rng)
    n_samples = k_sets * j_cycles
    values = np.arange(device.qmax + 1)
    # Program the full value range n_samples times: shape (S, 2^n).
    tiled = np.broadcast_to(values, (n_samples, len(values)))
    crws = device.program(tiled, rng)
    return DeviceLUT(crws.mean(axis=0), crws.var(axis=0))
