"""Memristor cell models: SLC and multi-level cells with finite ON/OFF ratio.

A cell programmed to level ``c`` (0 .. 2^bits - 1) has nominal
conductance between ``G_off`` and ``G_on``. We work in *weight units*
normalised so a fully-ON cell contributes its maximum level value: with
ON/OFF ratio ``r`` and maximum level ``C``,

``u(c) = C / r + c * (1 - 1/r)``

so ``u(C) = C`` and ``u(0) = C / r > 0`` — the paper's finite ON/OFF
ratio of 200 means even an "off" device leaks a small current, which is
part of what the digital offset compensates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class CellType:
    """A memristor cell technology.

    Parameters
    ----------
    bits:
        Bits stored per cell (1 = SLC, 2 = 2-bit MLC, ...).
    on_off_ratio:
        ``G_on / G_off``; the paper uses 200.
    """

    bits: int
    on_off_ratio: float = 200.0

    def __post_init__(self):
        if self.bits < 1:
            raise ValueError(f"cell bits must be >= 1, got {self.bits}")
        if self.on_off_ratio <= 1:
            raise ValueError("ON/OFF ratio must exceed 1")

    @property
    def levels(self) -> int:
        """Number of programmable resistance states."""
        return 1 << self.bits

    @property
    def max_level(self) -> int:
        """Highest programmable level, ``2^bits - 1``."""
        return self.levels - 1

    def conductance(self, level: np.ndarray) -> np.ndarray:
        """Nominal conductance of each ``level`` in weight units.

        Elementwise: the result has the same shape as ``level``.

        Linear conductance spacing between ``G_off`` and ``G_on``
        (the usual MLC target-state design), normalised so the top
        level equals ``max_level``.
        """
        level = np.asarray(level, dtype=np.float64)
        if np.any(level < 0) or np.any(level > self.max_level):
            raise ValueError(f"levels must be in [0, {self.max_level}]")
        c_max = float(self.max_level)
        r = self.on_off_ratio
        return c_max / r + level * (1.0 - 1.0 / r)

    def read_power(self, level: np.ndarray) -> np.ndarray:
        """Relative read power of each level (same shape as ``level``).

        At fixed read voltage, power is proportional to conductance
        (P = V^2 G) — this is what Table I's "reading power" measures:
        higher-resistance states draw less read power.
        """
        return self.conductance(level)


SLC = CellType(bits=1)
MLC2 = CellType(bits=2)
