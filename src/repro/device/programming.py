"""Iterative write-and-verify programming (the paper's contrast case).

The paper's introduction discusses programming-based variation tolerance
([5], [6]): re-program a device until its conductance lands inside a
target window. That approach *works* but costs many programming pulses,
shortening device lifetime — which is exactly the overhead the digital
offset avoids (one write + one read). This module implements the
iterative programmer so examples/ablations can quantify that trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.device.lut import DeviceModel
from repro.utils.rng import RngLike, make_rng

if TYPE_CHECKING:  # runtime import would couple repro.device to repro.array
    from repro.array.base import ArrayBackend


@dataclass
class WriteVerifyResult:
    """Outcome of iterative programming of a weight array."""

    crw: np.ndarray          # final crossbar real weights
    pulses: np.ndarray       # programming attempts consumed per weight
    converged: np.ndarray    # bool mask of weights inside tolerance

    @property
    def total_pulses(self) -> int:
        """Programming pulses consumed across the whole array."""
        return int(self.pulses.sum())

    @property
    def convergence_rate(self) -> float:
        """Fraction of weights that landed inside tolerance."""
        return float(self.converged.mean())


def write_verify(device: DeviceModel, values: np.ndarray,
                 rel_tolerance: float = 0.1, max_pulses: int = 20,
                 rng: RngLike = None) -> WriteVerifyResult:
    """Repeatedly program each weight until its CRW is within tolerance.

    A weight is accepted when ``|CRW - v| <= rel_tolerance * max(v, 1)``.
    Each retry redraws the CCV sample (that is the whole point of
    re-programming). Weights that never converge keep their last CRW.
    """
    if rel_tolerance <= 0:
        raise ValueError("rel_tolerance must be positive")
    if max_pulses < 1:
        raise ValueError("max_pulses must be >= 1")
    rng = make_rng(rng)
    values = np.asarray(values)
    crw = device.program(values, rng)
    pulses = np.ones(values.shape, dtype=np.int64)
    tol = rel_tolerance * np.maximum(values, 1)
    converged = np.abs(crw - values) <= tol
    for _ in range(max_pulses - 1):
        todo = ~converged
        if not todo.any():
            break
        retry = device.program(values[todo], rng)
        crw[todo] = retry
        pulses[todo] += 1
        converged[todo] = np.abs(retry - values[todo]) <= tol[todo]
    return WriteVerifyResult(crw=crw, pulses=pulses, converged=converged)


def write_verify_array(array: "ArrayBackend", values: np.ndarray,
                       rel_tolerance: float = 0.1, max_pulses: int = 20,
                       rng: RngLike = None) -> WriteVerifyResult:
    """Write-and-verify over a HAL array (:mod:`repro.array`).

    The array-level counterpart of :func:`write_verify` for backends
    that only expose whole-region programming cycles. Each pulse
    re-programs the full (rows, cols) region through
    :meth:`~repro.array.base.ArrayBackend.program`; weights that
    already verified keep their stored cells (program-inhibit, the
    standard selective-verify flow), so their pulse counts stop
    growing. The accepted cell image is loaded back into the array at
    the end, leaving its read-back consistent with the returned CRWs.
    """
    if rel_tolerance <= 0:
        raise ValueError("rel_tolerance must be positive")
    if max_pulses < 1:
        raise ValueError("max_pulses must be >= 1")
    from repro.quant.bitslice import assemble_weights

    rng = make_rng(rng)
    values = np.asarray(values)
    best_cells = array.program(values, rng)
    crw = assemble_weights(best_cells, array.cell.bits)
    pulses = np.ones(values.shape, dtype=np.int64)
    tol = rel_tolerance * np.maximum(values, 1)
    converged = np.abs(crw - values) <= tol
    for _ in range(max_pulses - 1):
        todo = ~converged
        if not todo.any():
            break
        retry_cells = array.program(values, rng)
        retry_crw = assemble_weights(retry_cells, array.cell.bits)
        best_cells = np.where(todo[..., None], retry_cells, best_cells)
        crw = np.where(todo, retry_crw, crw)
        pulses[todo] += 1
        converged = converged | (np.abs(crw - values) <= tol)
    array.load_cells(best_cells)
    return WriteVerifyResult(crw=crw, pulses=pulses, converged=converged)
