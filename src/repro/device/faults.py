"""Stuck-at-fault (SAF) injection.

The paper positions digital offsets against Zhang & Hu's ASP-DAC'20
compensation scheme, which targets *stuck-at faults* rather than
resistance variation: fabrication defects pin a cell permanently to its
lowest (stuck-at-0 / high resistance) or highest (stuck-at-1 / low
resistance) conductance regardless of what is programmed. Real arrays
exhibit both SAFs and variation, so this module adds an SAF layer on
top of :class:`~repro.device.lut.DeviceModel`: a deployment can then
measure how much of the SAF damage the (group-shared) offsets recover —
the extension studied in ``benchmarks/bench_faults.py``.

Typical published SAF rates are ~1-10% of cells, split roughly 1:5
between stuck-at-1 and stuck-at-0 (SA0 dominates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.device.cell import CellType
from repro.device.lut import DeviceModel
from repro.utils.rng import RngLike, make_rng


@dataclass(frozen=True)
class FaultMap:
    """Persistent per-cell fault state of one crossbar region."""

    stuck_at_0: np.ndarray      # bool, cell pinned to the OFF conductance
    stuck_at_1: np.ndarray      # bool, cell pinned to the ON conductance

    def __post_init__(self):
        if self.stuck_at_0.shape != self.stuck_at_1.shape:
            raise ValueError("fault masks must have identical shapes")
        if (self.stuck_at_0 & self.stuck_at_1).any():
            raise ValueError("a cell cannot be stuck at both levels")

    @classmethod
    def empty(cls, shape: Tuple[int, ...]) -> "FaultMap":
        """A fault-free map covering a cell array of ``shape``."""
        return cls(stuck_at_0=np.zeros(shape, dtype=bool),
                   stuck_at_1=np.zeros(shape, dtype=bool))

    @property
    def shape(self) -> Tuple[int, ...]:
        """The cell-array shape both fault masks cover."""
        return self.stuck_at_0.shape

    @property
    def fault_rate(self) -> float:
        """Fraction of cells stuck at either level."""
        total = self.stuck_at_0.size
        return float((self.stuck_at_0.sum() + self.stuck_at_1.sum()) / total)

    def apply(self, conductances: np.ndarray, cell: CellType) -> np.ndarray:
        """Pin faulty cells; healthy cells pass through unchanged.

        ``conductances`` must match the fault-map shape exactly; the
        result has the same shape.
        """
        if conductances.shape != self.shape:
            raise ValueError(
                f"conductance shape {conductances.shape} does not match "
                f"fault map shape {self.shape}")
        out = np.array(conductances, copy=True)
        g_off = cell.conductance(np.zeros(1))[0]
        g_on = cell.conductance(np.array([cell.max_level]))[0]
        out[self.stuck_at_0] = g_off
        out[self.stuck_at_1] = g_on
        return out


def sample_fault_map(shape: Tuple[int, ...], sa0_rate: float,
                     sa1_rate: float, rng: RngLike = None) -> FaultMap:
    """Draw a random persistent fault map for a cell array."""
    if sa0_rate < 0 or sa1_rate < 0 or sa0_rate + sa1_rate > 1:
        raise ValueError("fault rates must be non-negative and sum <= 1")
    rng = make_rng(rng)
    u = rng.random(shape)
    return FaultMap(stuck_at_0=u < sa0_rate,
                    stuck_at_1=(u >= sa0_rate) & (u < sa0_rate + sa1_rate))


@dataclass
class FaultyDeviceModel:
    """A :class:`DeviceModel` wrapper that injects SAFs after programming.

    The fault map is persistent (a property of the chip), so one wrapper
    instance reuses its map across programming cycles; variation is
    still redrawn per cycle by the wrapped model. Because the faults are
    visible in the post-writing read-back, PWT's compensation applies to
    them exactly as it does to variation.
    """

    device: DeviceModel
    sa0_rate: float = 0.05
    sa1_rate: float = 0.01
    rng: RngLike = None

    def __post_init__(self):
        self._rng = make_rng(self.rng)
        self._maps = {}

    @property
    def cells_per_weight(self) -> int:
        """Physical cells per weight (delegates to the wrapped model)."""
        return self.device.cells_per_weight

    @property
    def qmax(self) -> int:
        """Largest writable integer weight (delegates to the model)."""
        return self.device.qmax

    def fault_map_for(self, shape: Tuple[int, ...]) -> FaultMap:
        """The persistent fault map of the region holding ``shape`` cells."""
        key = tuple(shape)
        if key not in self._maps:
            self._maps[key] = sample_fault_map(shape, self.sa0_rate,
                                               self.sa1_rate, self._rng)
        return self._maps[key]

    def program_cells(self, values: np.ndarray, rng: RngLike = None,
                      ddv_theta: Optional[np.ndarray] = None) -> np.ndarray:
        """Program with variation, then pin the stuck cells.

        ``values`` (..., ) integer weights -> noisy conductances of
        shape (..., cells_per_weight), with faulty cells pinned.
        """
        noisy = self.device.program_cells(values, rng, ddv_theta=ddv_theta)
        fault_map = self.fault_map_for(noisy.shape)
        return fault_map.apply(noisy, self.device.cell)

    def program(self, values: np.ndarray, rng: RngLike = None,
                ddv_theta: Optional[np.ndarray] = None) -> np.ndarray:
        """Weight-level view of :meth:`program_cells`.

        Returns CRWs with the same shape as ``values``.
        """
        from repro.quant.bitslice import assemble_weights
        cells = self.program_cells(values, rng, ddv_theta=ddv_theta)
        return assemble_weights(cells, self.device.cell.bits)
