"""Resistance variation models: lognormal DDV + CCV.

The paper (Section IV, citing Grossi et al., IEDM'16) models the actual
conductance as lognormal around the nominal value:

``G_actual = G_nominal * exp(theta)``, ``theta ~ N(0, sigma^2)``.

``theta`` lumps device-to-device variation (DDV — a persistent,
per-device term fixed at fabrication) and cycle-to-cycle variation
(CCV — redrawn at every programming cycle). The paper's own method
never needs to distinguish them (it measures the total deviation after
writing), but baselines like priority mapping rely on the persistent
DDV component, so :class:`VariationModel` exposes the split via
``ddv_fraction`` (fraction of the total *variance* that is DDV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.utils.rng import RngLike, make_rng


def sample_temperature_coefficients(shape: Tuple[int, ...], mean: float,
                                    std: float,
                                    rng: RngLike = None) -> np.ndarray:
    """Draw persistent per-cell temperature coefficients (arXiv 2105.05534).

    Each device's conductance responds linearly to temperature,
    ``G(T) = G0 * (1 + alpha * (T - T_ref))``, with a device-to-device
    spread in ``alpha ~ N(mean, std)`` fixed at fabrication. Returns an
    array of the requested ``shape`` (one coefficient per cell).
    """
    if std < 0:
        raise ValueError(f"std must be non-negative, got {std}")
    rng = make_rng(rng)
    if std == 0:
        return np.full(shape, float(mean))
    return rng.normal(mean, std, size=shape)


@dataclass
class VariationModel:
    """Lognormal conductance variation with a DDV/CCV variance split.

    Parameters
    ----------
    sigma:
        Total standard deviation of ``theta`` (paper sweeps 0.2 — 1.0).
    ddv_fraction:
        Fraction of ``sigma^2`` attributed to the persistent DDV term.
        The paper's experiments lump everything together (pure CCV
        behaviour from the method's point of view), so the default is 0.
    """

    sigma: float
    ddv_fraction: float = 0.0

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")
        if not 0.0 <= self.ddv_fraction <= 1.0:
            raise ValueError("ddv_fraction must be in [0, 1]")

    @property
    def sigma_ddv(self) -> float:
        """Standard deviation of the persistent DDV theta component."""
        return self.sigma * np.sqrt(self.ddv_fraction)

    @property
    def sigma_ccv(self) -> float:
        """Standard deviation of the per-cycle CCV theta component."""
        return self.sigma * np.sqrt(1.0 - self.ddv_fraction)

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------
    def sample_ddv(self, shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
        """Draw the persistent per-device theta component (once per chip),
        as an array of the requested ``shape``."""
        rng = make_rng(rng)
        if self.sigma_ddv == 0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_ddv, size=shape)

    def sample_ccv(self, shape: Tuple[int, ...], rng: RngLike = None) -> np.ndarray:
        """Draw the per-programming-cycle theta component, as an array of
        the requested ``shape``."""
        rng = make_rng(rng)
        if self.sigma_ccv == 0:
            return np.zeros(shape)
        return rng.normal(0.0, self.sigma_ccv, size=shape)

    def perturb(self, nominal: np.ndarray, rng: RngLike = None,
                ddv_theta: Optional[np.ndarray] = None) -> np.ndarray:
        """Apply one programming cycle's variation to nominal conductances.

        Elementwise: the result has the same shape as ``nominal``.
        ``ddv_theta`` (if given) is the persistent component from
        :meth:`sample_ddv`; a fresh CCV draw is added on top.
        """
        rng = make_rng(rng)
        theta = self.sample_ccv(np.shape(nominal), rng)
        if ddv_theta is not None:
            theta = theta + ddv_theta
        elif self.sigma_ddv > 0:
            theta = theta + self.sample_ddv(np.shape(nominal), rng)
        return np.asarray(nominal) * np.exp(theta)

    # ------------------------------------------------------------------
    # closed-form lognormal moments (used by the analytic LUT)
    # ------------------------------------------------------------------
    def mean_factor(self) -> float:
        """E[exp(theta)] = exp(sigma^2 / 2)."""
        return float(np.exp(self.sigma ** 2 / 2.0))

    def variance_factor(self) -> float:
        """Var[exp(theta)] = exp(sigma^2) * (exp(sigma^2) - 1)."""
        s2 = self.sigma ** 2
        return float(np.exp(s2) * (np.exp(s2) - 1.0))
