"""Bit slicing: splitting integer weights across SLC / MLC cells.

An n-bit weight is stored across ``ceil(n / cell_bits)`` memristor
cells; the crossbar computes one partial dot product per cell column and
the shift-and-add unit reassembles them (Fig. 1(b) of the paper). SLC
cells hold 1 bit, 2-bit MLC cells hold 2 bits.
"""

from __future__ import annotations

import numpy as np


def num_cells(n_bits: int, cell_bits: int) -> int:
    """Number of cells needed per weight."""
    if cell_bits < 1 or n_bits < 1:
        raise ValueError("bit widths must be positive")
    return -(-n_bits // cell_bits)  # ceil division


def slice_weights(values: np.ndarray, n_bits: int, cell_bits: int) -> np.ndarray:
    """Split unsigned integer ``values`` into per-cell digits.

    Returns an array of shape ``values.shape + (num_cells,)`` where index
    ``k`` along the last axis holds the base-``2^cell_bits`` digit of
    significance ``k`` (little-endian: cell 0 is least significant).
    """
    values = np.asarray(values)
    if np.any(values < 0) or np.any(values > (1 << n_bits) - 1):
        raise ValueError(f"values out of range for {n_bits}-bit weights")
    k = num_cells(n_bits, cell_bits)
    shifts = np.arange(k, dtype=np.int64) * cell_bits
    mask = (1 << cell_bits) - 1
    return (values.astype(np.int64)[..., None] >> shifts) & mask


def assemble_weights(digits: np.ndarray, cell_bits: int) -> np.ndarray:
    """Inverse of :func:`slice_weights` (works on float digits too).

    Accepting floats lets the same routine reassemble *noisy analog*
    cell read-outs into the crossbar real weight (CRW).
    """
    digits = np.asarray(digits)
    k = digits.shape[-1]
    significances = cell_significances(k * cell_bits, cell_bits)   # (k,)
    return digits.astype(np.float64) @ significances


def cell_significances(n_bits: int, cell_bits: int) -> np.ndarray:
    """The positional multiplier ``2^(cell_bits * k)`` of each cell."""
    k = num_cells(n_bits, cell_bits)
    return np.array([1 << (cell_bits * i) for i in range(k)], dtype=np.float64)
