"""8-bit affine quantization and the ISAAC weight shift.

The paper's accelerators store *non-negative n-bit integer* weights: the
trained float weights are quantized to integers and shifted so the whole
range is non-negative (Section II, "weights initially in the range
[-120, 135] are shifted to the range [0, 255]"). The shift is undone
digitally by subtracting ``zero_point * sum(x)`` after the crossbar —
exactly the affine-quantization dequant identity

``W_float = scale * (W_uint - zero_point)``.

:class:`AffineQuantizer` implements that transform for weights;
:class:`InputQuantizer` handles the (unsigned) activation quantization
the paper also applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QuantizedTensor:
    """An unsigned-integer tensor with its dequantization parameters."""

    values: np.ndarray       # unsigned integers, stored as int64
    scale: float
    zero_point: int
    n_bits: int

    @property
    def qmax(self) -> int:
        return (1 << self.n_bits) - 1

    def dequantize(self) -> np.ndarray:
        """Recover the float tensor: ``scale * (values - zero_point)``."""
        return self.scale * (self.values.astype(np.float64) - self.zero_point)


class AffineQuantizer:
    """Uniform affine quantizer producing shifted non-negative integers.

    ``quantize`` maps floats to ``{0, ..., 2^n - 1}`` with
    ``q = round(w / scale) + zero_point``; ``zero_point`` is the ISAAC
    weight shift (120 in the paper's example).
    """

    def __init__(self, n_bits: int = 8):
        if not 1 <= n_bits <= 16:
            raise ValueError(f"n_bits must be in [1, 16], got {n_bits}")
        self.n_bits = n_bits
        self.qmax = (1 << n_bits) - 1

    def quantize(self, w: np.ndarray) -> QuantizedTensor:
        """Quantize ``w`` to shifted unsigned integers.

        The scale is chosen so the observed [min, max] range maps onto
        [0, qmax]; degenerate all-equal tensors quantize to zero offset
        with unit scale.
        """
        w = np.asarray(w, dtype=np.float64)
        # Extend the range to include zero so the zero point is always a
        # representable code (standard asymmetric-quantization practice;
        # also what the ISAAC shift needs — a shift of 0 for all-positive
        # weights, a shift of qmax for all-negative ones).
        lo = min(0.0, float(w.min()))
        hi = max(0.0, float(w.max()))
        if hi == lo:
            scale = 1.0 / self.qmax   # all-zero tensor; any scale works
        else:
            scale = (hi - lo) / self.qmax
        zero_point = int(np.clip(round(-lo / scale), 0, self.qmax))
        q = np.clip(np.round(w / scale) + zero_point, 0, self.qmax)
        return QuantizedTensor(q.astype(np.int64), scale, zero_point, self.n_bits)


class InputQuantizer:
    """Unsigned activation quantizer with a calibrated full-scale range.

    ISAAC feeds inputs bit-serially, so activations are unsigned n-bit
    integers: ``q = round(x / scale)`` clipped to [0, qmax]. The scale is
    calibrated from the maximum activation seen on a calibration batch.
    """

    def __init__(self, n_bits: int = 8):
        if not 1 <= n_bits <= 16:
            raise ValueError(f"n_bits must be in [1, 16], got {n_bits}")
        self.n_bits = n_bits
        self.qmax = (1 << n_bits) - 1
        self.scale: float = 1.0
        self._calibrated = False

    def calibrate(self, x: np.ndarray) -> None:
        """Set the scale from a calibration batch (max-abs observer)."""
        peak = float(np.abs(x).max())
        self.scale = max(peak, 1e-12) / self.qmax
        self._calibrated = True

    def quantize(self, x: np.ndarray) -> np.ndarray:
        """Return integer codes in [0, qmax] (negatives clip to 0)."""
        return np.clip(np.round(np.asarray(x) / self.scale), 0, self.qmax)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Quantize-dequantize: the float value the crossbar actually sees."""
        return self.quantize(x) * self.scale
