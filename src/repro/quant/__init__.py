"""Quantization and bit slicing for RRAM crossbar deployment."""

from repro.quant.bitslice import (assemble_weights, cell_significances,
                                  num_cells, slice_weights)
from repro.quant.quantizer import (AffineQuantizer, InputQuantizer,
                                   QuantizedTensor)

__all__ = [
    "AffineQuantizer", "InputQuantizer", "QuantizedTensor",
    "slice_weights", "assemble_weights", "num_cells", "cell_significances",
]
