"""Shared utilities: reproducible RNG, logging, and serialization helpers."""

from repro.utils.logging import get_logger, reset_logging
from repro.utils.rng import make_rng, spawn_rngs

__all__ = ["make_rng", "spawn_rngs", "get_logger", "reset_logging"]
