"""Shared utilities: reproducible RNG, logging, and serialization helpers."""

from repro.utils.rng import make_rng, spawn_rngs
from repro.utils.logging import get_logger

__all__ = ["make_rng", "spawn_rngs", "get_logger"]
