"""Lightweight runtime shape contracts for numpy-heavy entry points.

The simulation stack moves (rows, cols)-shaped weight matrices,
(n_groups, cols) register files and (N, rows) activation batches
between layers; a silently transposed or mis-grouped array corrupts
accuracy numbers without ever raising. :func:`check_shapes` lets the
hot entry points state their shape algebra once, in the signature:

.. code-block:: python

    @check_shapes("(n,m),(m,)->(n,)")
    def matvec(a, b): ...

    @check_shapes("(...,r)->(...,c)", arg_names=["x"])
    def vmm(self, x): ...

Spec grammar (one group per checked argument, ``->`` before the
return group, both optional):

* ``(n,m)``      — 2-D; named dims must agree everywhere they appear
                   in the same call (including the return value).
* ``(n,3)``      — integer literals must match exactly.
* ``(_, m)``     — ``_`` matches any extent without binding a name.
* ``(...,r)``    — a leading ellipsis absorbs any number of batch
                   dims; the remaining dims align right.
* ``()``         — a 0-D scalar array (or python scalar).
* ``_``          — (bare, outside parens) skip this argument entirely.

Zero-cost by default: unless ``REPRO_DEBUG`` is set to a truthy value
(``1``/``true``/``yes``/``on``) in the environment *at decoration
time*, the decorator returns the function object unchanged — no
wrapper frame, no per-call overhead. Tests force it on with
``check_shapes(spec, enabled=True)``.
"""

from __future__ import annotations

import functools
import inspect
import os
import re
from typing import (Any, Callable, Dict, List, Optional, Sequence, Tuple,
                    TypeVar, Union)

import numpy as np

F = TypeVar("F", bound=Callable[..., Any])

_TRUTHY = {"1", "true", "yes", "on"}

#: One dimension of a shape spec: an int literal, a name, "_" or "...".
Dim = Union[int, str]


class ShapeContractError(ValueError):
    """A runtime value violated a :func:`check_shapes` contract."""


def debug_enabled(env: Optional[str] = None) -> bool:
    """Whether shape checking is globally enabled (``REPRO_DEBUG``)."""
    value = os.environ.get("REPRO_DEBUG", "") if env is None else env
    return value.strip().lower() in _TRUTHY


_GROUP_RE = re.compile(r"\(([^()]*)\)|([A-Za-z_][A-Za-z0-9_]*)")


def parse_spec(spec: str) -> Tuple[List[Optional[List[Dim]]],
                                   Optional[List[Dim]]]:
    """Parse a contract string into (argument groups, return group).

    Each group is a list of dims, ``None`` for a skipped (``_``)
    argument; the return group is ``None`` when the spec has no
    ``->`` part.
    """
    spec = spec.strip()
    if "->" in spec:
        arg_part, _, ret_part = spec.partition("->")
    else:
        arg_part, ret_part = spec, ""
    groups = _parse_group_list(arg_part)
    ret_groups = _parse_group_list(ret_part) if ret_part.strip() else []
    if len(ret_groups) > 1:
        raise ValueError(f"at most one return group allowed in {spec!r}")
    ret = ret_groups[0] if ret_groups else None
    return groups, ret


def _parse_group_list(text: str) -> List[Optional[List[Dim]]]:
    groups: List[Optional[List[Dim]]] = []
    pos = 0
    text = text.strip()
    while pos < len(text):
        ch = text[pos]
        if ch in ", \t":
            pos += 1
            continue
        match = _GROUP_RE.match(text, pos)
        if match is None:
            raise ValueError(f"malformed shape spec near {text[pos:]!r}")
        if match.group(2) is not None:          # bare name outside parens
            if match.group(2) != "_":
                raise ValueError(
                    f"bare argument spec must be '_', got {match.group(2)!r}")
            groups.append(None)
        else:
            groups.append(_parse_dims(match.group(1)))
        pos = match.end()
    return groups


def _parse_dims(body: str) -> List[Dim]:
    dims: List[Dim] = []
    body = body.strip()
    if not body:
        return dims
    for i, token in enumerate(t.strip() for t in body.split(",")):
        if not token:
            continue
        if token == "...":
            if i != 0:
                raise ValueError("'...' is only allowed as the leading dim")
            dims.append("...")
        elif re.fullmatch(r"-?\d+", token):
            dims.append(int(token))
        elif re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
            dims.append(token)
        else:
            raise ValueError(f"bad dimension token {token!r}")
    return dims


def _check_group(label: str, value: Any, dims: Sequence[Dim],
                 bindings: Dict[str, int], func_name: str) -> None:
    shape = np.shape(value)
    expected = list(dims)
    variadic = bool(expected) and expected[0] == "..."
    if variadic:
        expected = expected[1:]
        if len(shape) < len(expected):
            raise ShapeContractError(
                f"{func_name}: {label} has shape {shape}, needs at least "
                f"{len(expected)} trailing dims matching "
                f"({', '.join(map(str, dims))})")
        shape = shape[len(shape) - len(expected):]
    elif len(shape) != len(expected):
        raise ShapeContractError(
            f"{func_name}: {label} has shape {np.shape(value)}, expected "
            f"{len(expected)}-D ({', '.join(map(str, dims))})")
    for dim_spec, actual in zip(expected, shape):
        if dim_spec == "_":
            continue
        if isinstance(dim_spec, int):
            if actual != dim_spec:
                raise ShapeContractError(
                    f"{func_name}: {label} has shape {np.shape(value)}, "
                    f"dim expected to be {dim_spec} is {actual}")
            continue
        bound = bindings.setdefault(str(dim_spec), int(actual))
        if bound != actual:
            raise ShapeContractError(
                f"{func_name}: {label} has shape {np.shape(value)} but "
                f"dim {dim_spec!r} was already bound to {bound}")


def check_shapes(spec: str, arg_names: Optional[Sequence[str]] = None,
                 enabled: Optional[bool] = None) -> Callable[[F], F]:
    """Attach a runtime shape contract to a function.

    Parameters
    ----------
    spec:
        Contract string (see module docstring for the grammar). The
        argument groups map onto the function's positional parameters
        in order, skipping ``self``/``cls`` — or onto ``arg_names``
        when given.
    arg_names:
        Explicit parameter names the groups apply to, for functions
        where only a subset of arguments carries arrays.
    enabled:
        Force the check on/off regardless of ``REPRO_DEBUG``. The
        default (``None``) consults the environment once, at
        decoration time, so the disabled path costs nothing per call.
    """
    groups, ret_group = parse_spec(spec)     # validate eagerly, always

    def decorate(func: F) -> F:
        active = debug_enabled() if enabled is None else enabled
        if not active:
            return func
        sig = inspect.signature(func)
        params = [p.name for p in sig.parameters.values()
                  if p.kind in (inspect.Parameter.POSITIONAL_ONLY,
                                inspect.Parameter.POSITIONAL_OR_KEYWORD)]
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        names = list(arg_names) if arg_names is not None else params
        if len(groups) > len(names):
            raise ValueError(
                f"{func.__qualname__}: spec {spec!r} has {len(groups)} "
                f"argument groups but only {len(names)} checkable "
                f"parameters {names}")
        checked = list(zip(names, groups))

        # Count contract activations through the obs layer (itself gated
        # on REPRO_OBS), so REPRO_DEBUG=1 runs report how many checks
        # actually fired in the run manifest. Imported lazily at
        # decoration time, never per call.
        from repro.obs import metrics as obs_metrics

        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            obs_metrics.inc("contracts.activations")
            bound = sig.bind(*args, **kwargs)
            bound.apply_defaults()
            bindings: Dict[str, int] = {}
            for name, dims in checked:
                if dims is None:
                    continue
                value = bound.arguments.get(name)
                if value is None:
                    continue
                _check_group(f"argument {name!r}", value, dims, bindings,
                             func.__qualname__)
            result = func(*args, **kwargs)
            if ret_group is not None and result is not None:
                _check_group("return value", result, ret_group, bindings,
                             func.__qualname__)
            return result

        return wrapper  # type: ignore[return-value]

    return decorate
