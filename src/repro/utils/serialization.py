"""Save/load helpers for model parameters and experiment artifacts.

Array families are stored with ``numpy.savez`` (portable, no pickle of
code objects) plus a small JSON sidecar for non-array metadata;
structured documents (run manifests, span streams, benchmark sidecars)
go through the :func:`save_json` / :func:`load_json` /
:func:`write_jsonl` / :func:`read_jsonl` quartet so every on-disk
artifact shares one error-handling contract (:class:`SerializationError`
on unreadable files, numpy scalars coerced to plain JSON).

Path normalisation contract
---------------------------
``save_arrays`` and ``load_arrays`` agree on one rule, applied in both
directions: a path that does not already end in ``.npz`` gets ``.npz``
*appended* (never substituted, so dotted stems like ``run-dva0.5`` are
preserved), and the JSON sidecar lives next to the archive with the
``.npz`` suffix replaced by ``.json``. :func:`normalize_archive_path`
is the single implementation of that rule.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Union

import numpy as np

PathLike = Union[str, Path]


class SerializationError(RuntimeError):
    """An on-disk artifact exists but cannot be read back."""


def normalize_archive_path(path: PathLike) -> Path:
    """Canonical ``.npz`` archive path for ``path``.

    Appends ``.npz`` when missing. Appending (rather than
    ``Path.with_suffix``) keeps dotted stems intact: ``run-dva0.5``
    normalises to ``run-dva0.5.npz``, not ``run-dva0.npz``.
    """
    p = Path(path)
    if p.suffix == ".npz":
        return p
    return p.with_name(p.name + ".npz")


def sidecar_path(path: PathLike) -> Path:
    """The JSON metadata sidecar path for an archive at ``path``."""
    p = normalize_archive_path(path)
    return p.with_name(p.name[: -len(".npz")] + ".json")


def save_arrays(path: PathLike, arrays: Mapping[str, np.ndarray],
                metadata: Optional[Mapping[str, Any]] = None) -> Path:
    """Save a named family of arrays (e.g. a model state dict) to ``path``.

    ``path`` is normalised via :func:`normalize_archive_path`; metadata
    (JSON-able scalars only) is stored alongside as ``<path>.json``.
    Returns the archive path actually written.
    """
    p = normalize_archive_path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez(str(p), **{k: np.asarray(v) for k, v in arrays.items()})  # npz-ok
    if metadata is not None:
        sidecar_path(p).write_text(json.dumps(dict(metadata), indent=2))
    return p


def load_arrays(path: PathLike) -> Dict[str, np.ndarray]:
    """Load arrays saved by :func:`save_arrays`.

    ``path`` goes through the same normalisation as ``save_arrays``, so
    the two always agree on the on-disk name. A file that exists but is
    not a readable ``.npz`` archive (e.g. a truncated artifact) raises
    :class:`SerializationError` naming the offending file, instead of a
    bare ``zipfile.BadZipFile`` from deep inside numpy.
    """
    p = normalize_archive_path(path)
    try:
        with np.load(str(p)) as data:  # npz-ok
            return {k: data[k] for k in data.files}
    except FileNotFoundError:
        raise
    except Exception as exc:  # noqa: BLE001 — any unreadable archive becomes SerializationError
        raise SerializationError(
            f"{p} exists but is not a readable .npz archive "
            f"({type(exc).__name__}: {exc}); it may be truncated or "
            f"corrupt — delete it and regenerate") from exc


def load_metadata(path: PathLike) -> Dict[str, Any]:
    """Load the JSON metadata sidecar written by :func:`save_arrays`."""
    p = Path(path)
    if p.suffix == ".json":
        return dict(json.loads(p.read_text()))
    return dict(json.loads(sidecar_path(p).read_text()))


# ----------------------------------------------------------------------
# structured JSON / JSONL documents
# ----------------------------------------------------------------------
def _json_default(obj: Any) -> Any:
    """Coerce numpy scalars/arrays (and Paths) into plain JSON values."""
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, Path):
        return str(obj)
    raise TypeError(f"{type(obj).__name__} is not JSON serializable")


def save_json(path: PathLike, document: Any, indent: int = 2) -> Path:
    """Write ``document`` as JSON to ``path`` (parents created).

    Numpy scalars and arrays inside the document are converted to their
    plain python equivalents. Returns the path written.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(json.dumps(document, indent=indent,
                            default=_json_default) + "\n")
    return p


def load_json(path: PathLike) -> Any:
    """Load a JSON document; :class:`SerializationError` if unreadable."""
    p = Path(path)
    try:
        return json.loads(p.read_text())
    except FileNotFoundError:
        raise
    except (json.JSONDecodeError, OSError, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"{p} exists but is not readable JSON "
            f"({type(exc).__name__}: {exc})") from exc


def write_jsonl(path: PathLike, rows: Iterable[Mapping[str, Any]]) -> Path:
    """Write one compact JSON object per line (JSONL). Returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w") as fh:
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":"),
                                default=_json_default))
            fh.write("\n")
    return p


def read_jsonl(path: PathLike) -> List[Dict[str, Any]]:
    """Read a JSONL file back into a list of dicts (blank lines skipped)."""
    p = Path(path)
    rows: List[Dict[str, Any]] = []
    try:
        for lineno, line in enumerate(p.read_text().splitlines(), start=1):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{p}:{lineno} is not valid JSON ({exc})") from exc
    except FileNotFoundError:
        raise
    except (OSError, UnicodeDecodeError) as exc:
        raise SerializationError(
            f"{p} exists but cannot be read "
            f"({type(exc).__name__}: {exc})") from exc
    return rows
