"""Save/load helpers for model parameters and experiment artifacts.

Everything is stored with ``numpy.savez`` (portable, no pickle of code
objects) plus a small JSON sidecar for non-array metadata.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping

import numpy as np


def save_arrays(path: str, arrays: Mapping[str, np.ndarray],
                metadata: Mapping[str, Any] = None) -> None:
    """Save a named family of arrays (e.g. a model state dict) to ``path``.

    ``path`` gets a ``.npz`` suffix if it has none; metadata (JSON-able
    scalars only) is stored alongside as ``<path>.json``.
    """
    p = Path(path)
    if p.suffix != ".npz":
        p = p.with_suffix(".npz")
    p.parent.mkdir(parents=True, exist_ok=True)
    np.savez(p, **{k: np.asarray(v) for k, v in arrays.items()})
    if metadata is not None:
        p.with_suffix(".json").write_text(json.dumps(dict(metadata), indent=2))


def load_arrays(path: str) -> Dict[str, np.ndarray]:
    """Load arrays saved by :func:`save_arrays`."""
    p = Path(path)
    if p.suffix != ".npz":
        p = p.with_suffix(".npz")
    with np.load(p) as data:
        return {k: data[k] for k in data.files}


def load_metadata(path: str) -> Dict[str, Any]:
    """Load the JSON metadata sidecar written by :func:`save_arrays`."""
    p = Path(path)
    if p.suffix == ".npz":
        p = p.with_suffix(".json")
    elif p.suffix != ".json":
        p = p.with_suffix(".json")
    return json.loads(p.read_text())
