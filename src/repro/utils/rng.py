"""Reproducible random number generation.

Every stochastic component in the library (dataset synthesis, weight
initialisation, device variation injection, Monte-Carlo LUT building)
draws from a :class:`numpy.random.Generator` produced here, so whole
experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[int, np.random.Generator, None]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged),
    or ``None`` (fresh OS-entropy generator). This lets every public API
    take a single ``seed`` argument that callers can satisfy with
    whatever they have at hand.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when an experiment needs statistically independent streams for
    its repeated trials (e.g. the 5 programming cycles the paper averages
    over) while staying reproducible from one top-level seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = make_rng(seed)
    return [np.random.default_rng(s) for s in root.bit_generator.seed_seq.spawn(n)] \
        if hasattr(root.bit_generator, "seed_seq") and root.bit_generator.seed_seq is not None \
        else [np.random.default_rng(root.integers(0, 2**63)) for _ in range(n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for handing to subcomponents."""
    return int(rng.integers(0, 2**63))
