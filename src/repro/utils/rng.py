"""Reproducible random number generation.

Every stochastic component in the library (dataset synthesis, weight
initialisation, device variation injection, Monte-Carlo LUT building)
draws from a :class:`numpy.random.Generator` produced here, so whole
experiments are reproducible from a single integer seed.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]

#: Picklable seed material for one child stream — what
#: :func:`spawn_seeds` hands out and :func:`make_rng` accepts back.
#: ``SeedSequence`` children cross process boundaries intact, so a
#: worker process reconstructs the exact generator the parent would
#: have used serially.
SeedLike = Union[int, np.random.SeedSequence]


def make_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts an integer seed, an existing generator (returned unchanged),
    a ``SeedSequence`` (e.g. a :func:`spawn_seeds` child), or ``None``
    (fresh OS-entropy generator). This lets every public API take a
    single ``seed`` argument that callers can satisfy with whatever they
    have at hand.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(seed: RngLike, n: int) -> List[SeedLike]:
    """Derive ``n`` independent, *picklable* child seeds from one seed.

    The children are ``SeedSequence.spawn`` descendants (falling back to
    integer draws for bit generators without a seed sequence), so they
    can be shipped to worker processes and turned back into generators
    with :func:`make_rng`. :func:`spawn_rngs` builds on this function,
    which guarantees that a trial executed in a subprocess sees the
    bit-identical stream a serial loop would have given it.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    root = make_rng(seed)
    seed_seq = getattr(root.bit_generator, "seed_seq", None)
    if seed_seq is not None:
        return list(seed_seq.spawn(n))
    return [derive_seed(root) for _ in range(n)]


def spawn_rngs(seed: RngLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when an experiment needs statistically independent streams for
    its repeated trials (e.g. the 5 programming cycles the paper averages
    over) while staying reproducible from one top-level seed.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh 63-bit seed from ``rng`` for handing to subcomponents."""
    return int(rng.integers(0, 2**63))
