"""Minimal logging setup shared across the library.

We use the stdlib ``logging`` module with a library-wide namespace so
applications can control verbosity with one call:
``logging.getLogger("repro").setLevel(logging.INFO)``.
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` is typically ``__name__`` of the calling module; anything
    outside the ``repro`` package is nested under it.
    """
    global _configured
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root = logging.getLogger("repro")
        if not root.handlers:
            root.addHandler(handler)
        root.setLevel(logging.WARNING)
        _configured = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
