"""Minimal logging setup shared across the library.

We use the stdlib ``logging`` module with a library-wide namespace so
applications can control verbosity with one call:
``logging.getLogger("repro").setLevel(logging.INFO)`` — or, without
touching code, through the ``REPRO_LOG_LEVEL`` environment variable
(``DEBUG``/``INFO``/``WARNING``/``ERROR``/``CRITICAL`` or a numeric
level; the default is ``WARNING``).

One-time handler installation is guarded by a lock: the previous
module-global boolean raced under threads (two first-callers could both
install a handler) and could not be undone by tests.
:func:`reset_logging` reverts everything so test suites can exercise
the configuration path repeatedly.
"""

from __future__ import annotations

import logging
import os
import threading
from typing import Optional

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_DEFAULT_LEVEL = logging.WARNING

_lock = threading.Lock()
_configured = False
_installed_handler: Optional[logging.Handler] = None


def _level_from_env(value: Optional[str] = None) -> int:
    """Resolve ``REPRO_LOG_LEVEL`` to a logging level (default WARNING).

    Accepts standard level names case-insensitively or a bare integer;
    unrecognised values fall back to the default rather than raising —
    a typo in an env var must never take down a run.
    """
    raw = os.environ.get("REPRO_LOG_LEVEL", "") if value is None else value
    raw = raw.strip()
    if not raw:
        return _DEFAULT_LEVEL
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw.upper())
    return resolved if isinstance(resolved, int) else _DEFAULT_LEVEL


def _configure_root() -> None:
    global _configured, _installed_handler
    root = logging.getLogger("repro")
    if not root.handlers:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
        _installed_handler = handler
    root.setLevel(_level_from_env())
    _configured = True


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``name`` is typically ``__name__`` of the calling module; anything
    outside the ``repro`` package is nested under it. The first call
    (process-wide, thread-safe) installs the stream handler and applies
    ``REPRO_LOG_LEVEL``.
    """
    if not _configured:                 # racy fast-path; settled under lock
        with _lock:
            if not _configured:
                _configure_root()
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def reset_logging() -> None:
    """Undo :func:`get_logger`'s one-time configuration (for tests).

    Removes the handler this module installed (handlers added by the
    application are left alone) and restores the unconfigured state so
    the next :func:`get_logger` call re-reads ``REPRO_LOG_LEVEL``.
    """
    global _configured, _installed_handler
    with _lock:
        root = logging.getLogger("repro")
        if _installed_handler is not None:
            root.removeHandler(_installed_handler)
            _installed_handler = None
        root.setLevel(logging.NOTSET)
        _configured = False
