"""Synthetic datasets standing in for MNIST / CIFAR-10 (see DESIGN.md §2)."""

from repro.data.augment import (add_noise, augment_dataset, horizontal_flip,
                                random_shift)
from repro.data.loaders import Dataset, iterate_batches
from repro.data.synthetic import synthetic_cifar, synthetic_digits

__all__ = [
    "Dataset", "iterate_batches", "synthetic_digits", "synthetic_cifar",
    "add_noise", "random_shift", "horizontal_flip", "augment_dataset",
]
