"""Input augmentation for robust training.

The deployment experiments train their float models with mild input
augmentation (noise, shifts, flips): networks trained this way sit in
flatter minima and tolerate the residual crossbar weight error better —
the same reason the paper's fully-trained MNIST/CIFAR models are
robust. These helpers are plain-array transforms; compose them with
:func:`augment_dataset`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.data.loaders import Dataset
from repro.utils.rng import RngLike, make_rng


def add_noise(images: np.ndarray, level: float,
              rng: RngLike = None) -> np.ndarray:
    """Additive Gaussian noise, clipped back to [0, 1]."""
    if level < 0:
        raise ValueError("noise level must be non-negative")
    rng = make_rng(rng)
    return np.clip(images + rng.normal(0.0, level, images.shape), 0.0, 1.0)


def random_shift(images: np.ndarray, max_pixels: int,
                 rng: RngLike = None) -> np.ndarray:
    """Random per-image translation by up to ``max_pixels`` (zero fill)."""
    if max_pixels < 0:
        raise ValueError("max_pixels must be non-negative")
    rng = make_rng(rng)
    out = np.empty_like(images)
    for i, img in enumerate(images):
        dy, dx = rng.integers(-max_pixels, max_pixels + 1, size=2)
        shifted = np.roll(img, (dy, dx), axis=(-2, -1))
        if dy > 0:
            shifted[..., :dy, :] = 0
        elif dy < 0:
            shifted[..., dy:, :] = 0
        if dx > 0:
            shifted[..., :, :dx] = 0
        elif dx < 0:
            shifted[..., :, dx:] = 0
        out[i] = shifted
    return out


def horizontal_flip(images: np.ndarray) -> np.ndarray:
    """Mirror every image left-right (natural for CIFAR-like data)."""
    return images[..., ::-1].copy()


def augment_dataset(dataset: Dataset,
                    transforms: Sequence[Callable[[np.ndarray], np.ndarray]],
                    include_original: bool = True) -> Dataset:
    """Apply each transform to the whole dataset and concatenate.

    With ``include_original`` the result holds the original samples plus
    one transformed copy per transform (labels repeated accordingly).
    """
    images = [dataset.images] if include_original else []
    for transform in transforms:
        images.append(transform(dataset.images))
    if not images:
        raise ValueError("nothing to include in the augmented dataset")
    n_copies = len(images)
    return Dataset(np.concatenate(images),
                   np.concatenate([dataset.labels] * n_copies))
