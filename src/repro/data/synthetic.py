"""Procedural image-classification datasets.

The paper evaluates on MNIST and CIFAR-10, which are not available in
this offline environment. These generators produce drop-in substitutes
that exercise the identical code paths:

* :func:`synthetic_digits` — 28x28 grayscale digits rendered from stroke
  templates with random affine jitter, stroke-width variation and noise.
  LeNet trains to near-perfect accuracy on it, so the paper's
  "recovers the ideal value" narrative for Fig. 5(a) is reproducible.
* :func:`synthetic_cifar` — 32x32 RGB images from 10 procedural texture /
  shape classes with heavy instance variation. Harder than the digits
  (ideal accuracy below 100%), standing in for CIFAR-10 in the
  ResNet-18 / VGG-16 experiments.

Both are fully deterministic given a seed.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import ndimage

from repro.utils.rng import RngLike, make_rng

# ----------------------------------------------------------------------
# digit rendering
# ----------------------------------------------------------------------
# Stroke templates on a 16x16 design grid, one polyline list per digit.
# Coordinates are (row, col).
_DIGIT_STROKES = {
    0: [[(2, 5), (2, 10), (7, 13), (13, 10), (13, 5), (7, 2), (2, 5)]],
    1: [[(3, 8), (13, 8)], [(3, 8), (5, 6)]],
    2: [[(4, 4), (2, 8), (4, 12), (13, 4), (13, 12)]],
    3: [[(2, 4), (2, 11), (7, 8), (13, 11), (13, 4)], [(7, 8), (7, 6)]],
    4: [[(2, 10), (9, 4), (9, 13)], [(2, 10), (13, 10)]],
    5: [[(2, 12), (2, 4), (7, 4), (8, 12), (13, 9), (13, 4)]],
    6: [[(2, 11), (6, 3), (13, 5), (13, 10), (8, 12), (7, 6)]],
    7: [[(2, 3), (2, 12), (13, 6)]],
    8: [[(2, 8), (5, 5), (8, 8), (5, 11), (2, 8)],
        [(8, 8), (12, 5), (14, 8), (12, 11), (8, 8)]],
    9: [[(13, 5), (9, 13), (3, 11), (2, 6), (7, 4), (8, 10)]],
}
_DESIGN = 16  # design grid size for the stroke templates


def _render_polyline(canvas: np.ndarray, points, scale: float) -> None:
    """Rasterise one polyline onto ``canvas`` with unit-width strokes."""
    for (r0, c0), (r1, c1) in zip(points[:-1], points[1:]):
        steps = int(3 * scale * max(abs(r1 - r0), abs(c1 - c0))) + 1
        rows = np.linspace(r0 * scale, r1 * scale, steps)
        cols = np.linspace(c0 * scale, c1 * scale, steps)
        ri = np.clip(np.round(rows).astype(int), 0, canvas.shape[0] - 1)
        ci = np.clip(np.round(cols).astype(int), 0, canvas.shape[1] - 1)
        canvas[ri, ci] = 1.0


def _render_digit(digit: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one jittered digit as a (size, size) float image in [0, 1]."""
    scale = size / _DESIGN
    canvas = np.zeros((size, size))
    for stroke in _DIGIT_STROKES[digit]:
        _render_polyline(canvas, stroke, scale)
    # Stroke thickness: blur then threshold-free soft stroke.
    sigma = rng.uniform(0.7, 1.3)
    img = ndimage.gaussian_filter(canvas, sigma)
    peak = img.max()
    if peak > 0:
        img = img / peak
    # Random affine: small rotation, scale, translation.
    angle = rng.uniform(-12, 12)
    img = ndimage.rotate(img, angle, reshape=False, order=1)
    zoom = rng.uniform(0.85, 1.1)
    zoomed = ndimage.zoom(img, zoom, order=1)
    out = np.zeros((size, size))
    zh, zw = zoomed.shape
    if zh >= size:
        lo = (zh - size) // 2
        out = zoomed[lo:lo + size, lo:lo + size]
    else:
        lo = (size - zh) // 2
        out[lo:lo + zh, lo:lo + zw] = zoomed
    shift = rng.integers(-2, 3, size=2)
    out = np.roll(out, shift, axis=(0, 1))
    # Sensor-style noise.
    out = out + rng.normal(0, 0.05, out.shape)
    return np.clip(out, 0.0, 1.0)


def synthetic_digits(n_samples: int, size: int = 28,
                     rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Generate an MNIST-like dataset.

    Returns
    -------
    images : (n_samples, 1, size, size) float64 in [0, 1]
    labels : (n_samples,) int64 in 0..9
    """
    rng = make_rng(rng)
    labels = rng.integers(0, 10, size=n_samples)
    images = np.empty((n_samples, 1, size, size))
    for i, digit in enumerate(labels):
        images[i, 0] = _render_digit(int(digit), size, rng)
    return images, labels.astype(np.int64)


# ----------------------------------------------------------------------
# CIFAR-like textures
# ----------------------------------------------------------------------
def _class_palette(label: int) -> np.ndarray:
    """A fixed, distinct RGB base colour per class."""
    hues = np.linspace(0.0, 2 * np.pi, 10, endpoint=False)
    h = hues[label]
    return 0.5 + 0.4 * np.array([np.cos(h), np.cos(h - 2.1), np.cos(h + 2.1)])


def _render_texture(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one 3-channel procedural texture for ``label``.

    Each class combines a characteristic spatial frequency/orientation
    grating, a class-specific geometric overlay, and its palette, with
    per-instance phase/contrast/noise so the task needs real features,
    not a single pixel statistic.
    """
    yy, xx = np.mgrid[0:size, 0:size] / size
    # Class-specific orientation and frequency.
    theta = (label % 5) * np.pi / 5 + rng.normal(0, 0.08)
    freq = 3 + (label % 4) * 2 + rng.normal(0, 0.3)
    phase = rng.uniform(0, 2 * np.pi)
    grating = np.sin(2 * np.pi * freq *
                     (xx * np.cos(theta) + yy * np.sin(theta)) + phase)
    # Class-specific geometric overlay.
    cy, cx = rng.uniform(0.3, 0.7, size=2)
    rr = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    kind = label % 3
    if kind == 0:
        overlay = (rr < rng.uniform(0.18, 0.3)).astype(float)
    elif kind == 1:
        overlay = ((np.abs(yy - cy) < 0.12) | (np.abs(xx - cx) < 0.12)).astype(float)
    else:
        overlay = np.sin(2 * np.pi * (label + 2) * rr + phase)
    base = 0.55 * grating + 0.45 * overlay
    base = (base - base.min()) / (np.ptp(base) + 1e-9)
    palette = _class_palette(label)
    img = base[None, :, :] * palette[:, None, None]
    # Instance contrast / brightness jitter + noise.
    img = img * rng.uniform(0.7, 1.2) + rng.uniform(-0.08, 0.08)
    img = img + rng.normal(0, 0.08, img.shape)
    return np.clip(img, 0.0, 1.0)


def synthetic_cifar(n_samples: int, size: int = 32,
                    rng: RngLike = None) -> Tuple[np.ndarray, np.ndarray]:
    """Generate a CIFAR-10-like dataset.

    Returns
    -------
    images : (n_samples, 3, size, size) float64 in [0, 1]
    labels : (n_samples,) int64 in 0..9
    """
    rng = make_rng(rng)
    labels = rng.integers(0, 10, size=n_samples)
    images = np.empty((n_samples, 3, size, size))
    for i, label in enumerate(labels):
        images[i] = _render_texture(int(label), size, rng)
    return images, labels.astype(np.int64)
