"""Dataset containers and batch iteration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.utils.rng import RngLike, make_rng


@dataclass
class Dataset:
    """An in-memory labelled dataset (images NCHW, integer labels)."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self):
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images ({len(self.images)}) and labels ({len(self.labels)}) "
                "must have equal length")

    def __len__(self) -> int:
        return len(self.labels)

    def split(self, train_fraction: float,
              rng: RngLike = None) -> Tuple["Dataset", "Dataset"]:
        """Shuffle and split into (train, test)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = make_rng(rng)
        order = rng.permutation(len(self))
        cut = int(len(self) * train_fraction)
        tr, te = order[:cut], order[cut:]
        return (Dataset(self.images[tr], self.labels[tr]),
                Dataset(self.images[te], self.labels[te]))

    def subset(self, n: int) -> "Dataset":
        """First ``n`` samples (useful for quick gradient estimation passes)."""
        return Dataset(self.images[:n], self.labels[:n])


def iterate_batches(dataset: Dataset, batch_size: int, shuffle: bool = True,
                    rng: RngLike = None) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
    """Yield (images, labels) minibatches covering the dataset once."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    n = len(dataset)
    order = make_rng(rng).permutation(n) if shuffle else np.arange(n)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        yield dataset.images[idx], dataset.labels[idx]
