"""Composable non-ideality scenarios over any :class:`ArrayBackend`.

A *scenario* is one stackable device/environment non-ideality — stuck-at
fault maps (extending :mod:`repro.device.faults`), a temperature
coefficient on every cell's conductance (arXiv 2105.05534),
time-indexed conductance drift/retention, extra program-verify noise —
expressed as a transform of the freshly-programmed cell image.
:class:`ScenarioArray` wraps an array backend and replays the stack
after every programming cycle:

.. code-block:: python

    scenarios = parse_scenario_spec(
        "stuck_at:sa0_rate=0.05,sa1_rate=0.01;drift:t_seconds=1e4")
    array = ScenarioArray(SimArray(device, rows, cols), scenarios, seed)

Scenario objects are frozen parameter records; the *persistent* chip
state they imply (which cells are stuck, each cell's temperature
coefficient, each cell's drift exponent) is sampled once per array
region from a dedicated seed stream and reused across programming
cycles — the same chip-persistence discipline as
:class:`repro.device.faults.FaultyDeviceModel`. Per-cycle noise
(:class:`ProgramNoiseScenario`) instead draws from the programming rng
*after* the wrapped backend consumed its draws, so an empty stack
leaves the draw sequence untouched (the bit-parity guarantee).

Every scenario folds its parameters into
:meth:`ScenarioArray.key_components`, which the serve registry's
``serve_program`` content-addressed keys consume — programmed state is
shared exactly between runs with identical physics *and* identical
scenario stacks.
"""

from __future__ import annotations

import abc
import dataclasses
from dataclasses import dataclass
from typing import (Any, ClassVar, Dict, List, Optional, Sequence, Tuple,
                    Type, Union)

import numpy as np

from repro.array.base import ArrayBackend
from repro.device.cell import CellType
from repro.device.faults import FaultMap, sample_fault_map
from repro.device.variation import sample_temperature_coefficients
from repro.obs import metrics as obs_metrics
from repro.utils.rng import RngLike, SeedLike, make_rng, spawn_seeds

__all__ = [
    "Scenario", "StuckAtScenario", "TempCoefficientScenario",
    "DriftScenario", "ProgramNoiseScenario", "ScenarioArray",
    "available_scenarios", "register_scenario", "parse_scenario_spec",
    "scenario_key_components",
]

#: Accepted scenario-spec inputs: the declarative string form, a
#: parsed stack, or per-scenario parameter dicts (``{"name": ...}``).
ScenarioSpec = Union[None, str, Sequence["Scenario"],
                     Sequence[Dict[str, Any]]]


@dataclass(frozen=True)
class Scenario(abc.ABC):
    """One stackable non-ideality: frozen parameters + a cell transform.

    Subclasses are frozen dataclasses whose fields are float/int
    parameters (they must fingerprint into cache keys). Persistent
    chip state is built once per array region by :meth:`init_state`
    from a dedicated rng; :meth:`apply` then transforms each
    programming cycle's cell image.
    """

    #: Registry/spec name of the scenario (e.g. ``"stuck_at"``).
    name: ClassVar[str] = "abstract"

    def key_components(self) -> Dict[str, Any]:
        """Name + every parameter, as a flat scalar dict (cache keying)."""
        return {"scenario": self.name, **dataclasses.asdict(self)}

    def init_state(self, shape: Tuple[int, ...], cell: CellType,
                   rng: np.random.Generator) -> Any:
        """Sample the persistent chip state for a cell region ``shape``.

        Called once per array region from a dedicated seed stream;
        return ``None`` (the default) for purely per-cycle scenarios.
        """
        return None

    @abc.abstractmethod
    def apply(self, cells: np.ndarray, cell: CellType, state: Any,
              rng: np.random.Generator) -> np.ndarray:
        """Transform one cycle's cell image (shape preserved).

        ``cells`` is (rows, cols, n_cells); ``state`` is this region's
        :meth:`init_state` result; ``rng`` is the programming stream
        (already advanced past the backend's own draws) for per-cycle
        noise. Must return a new array — never mutate ``cells``.
        """


@dataclass(frozen=True)
class StuckAtScenario(Scenario):
    """Fabrication stuck-at faults: cells pinned to OFF/ON conductance.

    Persistent state is a :class:`repro.device.faults.FaultMap`; typical
    published rates are ~1-10% of cells, SA0-dominated.
    """

    name: ClassVar[str] = "stuck_at"

    sa0_rate: float = 0.05
    sa1_rate: float = 0.01

    def init_state(self, shape: Tuple[int, ...], cell: CellType,
                   rng: np.random.Generator) -> FaultMap:
        """The region's persistent fault map (drawn once per chip)."""
        return sample_fault_map(shape, self.sa0_rate, self.sa1_rate, rng)

    def apply(self, cells: np.ndarray, cell: CellType, state: FaultMap,
              rng: np.random.Generator) -> np.ndarray:
        """Pin the stuck cells; healthy cells pass through unchanged."""
        return state.apply(cells, cell)


@dataclass(frozen=True)
class TempCoefficientScenario(Scenario):
    """Linear temperature dependence of conductance (arXiv 2105.05534).

    ``G(T) = G0 * (1 + alpha * (T - t_ref))`` with a persistent
    per-cell coefficient ``alpha ~ N(alpha_mean, alpha_std)``. RRAM
    LRS conductance typically falls with temperature, so the default
    mean coefficient is negative.
    """

    name: ClassVar[str] = "temperature"

    temperature: float = 350.0      # operating temperature [K]
    t_ref: float = 300.0            # characterisation temperature [K]
    alpha_mean: float = -1.5e-3     # mean coefficient [1/K]
    alpha_std: float = 5e-4         # device-to-device spread [1/K]

    def init_state(self, shape: Tuple[int, ...], cell: CellType,
                   rng: np.random.Generator) -> np.ndarray:
        """Per-cell temperature coefficients, same ``shape`` as the cells."""
        return sample_temperature_coefficients(
            shape, self.alpha_mean, self.alpha_std, rng)

    def apply(self, cells: np.ndarray, cell: CellType, state: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Scale each cell by its linear T-response (clipped at G=0)."""
        factor = 1.0 + state * (self.temperature - self.t_ref)
        return np.maximum(cells * factor, 0.0)


@dataclass(frozen=True)
class DriftScenario(Scenario):
    """Power-law conductance drift / retention loss.

    ``G(t) = G0 * (t / t0)^(-nu)`` with a persistent per-cell drift
    exponent ``nu ~ N(nu_mean, nu_std)`` (clipped at 0): the standard
    retention model for resistive memories, evaluated at a fixed time
    ``t_seconds`` after programming.
    """

    name: ClassVar[str] = "drift"

    t_seconds: float = 1e4          # read time after programming [s]
    t0_seconds: float = 1.0         # normalisation time [s]
    nu_mean: float = 0.05           # mean drift exponent
    nu_std: float = 0.01            # device-to-device spread

    def __post_init__(self):
        if self.t_seconds <= 0 or self.t0_seconds <= 0:
            raise ValueError("drift times must be positive")

    def init_state(self, shape: Tuple[int, ...], cell: CellType,
                   rng: np.random.Generator) -> np.ndarray:
        """Per-cell drift exponents nu >= 0, same ``shape`` as the cells."""
        return np.maximum(rng.normal(self.nu_mean, self.nu_std, size=shape),
                          0.0)

    def apply(self, cells: np.ndarray, cell: CellType, state: np.ndarray,
              rng: np.random.Generator) -> np.ndarray:
        """Decay each cell by its power-law factor at ``t_seconds``."""
        return cells * (self.t_seconds / self.t0_seconds) ** (-state)


@dataclass(frozen=True)
class ProgramNoiseScenario(Scenario):
    """Extra lognormal program-verify noise on top of the base model.

    Models a sloppier verify loop (fewer pulses, wider acceptance
    window): each cycle multiplies every cell by ``exp(N(0, sigma))``,
    drawn from the programming rng — per-cycle, not chip-persistent.
    """

    name: ClassVar[str] = "program_noise"

    sigma: float = 0.1

    def __post_init__(self):
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    def apply(self, cells: np.ndarray, cell: CellType, state: None,
              rng: np.random.Generator) -> np.ndarray:
        """Multiply by a fresh lognormal factor (one draw per cell)."""
        if self.sigma == 0:
            return np.array(cells, copy=True)
        return cells * np.exp(rng.normal(0.0, self.sigma, size=cells.shape))


# ----------------------------------------------------------------------
# scenario registry + declarative spec parsing
# ----------------------------------------------------------------------
_SCENARIO_TYPES: Dict[str, Type[Scenario]] = {}


def register_scenario(scenario_type: Type[Scenario],
                      replace: bool = False) -> None:
    """Register a :class:`Scenario` subclass under its ``name``.

    Registered names become available to :func:`parse_scenario_spec`
    (the ``--scenarios`` flag). Re-registering raises unless
    ``replace=True``.
    """
    name = scenario_type.name
    if name in _SCENARIO_TYPES and not replace:
        raise ValueError(f"scenario {name!r} is already registered")
    _SCENARIO_TYPES[name] = scenario_type


def available_scenarios() -> Tuple[str, ...]:
    """The registered scenario names, sorted."""
    return tuple(sorted(_SCENARIO_TYPES))


def _build_scenario(name: str, params: Dict[str, Any]) -> Scenario:
    """Instantiate registered scenario ``name`` with ``params``."""
    scenario_type = _SCENARIO_TYPES.get(name)
    if scenario_type is None:
        known = ", ".join(available_scenarios()) or "<none>"
        raise ValueError(
            f"unknown scenario {name!r} — registered scenarios: {known}")
    valid = {f.name for f in dataclasses.fields(scenario_type)}
    unknown = sorted(set(params) - valid)
    if unknown:
        raise ValueError(
            f"scenario {name!r} has no parameter(s) {unknown} — "
            f"valid parameters: {sorted(valid)}")
    return scenario_type(**params)


def parse_scenario_spec(spec: ScenarioSpec) -> Tuple[Scenario, ...]:
    """Parse a declarative scenario spec into a scenario stack.

    Accepts ``None``/empty (no scenarios), an already-built sequence of
    :class:`Scenario` objects, a sequence of ``{"name": ..., param:
    value}`` dicts, or the CLI string form::

        "stuck_at:sa0_rate=0.05,sa1_rate=0.01;drift:t_seconds=1e4"

    (semicolon-separated scenarios, comma-separated ``key=value`` float
    parameters; omitted parameters keep their defaults). Scenarios are
    applied in the order given.
    """
    if spec is None:
        return ()
    if isinstance(spec, str):
        stack: List[Scenario] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            name, _, param_str = chunk.partition(":")
            params: Dict[str, Any] = {}
            for pair in param_str.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ValueError(
                        f"malformed scenario parameter {pair!r} in {chunk!r} "
                        f"(expected key=value)")
                try:
                    params[key.strip()] = float(value)
                except ValueError:
                    raise ValueError(
                        f"scenario parameter {key.strip()!r} in {chunk!r} "
                        f"must be numeric, got {value!r}") from None
            stack.append(_build_scenario(name.strip(), params))
        return tuple(stack)
    out: List[Scenario] = []
    for item in spec:
        if isinstance(item, Scenario):
            out.append(item)
        elif isinstance(item, dict):
            params = dict(item)
            name = params.pop("name", None)
            if not isinstance(name, str):
                raise ValueError(
                    f"scenario dict needs a 'name' string, got {item!r}")
            out.append(_build_scenario(name, params))
        else:
            raise TypeError(
                f"scenario spec entries must be Scenario or dict, "
                f"got {type(item).__name__}")
    return tuple(out)


def scenario_key_components(
        scenarios: Sequence[Scenario]) -> Tuple[Dict[str, Any], ...]:
    """The stack's cache-key view: one parameter dict per scenario,
    in application order. Empty stack -> empty tuple (so keys of
    scenario-free runs are built from the same information as before
    the scenario engine existed)."""
    return tuple(sc.key_components() for sc in scenarios)


# ----------------------------------------------------------------------
# the wrapping backend
# ----------------------------------------------------------------------
class ScenarioArray(ArrayBackend):
    """An :class:`ArrayBackend` with a scenario stack applied on program.

    Wraps ``inner``: every :meth:`program` first programs the inner
    array, then replays the scenario transforms over the fresh cell
    image and stores the result back via ``inner.load_cells`` — so
    read-back, VMM and PWT's compensation all observe the perturbed
    chip, exactly as on real hardware. ``seed`` feeds one dedicated
    persistent-state stream per scenario (chip state is fixed across
    programming cycles and independent of the per-trial rng).
    """

    name = "scenario"

    def __init__(self, inner: ArrayBackend, scenarios: Sequence[Scenario],
                 seed: SeedLike):
        """Wrap ``inner`` with ``scenarios`` (applied in order)."""
        self.inner = inner
        self.scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        self._state_seeds = spawn_seeds(seed, len(self.scenarios))
        self._states: List[Any] = [None] * len(self.scenarios)
        self._initialized = [False] * len(self.scenarios)

    # ------------------------------------------------------------------
    # geometry (delegated)
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Wordline count (delegates to the wrapped array)."""
        return self.inner.rows

    @property
    def cols(self) -> int:
        """Weight-column count (delegates to the wrapped array)."""
        return self.inner.cols

    @property
    def cells_per_weight(self) -> int:
        """Physical cells per weight (delegates to the wrapped array)."""
        return self.inner.cells_per_weight

    @property
    def cell(self) -> CellType:
        """Cell technology (delegates to the wrapped array)."""
        return self.inner.cell

    # ------------------------------------------------------------------
    # programming / read-back
    # ------------------------------------------------------------------
    def _state_for(self, index: int, shape: Tuple[int, ...]) -> Any:
        """The persistent state of scenario ``index`` for this region.

        Sampled lazily on the first programming cycle from the
        scenario's dedicated stream — deterministic in the wrapper's
        seed, independent of trial order.
        """
        if not self._initialized[index]:
            rng = make_rng(self._state_seeds[index])
            self._states[index] = self.scenarios[index].init_state(
                shape, self.cell, rng)
            self._initialized[index] = True
        return self._states[index]

    def program(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Program the inner array, then replay the scenario stack.

        Returns (and installs) the perturbed cell image, shape
        (rows, cols, cells_per_weight).
        """
        rng = make_rng(rng)
        cells = self.inner.program(values, rng)
        for i, scenario in enumerate(self.scenarios):
            state = self._state_for(i, cells.shape)
            cells = scenario.apply(cells, self.cell, state, rng)
            obs_metrics.inc(f"scenario.{scenario.name}.applied")
        if cells.shape != (self.rows, self.cols, self.cells_per_weight):
            raise ValueError(
                "scenario transforms must preserve the cell-image shape")
        self.inner.load_cells(cells)
        return cells

    def load_cells(self, cells: np.ndarray) -> None:
        """Overwrite the inner array's cell image (no scenario replay)."""
        self.inner.load_cells(cells)

    def read_back(self) -> np.ndarray:
        """The current (scenario-perturbed) cell conductances."""
        return self.inner.read_back()

    # ------------------------------------------------------------------
    # analog compute (delegated — state already holds the perturbation)
    # ------------------------------------------------------------------
    def vmm(self, x: np.ndarray,
            active_rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Bitline currents over the perturbed state (delegated)."""
        return self.inner.vmm(x, active_rows)

    def vmm_grouped(self, x: np.ndarray, group_rows: int) -> np.ndarray:
        """Per-group partial currents over the perturbed state (delegated)."""
        return self.inner.vmm_grouped(x, group_rows)

    # ------------------------------------------------------------------
    # identity / cache keying
    # ------------------------------------------------------------------
    def key_components(self) -> Dict[str, Any]:
        """Inner components plus the full scenario-stack parameters."""
        components = dict(self.inner.key_components())
        components["scenarios"] = scenario_key_components(self.scenarios)
        return components


def _register_builtins() -> None:
    """Register the scenario types that ship with the library."""
    for scenario_type in (StuckAtScenario, TempCoefficientScenario,
                          DriftScenario, ProgramNoiseScenario):
        register_scenario(scenario_type, replace=True)


_register_builtins()
