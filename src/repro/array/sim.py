"""The lognormal crossbar-array simulator behind the HAL.

:class:`SimArray` is the original pipeline's device physics — a
:class:`repro.device.lut.DeviceModel` (lognormal DDV/CCV, finite ON/OFF
ratio, bit-sliced cells) optionally wrapped in
:class:`repro.device.faults.FaultyDeviceModel` — re-packaged as an
:class:`repro.array.base.ArrayBackend`. Programming delegates to
``device.program_cells`` with the caller's rng, so the random draw
sequence is *identical* to calling the device model directly: the
bit-parity guarantee of the refactor holds by construction, not by
luck (verified in ``tests/array/test_equivalence.py``).

Analog reads route through a lazily-built
:class:`repro.xbar.crossbar.Crossbar` whose bitlines are the flattened
physical cell columns (``cols * cells_per_weight`` of them, cell-major
within each weight).
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

import numpy as np

from repro.array.base import ArrayBackend
from repro.device.cell import CellType
from repro.device.faults import FaultyDeviceModel
from repro.device.lut import DeviceModel, device_key_components
from repro.obs import metrics as obs_metrics
from repro.utils.rng import RngLike
from repro.xbar.crossbar import Crossbar

__all__ = ["SimArray"]

#: Anything SimArray can drive: the bare lognormal model or its
#: stuck-at-fault wrapper (both expose ``program_cells``).
SimDevice = Union[DeviceModel, FaultyDeviceModel]


def _base_device(device: SimDevice) -> DeviceModel:
    """The underlying :class:`DeviceModel` (unwraps a fault wrapper)."""
    return device.device if isinstance(device, FaultyDeviceModel) else device


class SimArray(ArrayBackend):
    """Simulated RRAM array: lognormal variation, optional stuck-at faults.

    One instance is one array region of ``rows`` x ``cols`` weights
    (``rows`` x ``cols * cells_per_weight`` physical cells). The chip's
    persistent state (the fault map of a :class:`FaultyDeviceModel`)
    lives in the wrapped device and therefore survives re-programming,
    exactly as on silicon.
    """

    name = "sim"

    def __init__(self, device: SimDevice, rows: int, cols: int):
        """Build an unprogrammed array over ``device`` physics.

        ``rows`` / ``cols`` are the weight-matrix dimensions; the cell
        image programmed later has shape (rows, cols, cells_per_weight).
        """
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be positive")
        self.device = device
        self._rows = int(rows)
        self._cols = int(cols)
        self._cells: Optional[np.ndarray] = None
        self._xbar: Optional[Crossbar] = None

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """Wordline count (weight-matrix rows)."""
        return self._rows

    @property
    def cols(self) -> int:
        """Weight-column count (weight-matrix cols)."""
        return self._cols

    @property
    def cells_per_weight(self) -> int:
        """Physical cells (bit slices) per weight."""
        return self.device.cells_per_weight

    @property
    def cell(self) -> CellType:
        """The cell technology of the simulated devices."""
        return _base_device(self.device).cell

    # ------------------------------------------------------------------
    # programming / read-back
    # ------------------------------------------------------------------
    def program(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Program one cycle; returns cells (rows, cols, cells_per_weight).

        Delegates straight to ``device.program_cells(values, rng)`` —
        the exact call (and rng draw sequence) the pre-HAL deployer
        made, so results are bit-identical to it.
        """
        values = np.asarray(values)
        if values.shape != (self._rows, self._cols):
            raise ValueError(
                f"expected values of shape {(self._rows, self._cols)}, "
                f"got {values.shape}")
        cells = self.device.program_cells(values, rng)
        obs_metrics.inc("array.program_cycles")
        self._set_cells(cells)
        return cells

    def load_cells(self, cells: np.ndarray) -> None:
        """Overwrite the cell image, shape (rows, cols, cells_per_weight)."""
        self._set_cells(np.asarray(cells, dtype=np.float64))

    def _set_cells(self, cells: np.ndarray) -> None:
        """Install ``cells`` as current state; invalidates the VMM xbar."""
        expected = (self._rows, self._cols, self.cells_per_weight)
        if cells.shape != expected:
            raise ValueError(
                f"expected cells of shape {expected}, got {cells.shape}")
        self._cells = cells
        self._xbar = None               # rebuilt lazily on the next vmm

    def read_back(self) -> np.ndarray:
        """The current cell conductances (rows, cols, cells_per_weight)."""
        if self._cells is None:
            raise RuntimeError("array has not been programmed")
        return self._cells

    # ------------------------------------------------------------------
    # analog compute
    # ------------------------------------------------------------------
    def _crossbar(self) -> Crossbar:
        """The physical-bitline view: (rows, cols * n_cells) crossbar."""
        if self._xbar is None:
            cells = self.read_back()
            xbar = Crossbar(self._rows, self._cols * self.cells_per_weight)
            xbar.write(cells.reshape(self._rows, -1))
            self._xbar = xbar
        return self._xbar

    def vmm(self, x: np.ndarray,
            active_rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Bitline currents: x (..., rows) -> (..., cols * n_cells)."""
        return self._crossbar().vmm(x, active_rows)

    def vmm_grouped(self, x: np.ndarray, group_rows: int) -> np.ndarray:
        """Per-group partials: x (..., rows) -> (..., n_groups, cols * n_cells)."""
        return self._crossbar().vmm_grouped(x, group_rows)

    # ------------------------------------------------------------------
    # identity / cache keying
    # ------------------------------------------------------------------
    def key_components(self) -> Dict[str, Any]:
        """Backend name + every device parameter that shapes the physics.

        Flat scalar dict (nested under ``array_components`` in serve
        keys); fault rates appear only when a fault wrapper is present,
        keeping pre-HAL keys' information content unchanged.
        """
        components: Dict[str, Any] = {"array": self.name}
        components.update(device_key_components(_base_device(self.device)))
        if isinstance(self.device, FaultyDeviceModel):
            components["sa0_rate"] = self.device.sa0_rate
            components["sa1_rate"] = self.device.sa1_rate
        return components
