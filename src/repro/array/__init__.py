"""Crossbar-array hardware-abstraction layer: one registry for all arrays.

Every programmed weight matrix in the deployer lives on an
:class:`~repro.array.base.ArrayBackend` resolved here, so array physics
(simulators, future board drivers) can be swapped without touching the
paper-faithful pipeline:

.. code-block:: python

    from repro.array import get_array, use_array

    factory = get_array()            # the active default family
    array = factory(device, rows, cols)
    with use_array("sim"):           # temporary override (tests)
        ...

Selection, in precedence order:

1. an explicit ``name`` argument (or per-deploy ``array=`` config field);
2. :func:`set_default_array` (the CLI ``--array`` flag);
3. the ``REPRO_ARRAY`` environment variable;
4. the built-in default, ``sim``.

``sim`` is the original lognormal simulator
(:class:`~repro.array.sim.SimArray`) and defines the bit-parity
baseline: with it and an empty scenario stack, deploy/serve results are
identical to the pre-HAL pipeline (asserted by ``tests/array/``).
Third parties add array families with :func:`register_array`; a
registered factory is called as ``factory(device, rows, cols)`` once
per deployed layer. Composable non-ideality transforms live in
:mod:`repro.array.scenarios` and wrap any backend.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, Optional, Tuple

from repro.array.base import ArrayBackend

#: An array family: builds one array region per deployed weight matrix.
ArrayFactory = Callable[[Any, int, int], ArrayBackend]

#: Environment variable naming the default array family.
ENV_VAR = "REPRO_ARRAY"

#: The array family used when nothing else selects one.
BUILTIN_DEFAULT = "sim"

_LOCK = threading.Lock()
_FACTORIES: Dict[str, ArrayFactory] = {}
_DEFAULT_OVERRIDE: Optional[str] = None


def register_array(name: str, factory: ArrayFactory,
                   replace: bool = False) -> None:
    """Register an array-family ``factory`` under ``name``.

    Unlike compute backends, array factories are *not* singleton-cached:
    each call builds a fresh stateful array region (one per deployed
    layer). Registering an existing name raises unless ``replace=True``.
    """
    with _LOCK:
        if name in _FACTORIES and not replace:
            raise ValueError(f"array family {name!r} is already registered")
        _FACTORIES[name] = factory


def available_arrays() -> Tuple[str, ...]:
    """The registered array-family names, sorted."""
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def default_array_name() -> str:
    """The name :func:`get_array` resolves when called without one.

    Precedence: :func:`set_default_array` override, then the
    ``REPRO_ARRAY`` environment variable, then ``sim``.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    return os.environ.get(ENV_VAR, "").strip() or BUILTIN_DEFAULT


def set_default_array(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default array family.

    Validates eagerly so a typo fails at the CLI flag, not deep inside
    the first deployment.
    """
    global _DEFAULT_OVERRIDE
    if name is not None:
        _resolve(name)                   # raises on unknown names
    # Workers mirror the parent's TrialTask.array snapshot through this
    # setter, so the rebind is deliberately per-process.
    _DEFAULT_OVERRIDE = name  # fork-ok — worker-local sync, never read back


def _resolve(name: str) -> ArrayFactory:
    """Fetch the factory registered under ``name``."""
    with _LOCK:
        factory = _FACTORIES.get(name)
        if factory is None:
            known = ", ".join(sorted(_FACTORIES)) or "<none>"
            raise ValueError(
                f"unknown array family {name!r} — registered families: "
                f"{known} (select via {ENV_VAR} or --array)")
        return factory


def get_array(name: Optional[str] = None) -> ArrayFactory:
    """The array-family factory to build arrays with.

    ``name=None`` resolves the current default (override, then
    ``REPRO_ARRAY``, then ``sim``); unknown names raise ``ValueError``
    listing what is registered. Call the result as
    ``factory(device, rows, cols)`` to build one array region.
    """
    return _resolve(name if name is not None else default_array_name())


@contextmanager
def use_array(name: str) -> Iterator[ArrayFactory]:
    """Temporarily make ``name`` the default array family (tests, sweeps)."""
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    factory = _resolve(name)
    _DEFAULT_OVERRIDE = name
    try:
        yield factory
    finally:
        _DEFAULT_OVERRIDE = previous


def _register_builtins() -> None:
    """Register the array family that ships with the library."""
    from repro.array.sim import SimArray

    register_array(SimArray.name, SimArray, replace=True)


_register_builtins()

__all__ = [
    "ENV_VAR", "BUILTIN_DEFAULT", "ArrayBackend", "ArrayFactory",
    "available_arrays", "default_array_name", "get_array",
    "register_array", "set_default_array", "use_array",
]
