"""The abstract crossbar-array interface (hardware-abstraction layer).

An :class:`ArrayBackend` is one physical (or simulated) RRAM array
holding the cells of a single weight matrix: ``cells_per_weight``
physical columns per weight column, one wordline per matrix row. The
interface is deliberately small — exactly the operations a real array
driver could implement:

* :meth:`ArrayBackend.program` — write integer weight values (one
  programming cycle; simulators redraw their cycle-to-cycle noise);
* :meth:`ArrayBackend.load_cells` — overwrite the raw cell image (used
  by scenario transforms and state restoration);
* :meth:`ArrayBackend.read_back` — measure the current per-cell
  conductances (what PWT's post-writing read-back consumes);
* :meth:`ArrayBackend.vmm` / :meth:`ArrayBackend.vmm_grouped` — analog
  Kirchhoff-law column currents for a wordline drive vector;
* :meth:`ArrayBackend.key_components` — the declared
  capability/metadata dict that content-addressed cache keys fold in,
  so two arrays share artifacts exactly when their physics agree.

Concrete implementations are selected through the registry in
:mod:`repro.array` (``REPRO_ARRAY`` / ``--array``), mirroring
:mod:`repro.backend`. The lognormal simulator extracted from the
original pipeline is :class:`repro.array.sim.SimArray`; composable
non-ideality transforms wrap any backend via
:class:`repro.array.scenarios.ScenarioArray`.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar, Dict, Optional

import numpy as np

from repro.utils.rng import RngLike

__all__ = ["ArrayBackend"]


class ArrayBackend(abc.ABC):
    """One crossbar array behind the hardware-abstraction layer.

    State contract: an array is created unprogrammed; :meth:`program`
    (or :meth:`load_cells`) installs a cell image of shape
    ``(rows, cols, cells_per_weight)`` which :meth:`read_back`,
    :meth:`vmm` and :meth:`vmm_grouped` then observe. Instances persist
    across programming cycles, so chip-persistent non-idealities (fault
    maps, per-device coefficients) live in the array, not the caller.
    """

    #: Registry name of the backend family (e.g. ``"sim"``).
    name: ClassVar[str] = "abstract"

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    @property
    @abc.abstractmethod
    def rows(self) -> int:
        """Wordline count (weight-matrix rows)."""

    @property
    @abc.abstractmethod
    def cols(self) -> int:
        """Weight-column count (weight-matrix cols)."""

    @property
    @abc.abstractmethod
    def cells_per_weight(self) -> int:
        """Physical cells (bit slices) per weight."""

    @property
    @abc.abstractmethod
    def cell(self) -> Any:
        """The :class:`repro.device.cell.CellType` of this array."""

    # ------------------------------------------------------------------
    # programming / read-back
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def program(self, values: np.ndarray, rng: RngLike = None) -> np.ndarray:
        """Program integer weights ``values`` (rows, cols) — one cycle.

        Returns the resulting per-cell conductances, shape
        (rows, cols, cells_per_weight), which also become the array's
        current state. Simulated backends redraw cycle-to-cycle noise
        on every call, exactly like a physical re-programming.
        """

    @abc.abstractmethod
    def load_cells(self, cells: np.ndarray) -> None:
        """Overwrite the raw cell image, shape (rows, cols, n_cells).

        This is the scenario engine's injection point: transforms
        observe :meth:`program`'s output, perturb it, and store the
        perturbed image back so every later read/VMM sees it.
        """

    @abc.abstractmethod
    def read_back(self) -> np.ndarray:
        """Measure the current cell conductances.

        Returns shape (rows, cols, cells_per_weight); raises
        ``RuntimeError`` if the array was never programmed.
        """

    # ------------------------------------------------------------------
    # analog compute
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def vmm(self, x: np.ndarray,
            active_rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Physical column currents for drive vector(s) ``x``.

        ``x`` has shape (..., rows); returns (..., cols * n_cells) —
        one current per physical bitline (cell column), in cell order
        within each weight. ``active_rows`` (boolean mask or index
        array) silences the other wordlines.
        """

    @abc.abstractmethod
    def vmm_grouped(self, x: np.ndarray, group_rows: int) -> np.ndarray:
        """Per-activation-group partial currents.

        ``x`` has shape (..., rows); returns
        (..., n_groups, cols * n_cells) — the per-cycle partial sums
        the digital-offset adder trees consume (paper Section III-A).
        """

    # ------------------------------------------------------------------
    # identity / cache keying
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def key_components(self) -> Dict[str, Any]:
        """The capability/metadata dict naming this array's physics.

        Folded into content-addressed cache keys (``serve_program``)
        so programmed state is reused exactly when the array would
        reproduce it: backend name, cell technology, variation
        parameters, and any wrapped scenario parameters. Values must
        be fingerprintable by :func:`repro.cache.keys.fingerprint`
        (scalars, strings, nested tuples/dicts) — never raw arrays of
        programmed state.
        """

    # ------------------------------------------------------------------
    # conveniences shared by all backends
    # ------------------------------------------------------------------
    def program_weights(self, values: np.ndarray,
                        rng: RngLike = None) -> np.ndarray:
        """Weight-level view of :meth:`program`.

        Programs one cycle and reassembles the noisy cells into
        crossbar real weights — returns shape (rows, cols). This is
        the interface iterative write-and-verify programming drives.
        """
        from repro.quant.bitslice import assemble_weights

        cells = self.program(values, rng)
        return assemble_weights(cells, self.cell.bits)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(rows={self.rows}, cols={self.cols}, "
                f"cells_per_weight={self.cells_per_weight})")
