"""End-to-end deployment: quantize -> VAWO* -> program -> PWT -> evaluate.

This module orchestrates the whole flow of the paper's Fig. 2-4 story
for an arbitrary trained network:

1. every ``Conv2d`` / ``Linear`` weight tensor is quantized to shifted
   non-negative n-bit integers (the NTWs) and its crossbar matrix
   layout and offset plan are derived;
2. input quantizers are calibrated with a forward pass;
3. if VAWO is enabled, mean per-weight gradients are estimated on
   training data and :func:`repro.core.vawo.run_vawo` picks the CTWs,
   initial offsets and complement flags (otherwise the plain scheme is
   used);
4. :meth:`Deployer.program` simulates one programming cycle — fresh CCV
   noise — and builds a deployed model whose conv/linear layers are
   :mod:`repro.core.crossbar_layers` instances;
5. if PWT is enabled, the offsets are tuned on training data.

Calling :meth:`Deployer.program` repeatedly with different seeds gives
the independent programming cycles the paper averages over (5 trials).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import (TYPE_CHECKING, Any, Callable, Dict, List, Mapping,
                    Optional, Tuple)

import numpy as np

if TYPE_CHECKING:
    from repro.eval.accuracy import TrialResult

from repro.array import ArrayBackend, default_array_name, get_array
from repro.array.scenarios import (ScenarioArray, ScenarioSpec,
                                   parse_scenario_spec,
                                   scenario_key_components)
from repro.backend import default_backend_name
from repro.cache import (CacheStore, active_store, digest_array,
                         digest_arrays, stage_key)
from repro.core.crossbar_layers import (CrossbarConv2d, CrossbarLinear,
                                        _CrossbarBase)
from repro.core.offsets import OffsetPlan
from repro.core.pwt import PWTConfig, run_pwt
from repro.core.vawo import VAWOResult, plain_assignment, run_vawo
from repro.data.loaders import Dataset, iterate_batches
from repro.device.cell import SLC, CellType
from repro.device.lut import (DeviceLUT, DeviceModel, build_lut_analytic,
                              build_lut_monte_carlo, device_key_components,
                              lut_from_arrays, lut_to_arrays)
from repro.device.variation import VariationModel
from repro.nn import functional as F
from repro.nn.layers import Conv2d, Linear, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.quant.bitslice import slice_weights
from repro.quant.quantizer import AffineQuantizer, InputQuantizer
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, derive_seed, make_rng, spawn_seeds

logger = get_logger(__name__)


@dataclass
class DeployConfig:
    """Everything that defines a deployment scenario."""

    weight_bits: int = 8
    input_bits: Optional[int] = 8          # None = no activation quantization
    cell: CellType = SLC
    sigma: float = 0.5
    ddv_fraction: float = 0.0
    granularity: int = 16                  # the paper's m
    offset_bits: int = 8
    use_vawo: bool = False
    use_complement: bool = False
    use_pwt: bool = False
    lut_source: str = "analytic"           # or "monte_carlo"
    lut_k_sets: int = 32
    lut_j_cycles: int = 32
    grad_batches: int = 4
    grad_batch_size: int = 64
    grad_floor_frac: float = 0.1
    bias_tolerance: float = 2.0
    bn_recalibrate: bool = False    # refresh BatchNorm stats post-writing
    # Optional stuck-at faults: (sa0_rate, sa1_rate) of cells pinned to
    # their OFF/ON conductance. Faults are invisible to VAWO (a-priori)
    # but visible to PWT's read-back — matching real deployments.
    saf_rates: Optional[Tuple[float, float]] = None
    # Which registered array family programs the crossbars (None =
    # process default: --array / REPRO_ARRAY / "sim") and which
    # non-ideality scenario stack wraps it — a spec string
    # ("stuck_at:sa0_rate=0.05;drift:t_seconds=1e4"), a parsed
    # Scenario sequence, or per-scenario dicts. Empty = bare array,
    # which is bit-identical to the pre-HAL pipeline.
    array: Optional[str] = None
    scenarios: ScenarioSpec = None
    pwt: PWTConfig = field(default_factory=PWTConfig)

    METHODS = ("plain", "vawo", "vawo*", "pwt", "vawo*+pwt")

    def __post_init__(self):
        if self.lut_source not in ("analytic", "monte_carlo"):
            raise ValueError(f"unknown lut_source {self.lut_source!r}")
        if self.granularity < 1:
            raise ValueError("granularity must be positive")
        # Normalise the scenario spec once so equal configs compare (and
        # fingerprint) equal regardless of which spec form built them.
        self.scenarios = parse_scenario_spec(self.scenarios)

    @classmethod
    def from_method(cls, method: str, **kwargs: Any) -> "DeployConfig":
        """Build a config from one of the paper's five scheme names."""
        flags = {
            "plain": dict(use_vawo=False, use_complement=False, use_pwt=False),
            "vawo": dict(use_vawo=True, use_complement=False, use_pwt=False),
            "vawo*": dict(use_vawo=True, use_complement=True, use_pwt=False),
            "pwt": dict(use_vawo=False, use_complement=False, use_pwt=True),
            "vawo*+pwt": dict(use_vawo=True, use_complement=True, use_pwt=True),
        }
        if method not in flags:
            raise ValueError(f"unknown method {method!r}; "
                             f"choose from {sorted(flags)}")
        return cls(**{**flags[method], **kwargs})

    @property
    def method_name(self) -> str:
        """The paper's scheme name for this flag combination."""
        key = (self.use_vawo, self.use_complement, self.use_pwt)
        return {
            (False, False, False): "plain",
            (True, False, False): "vawo",
            (True, True, False): "vawo*",
            (False, False, True): "pwt",
            (True, True, True): "vawo*+pwt",
            (True, False, True): "vawo+pwt",
        }.get(key, "custom")


# ----------------------------------------------------------------------
# model traversal helpers
# ----------------------------------------------------------------------
def mappable_layers(model: Module) -> List[Tuple[str, Module]]:
    """The crossbar-mappable layers (Conv2d / Linear), in stable order."""
    return [(name, mod) for name, mod in model.named_modules()
            if isinstance(mod, (Conv2d, Linear))]


def _replace_module(root: Module, path: str, new: Module) -> None:
    """Replace the module at dotted ``path`` inside ``root``."""
    parts = path.split(".")
    parent = root
    for part in parts[:-1]:
        parent = parent._modules[part]
    leaf = parts[-1]
    parent._modules[leaf] = new
    object.__setattr__(parent, leaf, new)


def _rebuild_sequentials(root: Module) -> None:
    """Refresh every Sequential's ordered list after replacements."""
    for _, mod in root.named_modules():
        if isinstance(mod, Sequential):
            mod._seq = [mod._modules[f"m{i}"] for i in range(len(mod._seq))]


def weight_to_matrix(weight: np.ndarray) -> np.ndarray:
    """Layer weight tensor -> crossbar matrix (rows=inputs, cols=outputs)."""
    weight = np.asarray(weight)
    if weight.ndim == 2:            # Linear: (out, in) -> (in, out)
        return weight.T
    if weight.ndim == 4:            # Conv: (F, C, kh, kw) -> (C*kh*kw, F)
        return weight.reshape(weight.shape[0], -1).T
    raise ValueError(f"unsupported weight ndim {weight.ndim}")


# ----------------------------------------------------------------------
# per-layer preparation
# ----------------------------------------------------------------------
@dataclass
class LayerPrep:
    """Everything VAWO / programming needs for one layer."""

    path: str
    is_conv: bool
    kernel_shape: Optional[Tuple[int, ...]]
    stride: int
    padding: int
    ntw: np.ndarray                 # (rows, cols) integers
    scale: float
    zero_point: int
    bias: Optional[np.ndarray]
    plan: OffsetPlan
    input_quantizer: Optional[InputQuantizer]
    grads: Optional[np.ndarray] = None        # (rows, cols) mean gradients
    assignment: Optional[VAWOResult] = None   # CTW / offsets / complement


class _CalibrationShim(Module):
    """Wraps a layer during calibration to record its input peak."""

    def __init__(self, inner: Module):
        super().__init__()
        self.inner = inner
        self.peak = 0.0

    def forward(self, x: Tensor) -> Tensor:
        self.peak = max(self.peak, float(np.abs(x.data).max()))
        return self.inner(x)


class Deployer:
    """Prepares a trained model for crossbar deployment and programs it.

    The expensive, noise-independent work (quantization, calibration,
    gradient estimation, VAWO) happens once in the constructor; each
    :meth:`program` call then simulates an independent programming cycle.
    """

    def __init__(self, model: Module, train_data: Dataset,
                 config: DeployConfig, rng: RngLike = None,
                 cache: Optional[CacheStore] = None):
        """Run the noise-independent preparation for ``model``.

        Quantizes weights, calibrates input ranges, estimates per-weight
        gradients and solves VAWO (as configured) — everything needed
        before the first :meth:`program` call. Stage results are reused
        through the artifact cache (``cache``, defaulting to the
        env-resolved :func:`repro.cache.active_store`; ``REPRO_CACHE=0``
        disables reuse) with bit-identical results either way: stages
        that consume randomness are handed dedicated integer seeds drawn
        from the parent stream in a config-determined order, so a cache
        hit advances ``rng`` exactly as a miss does.
        """
        self.model = model
        self.config = config
        self.train_data = train_data
        self._rng = make_rng(rng)
        self.cache = cache if cache is not None else active_store()
        self.variation = VariationModel(config.sigma, config.ddv_fraction)
        self.device = DeviceModel(config.cell, self.variation,
                                  n_bits=config.weight_bits)
        # Per-stage seeds, drawn in a fixed config-determined order —
        # never conditional on cache state (see DESIGN.md, "Why stage
        # keys exclude RNG-dependent inputs").
        saf_seed = (derive_seed(self._rng)
                    if config.saf_rates is not None else None)
        self._lut_seed = (derive_seed(self._rng)
                          if config.lut_source == "monte_carlo" else None)
        self._grad_seed = derive_seed(self._rng) if config.use_vawo else None
        # Scenario chip state gets its own stream — drawn only when a
        # stack is configured, so scenario-free runs leave the parent
        # stream (and every downstream draw) bit-identical to pre-HAL.
        self._scenario_seed = (derive_seed(self._rng)
                               if config.scenarios else None)
        self.array_name = (config.array if config.array is not None
                           else default_array_name())
        get_array(self.array_name)       # unknown names fail at build time
        if config.saf_rates is not None:
            from repro.device.faults import FaultyDeviceModel
            sa0, sa1 = config.saf_rates
            self.programmer = FaultyDeviceModel(self.device, sa0_rate=sa0,
                                                sa1_rate=sa1, rng=saf_seed)
        else:
            self.programmer = self.device
        self.lut = self._build_lut()
        self.layers: List[LayerPrep] = self._prepare_layers()
        self._calibrate_inputs()
        if config.use_vawo:
            self._estimate_gradients()
        self._assign_targets()
        self.arrays: List[ArrayBackend] = self._build_arrays()

    # ------------------------------------------------------------------
    # preparation stages
    # ------------------------------------------------------------------
    def _stage(self, stage: str, components: Dict[str, Any],
               compute: Callable[[], Dict[str, np.ndarray]],
               span_name: str, **span_attrs: Any) -> Dict[str, np.ndarray]:
        """Run one cacheable stage: lookup by content key, else compute.

        ``components`` are the stage's actual inputs (config fields and
        array digests — never RNG generators); ``compute`` returns the
        stage's full result as a named array family, which is what a
        later hit replays bit-identically. The stage span carries a
        ``cached`` attribute so ``--profile`` manifests show reuse.
        """
        store = self.cache
        if store is None:
            with span(span_name, cached=False, **span_attrs):
                return compute()
        key = stage_key(stage, **components)
        arrays = store.get(key, stage=stage)
        with span(span_name, cached=arrays is not None, **span_attrs):
            if arrays is None:
                arrays = compute()
                store.put(key, arrays, stage=stage,
                          metadata={"method": self.config.method_name})
            return arrays

    def _build_lut(self) -> DeviceLUT:
        components: Dict[str, Any] = dict(
            device_key_components(self.device),
            source=self.config.lut_source)
        if self.config.lut_source == "monte_carlo":
            components.update(k_sets=self.config.lut_k_sets,
                              j_cycles=self.config.lut_j_cycles,
                              seed=self._lut_seed)

        def compute() -> Dict[str, np.ndarray]:
            if self.config.lut_source == "analytic":
                lut = build_lut_analytic(self.device)
            else:
                lut = build_lut_monte_carlo(
                    self.device, self.config.lut_k_sets,
                    self.config.lut_j_cycles, make_rng(self._lut_seed))
            return lut_to_arrays(lut)

        arrays = self._stage("lut", components, compute, "deploy.lut",
                             source=self.config.lut_source)
        return lut_from_arrays(arrays)

    def _prepare_layers(self) -> List[LayerPrep]:
        layers = mappable_layers(self.model)
        if not layers:
            raise ValueError("model has no crossbar-mappable layers")
        components = dict(
            weights=digest_arrays(
                {path: layer.weight.data for path, layer in layers}),
            weight_bits=self.config.weight_bits)

        def compute() -> Dict[str, np.ndarray]:
            quantizer = AffineQuantizer(self.config.weight_bits)
            out: Dict[str, np.ndarray] = {}
            for i, (_, layer) in enumerate(layers):
                qt = quantizer.quantize(layer.weight.data)
                out[f"{i}.ntw"] = weight_to_matrix(qt.values)
                out[f"{i}.scale"] = np.float64(qt.scale)
                out[f"{i}.zero_point"] = np.int64(qt.zero_point)
            return out

        arrays = self._stage("quantize", components, compute,
                             "deploy.quantize")
        preps = []
        for i, (path, layer) in enumerate(layers):
            ntw = arrays[f"{i}.ntw"]
            plan = OffsetPlan(rows=ntw.shape[0], cols=ntw.shape[1],
                              granularity=self.config.granularity)
            is_conv = isinstance(layer, Conv2d)
            in_q = (InputQuantizer(self.config.input_bits)
                    if self.config.input_bits else None)
            preps.append(LayerPrep(
                path=path, is_conv=is_conv,
                kernel_shape=tuple(layer.weight.shape) if is_conv else None,
                stride=getattr(layer, "stride", 1),
                padding=getattr(layer, "padding", 0),
                ntw=ntw, scale=float(arrays[f"{i}.scale"]),
                zero_point=int(arrays[f"{i}.zero_point"]),
                bias=None if layer.bias is None else layer.bias.data.copy(),
                plan=plan, input_quantizer=in_q))
        return preps

    def _calibrate_inputs(self) -> None:
        """Record per-layer input peaks on a calibration batch."""
        if self.config.input_bits is None:
            return
        n_cal = min(len(self.train_data), 256)
        images = self.train_data.images[:n_cal]
        # Peaks depend on every parameter/buffer the forward pass reads
        # (not just mappable weights) and on the kernel backend's float
        # numerics, so both enter the key.
        components = dict(
            state=digest_arrays(self.model.state_dict()),
            images=digest_array(images),
            input_bits=self.config.input_bits,
            backend=default_backend_name())
        arrays = self._stage(
            "calibrate", components,
            lambda: {"peaks": self._measure_peaks(images)},
            "deploy.calibrate")
        for prep, peak in zip(self.layers, arrays["peaks"]):
            prep.input_quantizer.calibrate(np.array(peak))

    def _measure_peaks(self, images: np.ndarray) -> np.ndarray:
        """Forward ``images`` (n, ...) once; per-layer input peaks (L,)."""
        shims: Dict[str, _CalibrationShim] = {}
        for prep in self.layers:
            target = self._lookup(self.model, prep.path)
            shim = _CalibrationShim(target)
            _replace_module(self.model, prep.path, shim)
            shims[prep.path] = shim
        _rebuild_sequentials(self.model)
        try:
            self.model.eval()
            self.model(Tensor(images))
        finally:
            for prep in self.layers:
                _replace_module(self.model, prep.path, shims[prep.path].inner)
            _rebuild_sequentials(self.model)
        return np.array([shims[prep.path].peak for prep in self.layers])

    def _estimate_gradients(self) -> None:
        """Per-weight loss sensitivity over training batches (Eq. 5).

        The paper weights Var[R(v)] by the squared mean training-set
        gradient. At a well-trained optimum the mean gradient is ~0 for
        every weight (that is what training converged to), so its square
        carries almost no sensitivity information. We therefore estimate
        the RMS of per-batch gradients — a Fisher-information-style
        proxy for how strongly the loss reacts to perturbing each weight
        — which reduces to the paper's quantity away from convergence
        and stays informative at it. DESIGN.md records this refinement.
        """
        components = dict(
            state=digest_arrays(self.model.state_dict()),
            images=digest_array(self.train_data.images),
            labels=digest_array(self.train_data.labels),
            batches=self.config.grad_batches,
            batch_size=self.config.grad_batch_size,
            seed=self._grad_seed,
            backend=default_backend_name())
        arrays = self._stage("gradients", components,
                             self._compute_gradients, "deploy.gradients",
                             batches=self.config.grad_batches)
        for i, prep in enumerate(self.layers):
            prep.grads = arrays[f"{i}.grads"]

    def _compute_gradients(self) -> Dict[str, np.ndarray]:
        """Batch-shuffled gradient RMS per layer, keyed ``{i}.grads``."""
        rng = make_rng(self._grad_seed)
        self.model.eval()
        layer_map = dict(mappable_layers(self.model))
        sq_sums = {prep.path: np.zeros_like(layer_map[prep.path].weight.data)
                   for prep in self.layers}
        n_batches = 0
        for images, labels in iterate_batches(
                self.train_data, self.config.grad_batch_size,
                shuffle=True, rng=rng):
            self.model.zero_grad()
            loss = F.cross_entropy(self.model(Tensor(images)), labels)
            loss.backward()
            for prep in self.layers:
                grad = layer_map[prep.path].weight.grad
                if grad is not None:
                    sq_sums[prep.path] += grad ** 2
            n_batches += 1
            if n_batches >= self.config.grad_batches:
                break
        self.model.zero_grad()
        out: Dict[str, np.ndarray] = {}
        for i, prep in enumerate(self.layers):
            rms = np.sqrt(sq_sums[prep.path] / max(n_batches, 1))
            out[f"{i}.grads"] = weight_to_matrix(rms)
        return out

    def _assign_targets(self) -> None:
        with span("deploy.vawo", layers=len(self.layers),
                  method=self.config.method_name):
            if not self.config.use_vawo:
                for prep in self.layers:
                    prep.assignment = plain_assignment(prep.ntw, prep.plan)
                return
            lut_digest = digest_arrays(lut_to_arrays(self.lut))
            for prep in self.layers:
                prep.assignment = self._solve_vawo(prep, lut_digest)

    def _solve_vawo(self, prep: LayerPrep, lut_digest: str) -> VAWOResult:
        """One layer's cached VAWO solve (search itself is in core.vawo)."""
        cfg = self.config
        components = dict(
            ntw=digest_array(prep.ntw), grads=digest_array(prep.grads),
            lut=lut_digest, granularity=cfg.granularity,
            weight_bits=cfg.weight_bits, offset_bits=cfg.offset_bits,
            use_complement=cfg.use_complement,
            grad_floor_frac=cfg.grad_floor_frac,
            bias_tolerance=cfg.bias_tolerance)

        def compute() -> Dict[str, np.ndarray]:
            result = run_vawo(
                prep.ntw, prep.grads, self.lut, prep.plan,
                weight_bits=cfg.weight_bits, offset_bits=cfg.offset_bits,
                use_complement=cfg.use_complement,
                grad_floor_frac=cfg.grad_floor_frac,
                bias_tolerance=cfg.bias_tolerance)
            return {"ctw": result.ctw, "registers": result.registers,
                    "complement": result.complement,
                    "objective": result.objective}

        arrays = self._stage("vawo", components, compute, "deploy.vawo_layer",
                             layer=prep.path)
        return VAWOResult(ctw=arrays["ctw"], registers=arrays["registers"],
                          complement=arrays["complement"],
                          objective=arrays["objective"])

    # ------------------------------------------------------------------
    # lookup helper
    # ------------------------------------------------------------------
    @staticmethod
    def _lookup(root: Module, path: str) -> Module:
        mod = root
        for part in path.split("."):
            mod = mod._modules[part]
        return mod

    # ------------------------------------------------------------------
    # programming / deployment
    # ------------------------------------------------------------------
    def _build_arrays(self) -> List[ArrayBackend]:
        """One array region per layer, built by the selected family.

        The factory receives the deployer's programmer (the lognormal
        device model, fault-wrapped when ``saf_rates`` is set) and the
        layer's matrix shape; a configured scenario stack wraps every
        region in a :class:`ScenarioArray` with its own persistent-state
        stream (one ``SeedSequence`` child per layer).
        """
        factory = get_array(self.array_name)
        arrays: List[ArrayBackend] = [
            factory(self.programmer, prep.plan.rows, prep.plan.cols)
            for prep in self.layers]
        if self.config.scenarios:
            seeds = spawn_seeds(self._scenario_seed, len(arrays))
            arrays = [ScenarioArray(inner, self.config.scenarios, seed)
                      for inner, seed in zip(arrays, seeds)]
        return arrays

    def array_key_components(self) -> Dict[str, Any]:
        """The array/scenario identity that shapes programmed state.

        The declared capability dict of the (representative) first
        layer's array — all layers share one family and stack — plus
        the full scenario parameters; folded into ``serve_program``
        content-addressed keys. Flat scalars and nested dicts only.
        """
        return {
            "array": self.array_name,
            "array_components": dict(self.arrays[0].key_components()),
            "scenarios": scenario_key_components(self.config.scenarios),
        }

    def _build_deployed(self, cells_per_layer: List[np.ndarray],
                        arrays: Optional[List[ArrayBackend]] = None,
                        ) -> Module:
        deployed = copy.deepcopy(self.model)
        for i, (prep, cells) in enumerate(zip(self.layers, cells_per_layer)):
            common = dict(
                cells=cells, plan=prep.plan,
                array=None if arrays is None else arrays[i],
                registers=prep.assignment.registers.astype(np.float64),
                complement=prep.assignment.complement,
                cell=self.config.cell, weight_bits=self.config.weight_bits,
                weight_scale=prep.scale, weight_zero_point=prep.zero_point,
                input_quantizer=prep.input_quantizer, bias=prep.bias,
                ntw=prep.ntw, grad_weights=prep.grads)
            if prep.is_conv:
                new = CrossbarConv2d(kernel_shape=prep.kernel_shape,
                                     stride=prep.stride,
                                     padding=prep.padding, **common)
            else:
                new = CrossbarLinear(**common)
            _replace_module(deployed, prep.path, new)
        _rebuild_sequentials(deployed)
        deployed.eval()
        return deployed

    def program(self, rng: RngLike = None,
                run_pwt_tuning: Optional[bool] = None) -> Module:
        """Simulate one programming cycle and return the deployed model.

        Each call redraws the CCV noise (and the DDV component, i.e.
        each call models a fresh chip unless ``ddv_fraction`` is 0 and
        it makes no difference). If the config enables PWT it runs here,
        after writing — pass ``run_pwt_tuning=False`` to skip it.
        """
        rng = make_rng(rng if rng is not None else derive_seed(self._rng))
        with span("deploy.program", layers=len(self.layers)):
            cells = [array.program(prep.assignment.ctw, rng)
                     for prep, array in zip(self.layers, self.arrays)]
            deployed = self._build_deployed(cells, self.arrays)
        obs_metrics.inc("deploy.programming_cycles")
        if self.config.bn_recalibrate:
            with span("deploy.bn_recalibrate"):
                recalibrate_batchnorm(deployed, self.train_data, rng=rng)
        do_pwt = self.config.use_pwt if run_pwt_tuning is None else run_pwt_tuning
        if do_pwt:
            with span("deploy.pwt"):
                run_pwt(deployed, self.train_data, self.config.pwt, rng)
        return deployed

    def evaluate(self, test_data: Dataset, n_trials: int = 5,
                 rng: RngLike = None, batch_size: int = 256,
                 jobs: Optional[int] = 1,
                 trial_timeout: Optional[float] = None) -> "TrialResult":
        """Run ``n_trials`` independent programming cycles and score each.

        The deployer's trial loop: every trial redraws the CCV noise
        via its own ``SeedSequence``-spawned stream, programs the
        crossbars, reruns PWT if configured, and evaluates on
        ``test_data``. With ``jobs != 1`` the trials shard across
        worker processes (:mod:`repro.parallel`) with bit-identical
        results; ``trial_timeout`` bounds one trial's wall-clock
        seconds in process mode. Returns a
        :class:`repro.eval.accuracy.TrialResult`.
        """
        from repro.eval.accuracy import evaluate_deployment

        return evaluate_deployment(self, test_data, n_trials=n_trials,
                                   rng=rng, batch_size=batch_size, jobs=jobs,
                                   trial_timeout=trial_timeout)

    def ideal_model(self) -> Module:
        """The noise-free quantized reference (the paper's "ideal" line).

        Weights equal the dequantized NTWs exactly: no variation, no
        ON/OFF-ratio leak, zero offsets.
        """
        cells = [slice_weights(prep.ntw, self.config.weight_bits,
                               self.config.cell.bits).astype(np.float64)
                 for prep in self.layers]
        saved = [(prep.assignment.registers, prep.assignment.complement)
                 for prep in self.layers]
        for prep in self.layers:
            prep_zero = plain_assignment(prep.ntw, prep.plan)
            prep.assignment = replace(prep.assignment,
                                      registers=prep_zero.registers,
                                      complement=prep_zero.complement)
        try:
            deployed = self._build_deployed(cells)
        finally:
            for prep, (regs, comp) in zip(self.layers, saved):
                prep.assignment = replace(prep.assignment,
                                          registers=regs, complement=comp)
        return deployed

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def total_registers(self) -> int:
        """Digital-offset register count across all layers (Eq. 9)."""
        return sum(prep.plan.n_registers for prep in self.layers)

    def layer_matrix_shapes(self) -> List[Tuple[int, int]]:
        """Per-layer crossbar matrix shape (rows, cols), in layer order."""
        return [(prep.plan.rows, prep.plan.cols) for prep in self.layers]

    def crossbar_count(self, crossbar_size: int = 128) -> int:
        """Physical 128x128 crossbars this deployment occupies.

        Uses the one-crossbar architecture's tiling (each weight takes
        ``cells_per_weight`` physical columns).
        """
        from repro.xbar.mapper import CrossbarMapper

        mapper = CrossbarMapper(size=crossbar_size,
                                cells_per_weight=self.device.cells_per_weight)
        return mapper.count_model(self.layer_matrix_shapes())


def recalibrate_batchnorm(model: Module, data: Dataset,
                          n_batches: int = 8, batch_size: int = 64,
                          rng: RngLike = None) -> Module:
    """Refresh BatchNorm running statistics on a deployed model, in place.

    Under weight variation the activation statistics shift, so the
    BatchNorm layers' stored running mean/var (measured on the clean
    network) are stale. This utility re-estimates them by running
    forward passes in training mode *without touching any parameter* —
    a purely digital, post-deployment calibration that composes with
    (and is ablated against) PWT. Returns the model for chaining.
    """
    from repro.nn.layers import BatchNorm2d

    bns = [m for _, m in model.named_modules() if isinstance(m, BatchNorm2d)]
    if not bns:
        return model
    rng = make_rng(rng)
    for bn in bns:
        bn.running_mean[...] = 0.0
        bn.running_var[...] = 1.0
    model.train()
    seen = 0
    # Cumulative-average momentum so every batch contributes equally.
    for images, _ in iterate_batches(data, batch_size, shuffle=True, rng=rng):
        seen += 1
        for bn in bns:
            bn.momentum = 1.0 / seen
        model(Tensor(images))
        if seen >= n_batches:
            break
    for bn in bns:
        bn.momentum = 0.1
    model.eval()
    return model
