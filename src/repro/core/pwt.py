"""Post-writing tuning of the digital offsets (paper Section III-D).

After programming, the crossbar real weights are fixed and known (each
device is read back once). PWT treats the network as a new model whose
only trainable parameters are the digital offsets ``b_g`` and runs
ordinary back-propagation over the training set: by Eq. 7/8,

``dL/db_g = dL/dz * sum(x_i in group g)``,

which is exactly what reverse-mode autodiff computes through the
``expand(b)`` op inside :mod:`repro.core.crossbar_layers`. At the end
the learned offsets are rounded onto the signed 8-bit register grid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.crossbar_layers import _CrossbarBase
from repro.data.loaders import Dataset, iterate_batches
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.contracts import check_shapes
from repro.utils.logging import get_logger
from repro.utils.rng import RngLike, make_rng

logger = get_logger(__name__)


@dataclass
class PWTConfig:
    """Hyper-parameters of the offset-only training run.

    ``analytic_init`` seeds every register with its first-order optimal
    value before back-propagation: the gradient-weighted group mean of
    the realised weight error (see :func:`analytic_offset_init`). This
    uses exactly the posteriori knowledge PWT is allowed (the measured
    CRWs) and makes Eq. 8's training a refinement rather than a cold
    start.
    """

    epochs: int = 3
    lr: float = 0.5
    lr_decay: float = 1.0           # multiplied into lr after every epoch
    batch_size: int = 64
    max_batches_per_epoch: Optional[int] = None
    offset_bits: int = 8
    round_offsets: bool = True
    analytic_init: bool = True

    def __post_init__(self):
        if self.epochs < 0:
            raise ValueError("epochs must be non-negative")
        if self.lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0 < self.lr_decay <= 1.0:
            raise ValueError("lr_decay must be in (0, 1]")


@dataclass
class PWTHistory:
    """Per-batch loss trace of a PWT run."""

    losses: List[float] = field(default_factory=list)

    @property
    def initial_loss(self) -> float:
        """Loss of the first recorded batch (NaN before any batch)."""
        return self.losses[0] if self.losses else float("nan")

    @property
    def final_loss(self) -> float:
        """Loss of the most recent batch (NaN before any batch)."""
        return self.losses[-1] if self.losses else float("nan")


def offset_parameters(model: Module) -> List[Parameter]:
    """The digital-offset register parameters of a deployed model."""
    params = []
    for _, mod in model.named_modules():
        if isinstance(mod, _CrossbarBase):
            params.append(mod.offsets)
    return params


def crossbar_modules(model: Module) -> List[_CrossbarBase]:
    """All crossbar layers of a deployed model, in traversal order."""
    return [m for _, m in model.named_modules() if isinstance(m, _CrossbarBase)]


@check_shapes("_->(k,c)")
def analytic_offset_init(mod: _CrossbarBase,
                         offset_bits: int = 8) -> np.ndarray:
    """First-order optimal registers from the measured CRWs.

    Returns the installed register file, shape (n_groups, cols).

    For each offset group, minimising the gradient-weighted squared
    weight error ``sum_i g_i^2 (W_i(b) - w_i*)^2`` over the register
    value ``b`` has the closed form

    ``b* = sum_i g_i^2 (s (w_i* - c) - V_i) / sum_i g_i^2``

    where ``s = +/-1`` and ``c`` encode the group's complement state and
    ``V_i`` are the read-back crossbar real weights. This is pure
    posteriori compensation — exactly the knowledge PWT exploits — and
    serves as the starting point Eq. 8's back-propagation refines.

    Requires the module to carry its ``ntw`` metadata; ``grad_weights``
    is optional (uniform weights otherwise). Returns the registers it
    installed.
    """
    if mod.ntw is None:
        raise ValueError("analytic init needs the layer's NTW metadata")
    plan = mod.plan
    sign = mod._sign                     # (rows, cols) of +/-1
    const = mod._const                   # (rows, cols), qmax on complements
    desired = sign * (mod.ntw - const) - mod.crw
    if mod.grad_weights is not None:
        weights = mod.grad_weights.astype(np.float64) ** 2
        rms = np.sqrt(weights.mean())
        floor = 1e-4 * rms if rms > 0 else 1.0
        weights = np.maximum(weights, floor)
    else:
        weights = np.ones_like(desired)
    num = plan.group_reduce_weights(desired * weights, op="sum")
    den = plan.group_reduce_weights(weights, op="sum")
    registers = num / np.maximum(den, 1e-30)
    half = 1 << (offset_bits - 1)
    registers = np.clip(registers, -half, half - 1)
    mod.offsets.data[...] = registers
    return registers


def run_pwt(model: Module, train_data: Dataset,
            config: Optional[PWTConfig] = None,
            rng: RngLike = None) -> PWTHistory:
    """Train the offsets of ``model`` in place; returns the loss trace.

    The model runs in eval mode throughout (BatchNorm keeps its running
    statistics; the crossbar weights are frozen) — only the offset
    registers move.
    """
    config = config or PWTConfig()
    rng = make_rng(rng)
    params = offset_parameters(model)
    if not params:
        raise ValueError("model has no crossbar layers / offset registers")
    model.eval()
    if config.analytic_init:
        for mod in crossbar_modules(model):
            if mod.ntw is not None:
                analytic_offset_init(mod, config.offset_bits)
    optimizer = Adam(params, lr=config.lr)
    history = PWTHistory()
    for epoch in range(config.epochs):
        n_epoch_batches = 0
        with span("pwt.epoch", epoch=epoch):
            for batch_idx, (images, labels) in enumerate(
                    iterate_batches(train_data, config.batch_size, rng=rng)):
                if (config.max_batches_per_epoch is not None
                        and batch_idx >= config.max_batches_per_epoch):
                    break
                optimizer.zero_grad()
                loss = F.cross_entropy(model(Tensor(images)), labels)
                loss.backward()
                optimizer.step()
                history.losses.append(loss.item())
                n_epoch_batches += 1
        optimizer.lr *= config.lr_decay
        # The per-epoch offset-loss curve (PWT convergence) goes into
        # the metrics registry so the run manifest carries it.
        obs_metrics.observe("pwt.epoch_loss", history.final_loss)
        obs_metrics.inc("pwt.batches", n_epoch_batches)
        logger.info("PWT epoch %d: loss %.4f", epoch, history.final_loss)
    obs_metrics.inc("pwt.runs")
    if config.round_offsets:
        for mod in crossbar_modules(model):
            mod.quantize_offsets(config.offset_bits)
    return history
