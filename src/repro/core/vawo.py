"""Variation-aware weight optimization (paper Section III-B and III-C).

Given the network target weights (NTWs) ``w*`` of an offset group, VAWO
chooses the crossbar target weights (CTWs) ``v`` and the group's digital
offset ``b`` to minimise the first-order expected squared loss increase

``sum_i (dL/dw_i)^2 * Var[R(v_i)]``                            (Eq. 5)

subject to ``E[R(v_i)] + b = w_i*``                            (Eq. 6).

The solver follows the paper exactly: iterate over every 8-bit offset
candidate, invert the E[R(v)] LUT to satisfy Eq. 6, score with the
Var[R(v)] LUT, keep the best. Two refinements documented in DESIGN.md:

* because ``v`` is discrete (and the offset range is finite), Eq. 6 can
  only hold to the nearest representable mean; the residual bias enters
  the objective per weight as ``g_i^2 * bias_i^2`` — i.e. the objective
  scores the full expected squared weight deviation
  ``E[(W_i - w_i*)^2] = Var[R(v_i)] + bias_i^2`` weighted by loss
  sensitivity, so offsets that would violate Eq. 6 badly for any group
  member are rejected;
* weights whose mean gradient is ~0 would make the objective flat, so
  gradient magnitudes are floored at a small fraction of the layer RMS
  (``grad_floor_frac``), keeping the variance term meaningful everywhere.

The weight-complement enhancement (Section III-C, "VAWO*") solves the
same problem a second time for the complemented targets
``(2^n - 1) - w*`` and keeps whichever problem has the lower optimum,
per group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.offsets import OffsetPlan
from repro.device.lut import DeviceLUT
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.utils.contracts import check_shapes


@dataclass
class VAWOResult:
    """CTWs, registers and complement decisions for one weight matrix."""

    ctw: np.ndarray          # (rows, cols) integer crossbar target weights
    registers: np.ndarray    # (n_groups, cols) integer offsets
    complement: np.ndarray   # (n_groups, cols) bool
    objective: np.ndarray    # (n_groups, cols) achieved objective values


@dataclass(frozen=True)
class _TargetTables:
    """Per-integer-target lookup tables over t = w* - b.

    ``t`` spans every value the Eq. 6 target ``w* - b`` can take, so the
    per-offset scoring loop becomes pure table gathers.
    """

    t_min: int
    v: np.ndarray       # CTW whose E[R(v)] is nearest t
    var: np.ndarray     # Var[R(v)] at that CTW
    bias: np.ndarray    # E[R(v)] - t (the residual Eq. 6 violation)

    def index(self, targets: np.ndarray) -> np.ndarray:
        return np.asarray(targets) - self.t_min


def _build_target_tables(lut: DeviceLUT, qmax: int,
                         offsets: np.ndarray) -> _TargetTables:
    t_min = int(0 - offsets.max())
    t_max = int(qmax - offsets.min())
    targets = np.arange(t_min, t_max + 1)
    v = lut.invert(targets)
    return _TargetTables(t_min=t_min, v=v, var=lut.var[v],
                         bias=lut.mean[v] - targets)


def offset_candidates(offset_bits: int = 8) -> np.ndarray:
    """All representable signed register values (two's complement).

    Returns shape (2^offset_bits,), from -2^(bits-1) to 2^(bits-1) - 1.
    """
    if offset_bits < 1:
        raise ValueError("offset_bits must be >= 1")
    half = 1 << (offset_bits - 1)
    return np.arange(-half, half)


def _effective_grads(grads: np.ndarray, floor_frac: float) -> np.ndarray:
    """|mean gradient| with a relative floor (see module docstring)."""
    g = np.abs(np.asarray(grads, dtype=np.float64))
    rms = np.sqrt(np.mean(g ** 2))
    if rms == 0.0:
        return np.ones_like(g)
    return np.maximum(g, floor_frac * rms)


def _score_offsets(w: np.ndarray, g2: np.ndarray, active: np.ndarray,
                   tables: _TargetTables, candidates: np.ndarray,
                   chunk: int,
                   bias_tolerance: float) -> Tuple[np.ndarray, np.ndarray]:
    """Best offset per group for padded (k, m, cols) weights/gradients.

    Implements the paper's formulation: Eq. 6 is a *hard* constraint —
    an offset is feasible only if every group member's target
    ``w_i - b`` can be met by some CTW to within ``bias_tolerance``
    (which absorbs LUT discreteness). Among feasible offsets the
    objective is Eq. 5, ``sum_i g_i^2 Var[R(v_i)]``, plus the (tiny)
    residual-bias MSE as a tie-breaker. Groups with no feasible offset
    at all fall back to the minimum of the full expected squared
    deviation ``sum_i g_i^2 (Var + bias^2)``.

    ``active`` masks padded rows out of the feasibility check. Returns
    (best_b, best_objective), each (k, cols).
    """
    k, m, cols = w.shape
    best_obj = np.full((k, cols), np.inf)
    best_b = np.zeros((k, cols), dtype=np.int64)
    fallback_obj = np.full((k, cols), np.inf)
    fallback_b = np.zeros((k, cols), dtype=np.int64)
    base_idx = tables.index(w)                       # (k, m, cols)
    act = active[None]                               # (1, k, m, cols)
    for lo in range(0, len(candidates), chunk):
        bs = candidates[lo:lo + chunk]               # (nb,)
        idx = base_idx[None] - bs[:, None, None, None]
        var = tables.var[idx]
        bias2 = tables.bias[idx] ** 2
        infeasible = ((bias2 > bias_tolerance ** 2) & act).any(axis=2)
        obj = (g2[None] * (var + bias2)).sum(axis=2)  # (nb, k, cols)

        arg_f = np.where(infeasible, np.inf, obj).argmin(axis=0)
        val_f = np.take_along_axis(
            np.where(infeasible, np.inf, obj), arg_f[None], axis=0)[0]
        better = val_f < best_obj
        best_obj = np.where(better, val_f, best_obj)
        best_b = np.where(better, bs[arg_f], best_b)

        arg_m = obj.argmin(axis=0)
        val_m = np.take_along_axis(obj, arg_m[None], axis=0)[0]
        better_m = val_m < fallback_obj
        fallback_obj = np.where(better_m, val_m, fallback_obj)
        fallback_b = np.where(better_m, bs[arg_m], fallback_b)

    no_feasible = ~np.isfinite(best_obj)
    best_obj = np.where(no_feasible, fallback_obj, best_obj)
    best_b = np.where(no_feasible, fallback_b, best_b)
    return best_b, best_obj


@check_shapes("(r,c),(r,c)")
def run_vawo(ntw: np.ndarray, grads: np.ndarray, lut: DeviceLUT,
             plan: OffsetPlan, weight_bits: int = 8, offset_bits: int = 8,
             use_complement: bool = False, grad_floor_frac: float = 0.1,
             bias_tolerance: float = 2.0,
             offset_chunk: int = 16, col_chunk: int = 128) -> VAWOResult:
    """Solve VAWO (optionally VAWO*) for one weight matrix.

    Parameters
    ----------
    ntw:
        Network target weights, integer (rows, cols) in [0, 2^n - 1]
        (already ISAAC-shifted).
    grads:
        Mean loss gradient per weight, same shape (any consistent scale;
        only relative magnitudes within a group matter).
    lut:
        Device characterisation (E[R(v)], Var[R(v)]).
    plan:
        Offset sharing layout.
    use_complement:
        Enable the Section III-C weight-complement enhancement (VAWO*).
    bias_tolerance:
        How far (in integer weight units) E[R(v)] + b may miss w* before
        an offset candidate is deemed infeasible (Eq. 6 violation).
    offset_chunk / col_chunk:
        Vectorisation block sizes (memory/speed trade-off only).
    """
    ntw = np.asarray(ntw)
    grads = np.asarray(grads, dtype=np.float64)
    if ntw.shape != (plan.rows, plan.cols) or grads.shape != ntw.shape:
        raise ValueError("ntw/grads shape must match the offset plan")
    qmax = (1 << weight_bits) - 1
    if ntw.min() < 0 or ntw.max() > qmax:
        raise ValueError(f"ntw out of [0, {qmax}]")
    if len(lut) != qmax + 1:
        raise ValueError("LUT size inconsistent with weight_bits")

    with span("vawo.search", rows=plan.rows, cols=plan.cols,
              granularity=plan.granularity, complement=use_complement):
        result = _run_vawo_impl(ntw, grads, lut, plan, qmax, offset_bits,
                                use_complement, grad_floor_frac,
                                bias_tolerance, offset_chunk, col_chunk)
    # Counters feed the run manifest: per-group offset search volume and
    # how often the Section III-C complement formulation wins.
    obs_metrics.inc("vawo.calls")
    obs_metrics.inc("vawo.groups", result.registers.size)
    obs_metrics.inc("vawo.offset_candidates_scored",
                    result.registers.size * (1 << offset_bits)
                    * (2 if use_complement else 1))
    if use_complement:
        obs_metrics.inc("vawo.complement_wins", int(result.complement.sum()))
    return result


def _run_vawo_impl(ntw: np.ndarray, grads: np.ndarray, lut: DeviceLUT,
                   plan: OffsetPlan, qmax: int, offset_bits: int,
                   use_complement: bool, grad_floor_frac: float,
                   bias_tolerance: float, offset_chunk: int,
                   col_chunk: int) -> VAWOResult:
    candidates = offset_candidates(offset_bits)
    tables = _build_target_tables(lut, qmax, candidates)
    # Floored gradient magnitudes keep the objective informative where
    # the mean gradient vanishes.
    g_mag = _effective_grads(grads, grad_floor_frac)

    k, m = plan.n_groups, plan.granularity
    registers = np.zeros((k, plan.cols), dtype=np.int64)
    complement = np.zeros((k, plan.cols), dtype=bool)
    objective = np.full((k, plan.cols), np.inf)
    ctw = np.zeros((plan.rows, plan.cols), dtype=np.int64)

    # Pad the row axis to whole groups; padded grads are 0 so padded
    # rows never influence the objective.
    w_pad = plan.pad_rows(ntw.astype(np.int64))
    gmag_pad = plan.pad_rows(g_mag, fill=0.0)
    active_pad = plan.pad_rows(np.ones_like(ntw, dtype=np.float64),
                               fill=0.0).astype(bool)
    rows_pad = k * m

    for c0 in range(0, plan.cols, col_chunk):
        c1 = min(c0 + col_chunk, plan.cols)
        w_blk = w_pad[:, c0:c1].reshape(k, m, c1 - c0)
        g2_blk = gmag_pad[:, c0:c1].reshape(k, m, c1 - c0) ** 2
        act_blk = active_pad[:, c0:c1].reshape(k, m, c1 - c0)

        best_b, best_obj = _score_offsets(w_blk, g2_blk, act_blk, tables,
                                          candidates, offset_chunk,
                                          bias_tolerance)
        comp_blk = np.zeros_like(best_b, dtype=bool)
        if use_complement:
            w_comp = qmax - w_blk
            b_c, obj_c = _score_offsets(w_comp, g2_blk, act_blk, tables,
                                        candidates, offset_chunk,
                                        bias_tolerance)
            use_c = obj_c < best_obj
            best_obj = np.where(use_c, obj_c, best_obj)
            best_b = np.where(use_c, b_c, best_b)
            comp_blk = use_c

        registers[:, c0:c1] = best_b
        complement[:, c0:c1] = comp_blk
        objective[:, c0:c1] = best_obj

        # Recover the CTWs for the winning offsets.
        eff_w = np.where(comp_blk[:, None, :], qmax - w_blk, w_blk)
        t_idx = tables.index(eff_w - best_b[:, None, :])
        v_blk = tables.v[t_idx].reshape(rows_pad, c1 - c0)
        ctw[:, c0:c1] = v_blk[:plan.rows]

    return VAWOResult(ctw=ctw, registers=registers, complement=complement,
                      objective=objective)


@check_shapes("(r,c)")
def plain_assignment(ntw: np.ndarray, plan: OffsetPlan) -> VAWOResult:
    """The paper's plain scheme: CTW = NTW, zero offsets, no complement.

    ``ntw`` has shape (rows, cols) matching ``plan``; the result carries
    (rows, cols) CTWs and (n_groups, cols) registers/complement masks.
    """
    ntw = np.asarray(ntw)
    if ntw.shape != (plan.rows, plan.cols):
        raise ValueError("ntw shape must match the offset plan")
    return VAWOResult(
        ctw=ntw.astype(np.int64).copy(),
        registers=np.zeros((plan.n_groups, plan.cols), dtype=np.int64),
        complement=np.zeros((plan.n_groups, plan.cols), dtype=bool),
        objective=np.full((plan.n_groups, plan.cols), np.nan),
    )
