"""Digital-offset bookkeeping: sharing granularity and group layout.

A weight matrix mapped to a crossbar has shape (rows, cols): rows are
wordlines (inputs), cols are weight columns (outputs). One digital
offset register is shared by ``m`` consecutive weights of a column —
``m`` is the paper's *sharing granularity*, a multiple of the number of
wordlines activated per cycle (16/64/128 in the evaluation).

:class:`OffsetPlan` owns the row → group mapping and the expansion /
reduction operators the rest of the library needs:

* ``expand(b)`` turns per-group registers (n_groups, cols) into a
  per-weight offset matrix (rows, cols);
* ``group_sum(x)`` computes the per-group input sums ``sum(x_i)`` that
  the hardware's adder trees produce (Eq. 1 / Eq. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.contracts import check_shapes


@dataclass(frozen=True)
class OffsetPlan:
    """Row grouping for a (rows, cols) weight matrix at granularity m."""

    rows: int
    cols: int
    granularity: int

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("matrix dimensions must be positive")
        if self.granularity < 1:
            raise ValueError(f"granularity must be >= 1, got {self.granularity}")

    @property
    def n_groups(self) -> int:
        """Number of offset groups per column (k = ceil(rows / m))."""
        return -(-self.rows // self.granularity)

    @property
    def n_registers(self) -> int:
        """Total registers for this matrix (Eq. 9 with S*l = rows*cols)."""
        return self.n_groups * self.cols

    @property
    def group_index(self) -> np.ndarray:
        """Row -> group id, shape (rows,)."""
        return np.arange(self.rows) // self.granularity

    @property
    def group_sizes(self) -> np.ndarray:
        """Weights per group, shape (n_groups,) — the last may be partial."""
        return np.bincount(self.group_index, minlength=self.n_groups)

    # ------------------------------------------------------------------
    # operators
    # ------------------------------------------------------------------
    def zeros(self) -> np.ndarray:
        """A zero register file of shape (n_groups, cols)."""
        return np.zeros((self.n_groups, self.cols))

    @check_shapes("(k,c)->(r,c)")
    def expand(self, registers: np.ndarray) -> np.ndarray:
        """Per-group values (n_groups, cols) -> per-weight (rows, cols)."""
        registers = np.asarray(registers)
        if registers.shape != (self.n_groups, self.cols):
            raise ValueError(
                f"registers must be {(self.n_groups, self.cols)}, "
                f"got {registers.shape}")
        return registers[self.group_index]

    def group_sum(self, per_row: np.ndarray, axis: int = -1) -> np.ndarray:
        """Sum per-row values within each group along ``axis``.

        For a batch of inputs x with shape (..., rows) this returns
        (..., n_groups): the input sums each register is multiplied by.
        """
        per_row = np.asarray(per_row)
        per_row = np.moveaxis(per_row, axis, -1)
        if per_row.shape[-1] != self.rows:
            raise ValueError(
                f"expected {self.rows} entries on the reduction axis, "
                f"got {per_row.shape[-1]}")
        pad = self.n_groups * self.granularity - self.rows
        if pad:
            per_row = np.concatenate(
                [per_row, np.zeros(per_row.shape[:-1] + (pad,))], axis=-1)
        grouped = per_row.reshape(per_row.shape[:-1] + (self.n_groups,
                                                        self.granularity))
        out = grouped.sum(axis=-1)
        return np.moveaxis(out, -1, axis)

    @check_shapes("(r,c)->(k,c)")
    def group_reduce_weights(self, weights: np.ndarray,
                             op: str = "mean") -> np.ndarray:
        """Reduce a (rows, cols) weight matrix to (n_groups, cols).

        ``op`` is ``"mean"`` or ``"sum"``; partial final groups reduce
        over their actual size.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.rows, self.cols):
            raise ValueError(
                f"weights must be {(self.rows, self.cols)}, got {weights.shape}")
        pad = self.n_groups * self.granularity - self.rows
        if pad:
            weights = np.concatenate(
                [weights, np.zeros((pad, self.cols))], axis=0)
        grouped = weights.reshape(self.n_groups, self.granularity, self.cols)
        if op == "sum":
            return grouped.sum(axis=1)
        if op == "mean":
            return grouped.sum(axis=1) / self.group_sizes[:, None]
        raise ValueError(f"unknown op {op!r}")

    @check_shapes("(r,c)")
    def pad_rows(self, matrix: np.ndarray, fill: float = 0.0) -> np.ndarray:
        """Pad (rows, cols) with ``fill`` rows up to a whole number of groups.

        Returns shape (n_groups * granularity, cols).
        """
        pad = self.n_groups * self.granularity - self.rows
        if pad == 0:
            return np.asarray(matrix)
        return np.concatenate(
            [matrix, np.full((pad, self.cols), fill, dtype=np.asarray(matrix).dtype)],
            axis=0)
