"""Deployment snapshots: persist and restore a programmed chip state.

A deployed model is defined by its per-layer programmed cell
conductances, offset registers, complement flags and quantization
parameters — the state of a *physical chip after writing and tuning*.
Snapshots make that state portable: evaluate on one machine, analyse on
another, or archive the exact chip a result was measured on.

The snapshot stores arrays only (via :mod:`repro.utils.serialization`);
restoring requires the same float model and deployer configuration that
produced it, mirroring how a real chip needs its host-side metadata.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

import numpy as np

from repro.core.pwt import crossbar_modules
from repro.nn.module import Module
from repro.utils.serialization import (load_arrays, normalize_archive_path,
                                       save_arrays)

if TYPE_CHECKING:  # import cycle: pipeline pulls in the whole deploy stack
    from repro.core.pipeline import Deployer


def save_deployment(model: Module, path: str) -> None:
    """Persist the crossbar state of a deployed model.

    Stores, for every crossbar layer in traversal order: the programmed
    cell conductances, the offset registers, and the complement mask.
    (Quantization parameters and network structure come from the
    deployer that rebuilds the model — see :func:`load_deployment`.)
    """
    mods = crossbar_modules(model)
    if not mods:
        raise ValueError("model has no crossbar layers to snapshot")
    arrays: Dict[str, np.ndarray] = {}
    for i, mod in enumerate(mods):
        arrays[f"layer{i}_cells"] = mod.cells
        arrays[f"layer{i}_offsets"] = mod.offsets.data
        arrays[f"layer{i}_complement"] = mod.complement_mask
    save_arrays(path, arrays, metadata={"n_layers": len(mods)})


def load_deployment(deployer: "Deployer", path: str) -> Module:
    """Rebuild a deployed model from a snapshot.

    ``deployer`` must be configured identically to the one that
    produced the snapshot (same model, quantization, granularity and
    cell technology); the stored cells/offsets/complement replace a
    fresh programming cycle.
    """
    data = load_arrays(path)
    n_layers = len([k for k in data if k.endswith("_cells")])
    if n_layers != len(deployer.layers):
        raise ValueError(
            f"snapshot has {n_layers} layers, deployer expects "
            f"{len(deployer.layers)}")
    cells = []
    for i, prep in enumerate(deployer.layers):
        layer_cells = data[f"layer{i}_cells"]
        expected = (prep.plan.rows, prep.plan.cols,
                    deployer.device.cells_per_weight)
        if layer_cells.shape != expected:
            raise ValueError(
                f"layer {i}: snapshot cells {layer_cells.shape} do not "
                f"match the deployer's layout {expected}")
        cells.append(layer_cells)
    deployed = deployer._build_deployed(cells)
    for i, mod in enumerate(crossbar_modules(deployed)):
        mod.offsets.data[...] = data[f"layer{i}_offsets"]
        new_mask = data[f"layer{i}_complement"].astype(bool)
        mod.complement_mask = new_mask
        comp_rows = mod.plan.expand(new_mask.astype(np.float64))
        mod._sign = 1.0 - 2.0 * comp_rows
        mod._const = comp_rows * mod.qmax
    return deployed


def snapshot_exists(path: str) -> bool:
    """Whether a snapshot file is present at ``path``.

    Uses the same suffix normalisation as the serialization helpers, so
    this check and a later :func:`load_deployment` see the same file.
    """
    return normalize_archive_path(path).exists()
