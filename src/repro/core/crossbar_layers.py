"""Network layers that execute on the simulated RRAM crossbar.

:class:`CrossbarLinear` / :class:`CrossbarConv2d` replace ``Linear`` /
``Conv2d`` in a deployed model. Each stores:

* the programmed noisy cell conductances (from
  :meth:`repro.device.DeviceModel.program_cells`) — the crossbar real
  weights after one programming cycle;
* a trainable register file of digital offsets (the PWT parameters);
* the per-group complement mask and the quantization parameters.

The forward pass uses the *fast float path*: the effective weight
``W = scale * (q_eff - zero_point)`` with
``q_eff = V + expand(b)`` (or ``qmax - (V + expand(b))`` for
complemented groups), which is mathematically identical to the
bit-accurate engine under an ideal ADC (asserted in tests). Crucially
the expansion ``b -> expand(b)`` is an autograd op, so back-propagation
delivers exactly Eq. 8's ``dL/db_g = dL/dz * sum(x in group g)`` and an
optimizer over the offset parameters implements PWT.

Input activations are fake-quantized with a straight-through estimator
so offset gradients can flow through deeper layers.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.array.base import ArrayBackend
from repro.core.offsets import OffsetPlan
from repro.device.cell import CellType
from repro.nn import functional as F
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor
from repro.quant.bitslice import cell_significances
from repro.quant.quantizer import InputQuantizer
from repro.xbar.adc import ADC
from repro.xbar.engine import CrossbarEngine


def ste_quantize(x: Tensor, quantizer: InputQuantizer) -> Tensor:
    """Fake-quantize activations with a straight-through gradient."""
    qdata = quantizer.apply(x.data)

    def backward(g: np.ndarray) -> None:
        if x.requires_grad:
            x._accumulate(g)

    return Tensor._make(qdata, (x,), backward)


class _CrossbarBase(Module):
    """Shared state and effective-weight construction for crossbar layers."""

    def __init__(self, cells: Optional[np.ndarray], plan: OffsetPlan,
                 registers: np.ndarray, complement: np.ndarray,
                 cell: CellType, weight_bits: int, weight_scale: float,
                 weight_zero_point: int,
                 input_quantizer: Optional[InputQuantizer] = None,
                 bias: Optional[np.ndarray] = None,
                 ntw: Optional[np.ndarray] = None,
                 grad_weights: Optional[np.ndarray] = None,
                 array: Optional[ArrayBackend] = None):
        super().__init__()
        if cells is None:
            if array is None:
                raise ValueError("provide programmed cells or an array")
            # HAL construction path: snapshot the programmed state from
            # the array's read-back (rows, cols, n_cells).
            cells = array.read_back()
        self.array = array
        rows, cols, n_cells = cells.shape
        if (rows, cols) != (plan.rows, plan.cols):
            raise ValueError("cells shape does not match the offset plan")
        expected = (plan.n_groups, plan.cols)
        if registers.shape != expected or complement.shape != expected:
            raise ValueError(f"registers/complement must be {expected}")
        self.plan = plan
        self.cell = cell
        self.weight_bits = weight_bits
        self.weight_scale = float(weight_scale)
        self.weight_zero_point = int(weight_zero_point)
        self.input_quantizer = input_quantizer
        self.cells = np.asarray(cells, dtype=np.float64)
        self._significance = cell_significances(weight_bits, cell.bits)
        # Crossbar real weights, fixed after programming.
        self.crw = self.cells @ self._significance
        self.offsets = Parameter(np.asarray(registers, dtype=np.float64))
        self.complement_mask = np.asarray(complement, dtype=bool)
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        # Optional deployment metadata used by PWT's analytic init.
        self.ntw = None if ntw is None else np.asarray(ntw, dtype=np.float64)
        self.grad_weights = (None if grad_weights is None
                             else np.asarray(grad_weights, dtype=np.float64))
        # Precomputed complement algebra: q_eff = sign*(V + b) + const.
        comp_rows = plan.expand(self.complement_mask.astype(np.float64))
        self._sign = 1.0 - 2.0 * comp_rows
        self._const = comp_rows * self.qmax
        # Row -> group map, cached: plan.group_index builds an arange on
        # every access and the forward pass indexes with it each call.
        self._group_index = plan.group_index

    @property
    def qmax(self) -> int:
        return (1 << self.weight_bits) - 1

    @property
    def register_count(self) -> int:
        return self.plan.n_registers

    # ------------------------------------------------------------------
    # effective weights
    # ------------------------------------------------------------------
    def effective_weight_matrix(self) -> Tensor:
        """The float (rows, cols) weight matrix, differentiable in b."""
        v = Tensor(self.crw)
        b_exp = self.offsets[self._group_index]              # (rows, cols)
        q_eff = (v + b_exp) * self._sign + self._const
        return (q_eff - float(self.weight_zero_point)) * self.weight_scale

    def effective_weight_array(self) -> np.ndarray:
        """Same as :meth:`effective_weight_matrix`, as a plain array."""
        return self.effective_weight_matrix().data

    def quantize_offsets(self, offset_bits: int = 8) -> None:
        """Round offsets onto the signed register grid (post-PWT)."""
        half = 1 << (offset_bits - 1)
        self.offsets.data[...] = np.clip(np.round(self.offsets.data),
                                         -half, half - 1)

    def make_engine(self, adc: Optional[ADC] = None,
                    backend: Optional[str] = None) -> CrossbarEngine:
        """A bit-accurate engine view of this layer's current state.

        ``backend`` selects the compute backend the engine dispatches
        to (``None`` follows the process default).
        """
        input_scale = (self.input_quantizer.scale
                       if self.input_quantizer is not None else 1.0)
        input_bits = (self.input_quantizer.n_bits
                      if self.input_quantizer is not None else 8)
        return CrossbarEngine(
            cells=self.cells, plan=self.plan,
            registers=self.offsets.data.copy(),
            complement=self.complement_mask, cell=self.cell,
            weight_bits=self.weight_bits, input_bits=input_bits,
            weight_scale=self.weight_scale,
            weight_zero_point=self.weight_zero_point,
            input_scale=input_scale, adc=adc, backend=backend)

    def _quantize_input(self, x: Tensor) -> Tensor:
        if self.input_quantizer is None:
            return x
        return ste_quantize(x, self.input_quantizer)


class CrossbarLinear(_CrossbarBase):
    """A dense layer running on the crossbar: y = x @ W_eff + bias.

    The weight matrix layout is (in_features, out_features): inputs on
    wordlines, outputs on weight columns.
    """

    def forward(self, x: Tensor) -> Tensor:
        """Compute ``x @ W_eff + bias``: (N, in) -> (N, out)."""
        x = self._quantize_input(x)
        w = self.effective_weight_matrix()                  # (in, out)
        y = x @ w
        if self.bias is not None:
            y = y + self.bias
        return y


class CrossbarConv2d(_CrossbarBase):
    """A convolution running on the crossbar via its unrolled matrix.

    The stored matrix has rows = C_in * kh * kw (wordlines) and cols =
    C_out; the forward pass reassembles the conv kernel from the
    effective matrix so gradients flow to the offsets.
    """

    def __init__(self, cells: Optional[np.ndarray], plan: OffsetPlan,
                 registers: np.ndarray, complement: np.ndarray,
                 cell: CellType, weight_bits: int, weight_scale: float,
                 weight_zero_point: int,
                 kernel_shape: Sequence[int],
                 stride: int = 1, padding: int = 0,
                 input_quantizer: Optional[InputQuantizer] = None,
                 bias: Optional[np.ndarray] = None,
                 ntw: Optional[np.ndarray] = None,
                 grad_weights: Optional[np.ndarray] = None,
                 array: Optional[ArrayBackend] = None):
        """Build the layer from its (rows, cols, n_cells) programmed state.

        ``kernel_shape`` is the original conv kernel (F, C, kh, kw);
        the stored matrix layout is rows = C*kh*kw, cols = F.
        ``cells=None`` reads the state back from ``array`` instead.
        """
        super().__init__(cells, plan, registers, complement, cell,
                         weight_bits, weight_scale, weight_zero_point,
                         input_quantizer, bias, ntw, grad_weights, array)
        f, c, kh, kw = kernel_shape
        if plan.rows != c * kh * kw or plan.cols != f:
            raise ValueError("kernel shape inconsistent with matrix layout")
        self.kernel_shape = tuple(kernel_shape)
        self.stride = stride
        self.padding = padding

    def forward(self, x: Tensor) -> Tensor:
        """Convolve (N, C, H, W) inputs with the effective kernel."""
        x = self._quantize_input(x)
        f, c, kh, kw = self.kernel_shape
        w = self.effective_weight_matrix()                  # (c*kh*kw, f)
        kernel = w.transpose(1, 0).reshape(f, c, kh, kw)
        bias_t = None if self.bias is None else Tensor(self.bias)
        return F.conv2d(x, kernel, bias_t, stride=self.stride,
                        padding=self.padding)
