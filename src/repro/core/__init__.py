"""The paper's contribution: digital offsets, VAWO, VAWO*, and PWT."""

from repro.core.crossbar_layers import (CrossbarConv2d, CrossbarLinear,
                                        ste_quantize)
from repro.core.offsets import OffsetPlan
from repro.core.pipeline import (DeployConfig, Deployer, mappable_layers,
                                 recalibrate_batchnorm)
from repro.core.snapshot import (load_deployment, save_deployment,
                                 snapshot_exists)
from repro.core.pwt import (PWTConfig, PWTHistory, analytic_offset_init,
                            crossbar_modules, offset_parameters, run_pwt)
from repro.core.vawo import (VAWOResult, offset_candidates, plain_assignment,
                             run_vawo)

__all__ = [
    "OffsetPlan", "VAWOResult", "run_vawo", "plain_assignment",
    "offset_candidates", "PWTConfig", "PWTHistory", "run_pwt",
    "offset_parameters", "crossbar_modules", "analytic_offset_init",
    "CrossbarLinear", "CrossbarConv2d", "ste_quantize",
    "DeployConfig", "Deployer", "mappable_layers", "recalibrate_batchnorm",
    "save_deployment", "load_deployment", "snapshot_exists",
]
