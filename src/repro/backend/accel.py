"""The accelerated kernel set — bit-plane-packed BLAS reformulation.

Same arithmetic as :mod:`repro.backend.vectorized` (whose window
kernels it inherits unchanged), with the bit-serial crossbar VMM
restructured into a small number of large GEMMs:

* with an **ideal ADC** every term of the integer-domain output is
  linear in the quantized inputs, so the analog contraction, the Eq. 7
  offset add, the complement post-processing and the ISAAC zero-point
  correction all fold into *one* packed matrix
  (:attr:`EngineOperands.packed_ideal_weights`) — the whole forward is
  a single ``xq @ P`` BLAS call;
* with a **finite ADC** the conversion is nonlinear per
  (input bit, offset group) current, so the bit planes cannot
  telescope — instead all ``input_bits`` planes are stacked into one
  batched matmul ``(k, bits*N, m) @ (k, m, cols*cells)`` against the
  cached :attr:`EngineOperands.cells_packed`, converted through the ADC
  once, then collapsed by two cheap contractions (bit weights, cell
  significances). Batches are chunked so the stacked intermediate stays
  within a fixed byte budget.

On top of the always-available pure-NumPy path ("blas" tier) the
backend can route the packed kernels through an optional offload
library when one is importable — selected by the ``REPRO_ACCEL``
environment variable:

* ``auto`` (default) — numba if importable, else torch, else the BLAS
  path; the fallback is silent.
* ``numba`` / ``torch`` — request a tier explicitly; if the library is
  missing the backend falls back to BLAS with a *single* warning.
* ``blas`` — force the pure-NumPy path.

Neither library is ever a hard dependency: all imports are lazy and
failure-gated. Numerical interchangeability with ``reference`` is
asserted by the shared equivalence suite in ``tests/backend/`` for
every tier importable in the environment.
"""

from __future__ import annotations

import importlib
import os
import threading
from typing import Callable, Dict, Optional

import numpy as np

from repro.backend.base import EngineOperands
from repro.backend.vectorized import VectorizedBackend
from repro.utils.logging import get_logger

logger = get_logger(__name__)

#: Environment variable selecting the offload tier.
ENV_VAR = "REPRO_ACCEL"

#: Recognised ``REPRO_ACCEL`` values.
OFFLOAD_TIERS = ("auto", "blas", "numba", "torch")

#: Byte budget for the stacked finite-ADC intermediates; batches are
#: chunked so ``k * bits * chunk * cols * cells`` float64 currents (and
#: the matching drive planes) stay under it.
PACKED_BYTES_LIMIT = 64 * 1024 * 1024

_TIER_LOCK = threading.Lock()
_RESOLVED: Dict[str, str] = {}
_NUMBA_VMM: Optional[Callable[..., np.ndarray]] = None


def _importable(module: str) -> bool:
    """Whether ``module`` imports cleanly in this environment."""
    try:
        importlib.import_module(module)
        return True
    except Exception:  # noqa: BLE001 — any import failure means "absent"
        return False


def requested_offload_tier() -> str:
    """The tier named by ``REPRO_ACCEL`` (default ``auto``); unknown
    values raise ``ValueError`` listing what is recognised."""
    value = os.environ.get(ENV_VAR, "").strip().lower() or "auto"
    if value not in OFFLOAD_TIERS:
        known = ", ".join(OFFLOAD_TIERS)
        raise ValueError(
            f"unknown {ENV_VAR} offload tier {value!r} — recognised "
            f"tiers: {known}")
    return value


def resolve_offload_tier(requested: Optional[str] = None) -> str:
    """The tier the accel backend actually runs: ``blas``, ``numba`` or
    ``torch``.

    ``auto`` probes numba then torch and silently settles on the BLAS
    path when neither imports. An explicitly requested tier that is not
    importable falls back to ``blas`` and logs a single warning for the
    lifetime of the process (resolution is cached per requested value —
    no per-call spam).
    """
    requested = requested if requested is not None else requested_offload_tier()
    with _TIER_LOCK:
        resolved = _RESOLVED.get(requested)
        if resolved is not None:
            return resolved
        if requested == "blas":
            resolved = "blas"
        elif requested == "auto":
            if _importable("numba"):
                resolved = "numba"
            elif _importable("torch"):
                resolved = "torch"
            else:
                resolved = "blas"
        elif _importable(requested):
            resolved = requested
        else:
            logger.warning(
                "%s=%s requested but %s is not importable — falling back "
                "to the pure-NumPy BLAS path", ENV_VAR, requested, requested)
            resolved = "blas"
        _RESOLVED[requested] = resolved
        return resolved


def reset_offload_cache() -> None:
    """Forget cached tier resolutions (tests re-probe after changing
    ``REPRO_ACCEL`` or the import environment)."""
    with _TIER_LOCK:
        _RESOLVED.clear()


# ----------------------------------------------------------------------
# finite-ADC packed path — pure NumPy (the always-available BLAS tier)
# ----------------------------------------------------------------------
def _finite_chunk_rows(op: EngineOperands) -> int:
    """Samples per chunk keeping the stacked (k, bits*N, cols*cells)
    currents and (k, bits*N, m) drive planes under the byte budget."""
    per_sample = (8 * op.input_bits * op.n_groups
                  * (op.granularity + op.cols * op.n_cells))
    return max(1, PACKED_BYTES_LIMIT // per_sample)


def _finite_vmm_blas(xq: np.ndarray, op: EngineOperands) -> np.ndarray:
    """Finite-ADC analog term via the stacked bit-plane batched matmul:
    quantized inputs (N, rows) -> signed analog outputs (N, cols),
    before the digital offset / zero-point terms."""
    n = xq.shape[0]
    k, c, s = op.n_groups, op.cols, op.n_cells
    bits = op.input_bits
    cells = op.cells_packed                                 # (k, m, c*s)
    z = np.empty((n, c), dtype=np.float64)
    chunk = _finite_chunk_rows(op)
    for lo in range(0, n, chunk):
        xq_c = xq[lo:lo + chunk]
        nn = xq_c.shape[0]
        drive = op.grouped_bit_planes(xq_c)                 # (k, bits*nn, m)
        currents = np.matmul(drive, cells)                  # (k, bits*nn, c*s)
        converted = op.adc.convert(currents)
        weighted = np.einsum(
            "b,kbnx->knx", op.bit_weights,
            converted.reshape(k, bits, nn, c * s), optimize=True)
        folded = weighted.reshape(k, nn, c, s) @ op.significance
        z[lo:lo + nn] = np.einsum("knc,kc->nc", folded, op.sign,
                                  optimize=True)
    return z


def _digital_terms(xqf: np.ndarray, z: np.ndarray,
                   op: EngineOperands) -> np.ndarray:
    """Add the Eq. 7 offset/complement GEMM and the ISAAC zero-point
    correction to the analog term ``z`` (N, cols)."""
    z = z + op.group_input_sums(xqf) @ op.offset_gain
    return z - op.weight_zero_point * xqf.sum(axis=1, keepdims=True)


# ----------------------------------------------------------------------
# optional offload tiers (lazy, failure-gated imports)
# ----------------------------------------------------------------------
def _build_numba_vmm() -> Callable[..., np.ndarray]:
    """Compile the fused finite-ADC VMM kernel with numba.

    Mirrors the packed math loop-wise (per sample / bit / group) so no
    large intermediate is ever materialised; ``fastmath`` stays off to
    preserve IEEE summation order within each accumulation.
    """
    import numba

    @numba.njit(parallel=True, cache=False)
    def finite_vmm(xq: np.ndarray, cells: np.ndarray,
                   significance: np.ndarray, sign: np.ndarray,
                   granularity: int, input_bits: int, step: float,
                   full_scale: float) -> np.ndarray:
        n, rows = xq.shape
        n_groups, _, cols, n_cells = cells.shape
        z = np.zeros((n, cols), dtype=np.float64)
        for i in numba.prange(n):
            for g in range(n_groups):
                r0 = g * granularity
                span = min(granularity, rows - r0)
                for col in range(cols):
                    acc = 0.0
                    for bit in range(input_bits):
                        weight = float(1 << bit)
                        for cell in range(n_cells):
                            current = 0.0
                            for r in range(span):
                                if (xq[i, r0 + r] >> bit) & 1:
                                    current += cells[g, r, col, cell]
                            if current < 0.0:
                                current = 0.0
                            elif current > full_scale:
                                current = full_scale
                            converted = np.round(current / step) * step
                            acc += weight * significance[cell] * converted
                    z[i, col] += sign[g, col] * acc
        return z

    return finite_vmm


def _numba_finite_vmm(xq: np.ndarray, op: EngineOperands) -> np.ndarray:
    """Finite-ADC analog term through the cached numba kernel."""
    global _NUMBA_VMM
    with _TIER_LOCK:
        if _NUMBA_VMM is None:
            _NUMBA_VMM = _build_numba_vmm()
        kernel = _NUMBA_VMM
    return kernel(np.ascontiguousarray(xq, dtype=np.int64),
                  op.cells_grouped, op.significance, op.sign,
                  op.granularity, op.input_bits, float(op.adc.step),
                  float(op.adc.full_scale))


def _torch_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` through torch (zero-copy in both directions on CPU)."""
    import torch

    return torch.matmul(torch.from_numpy(a), torch.from_numpy(b)).numpy()


def _torch_finite_vmm(xq: np.ndarray, op: EngineOperands) -> np.ndarray:
    """Finite-ADC analog term with the packed matmuls and the ADC
    transfer evaluated in torch (CPU tensors; rounding matches numpy's
    round-half-to-even)."""
    import torch

    n = xq.shape[0]
    k, c, s = op.n_groups, op.cols, op.n_cells
    bits = op.input_bits
    cells = torch.from_numpy(op.cells_packed)
    sig = torch.from_numpy(op.significance)
    sign = torch.from_numpy(op.sign)
    bit_w = torch.from_numpy(op.bit_weights)
    z = np.empty((n, c), dtype=np.float64)
    chunk = _finite_chunk_rows(op)
    for lo in range(0, n, chunk):
        xq_c = xq[lo:lo + chunk]
        nn = xq_c.shape[0]
        drive = torch.from_numpy(op.grouped_bit_planes(xq_c))
        currents = torch.matmul(drive, cells)
        converted = torch.round(
            torch.clamp(currents, 0.0, float(op.adc.full_scale))
            / float(op.adc.step)) * float(op.adc.step)
        weighted = torch.einsum(
            "b,kbnx->knx", bit_w, converted.reshape(k, bits, nn, c * s))
        folded = torch.matmul(weighted.reshape(k, nn, c, s), sig)
        z[lo:lo + nn] = torch.einsum("knc,kc->nc", folded, sign).numpy()
    return z


class AccelBackend(VectorizedBackend):
    """Bit-plane-packed BLAS kernels with optional numba/torch offload.

    Window kernels (im2col / col2im / pooling) are inherited from
    :class:`VectorizedBackend` unchanged — bitwise-identical outputs —
    so the two backends share a :attr:`cache_tag` and programmed
    serve artifacts warm-start across them.
    """

    name = "accel"
    # Bitwise-identical on the deployed fast-float path (inherited
    # window kernels), so accel shares vectorized's programmed
    # artifacts in content-addressed caches.
    cache_tag = "vectorized"

    def offload_tier(self) -> str:
        """The resolved offload tier for this process:
        ``blas``/``numba``/``torch``."""
        return resolve_offload_tier()

    def status(self) -> str:
        """Availability note including the active offload tier."""
        tier = self.offload_tier()
        if tier == "blas":
            return "available (BLAS fallback)"
        return f"available ({tier} offload active)"

    def _engine_vmm(self, xq: np.ndarray, op: EngineOperands) -> np.ndarray:
        """Packed crossbar VMM: quantized inputs (N, rows) ->
        integer-domain outputs (N, cols).

        Ideal ADC: one GEMM against the cached packed matrix (analog +
        offset + complement + zero-point all folded in). Finite ADC:
        the stacked bit-plane batched matmul (or the offload tier's
        fused equivalent) followed by the digital terms.
        """
        tier = resolve_offload_tier()
        xqf = xq.astype(np.float64)
        if op.adc.ideal:
            if tier == "torch":
                return _torch_matmul(xqf, op.packed_ideal_weights)
            return xqf @ op.packed_ideal_weights
        if tier == "numba":
            z = _numba_finite_vmm(xq, op)
        elif tier == "torch":
            z = _torch_finite_vmm(xq, op)
        else:
            z = _finite_vmm_blas(xq, op)
        return _digital_terms(xqf, z, op)


__all__ = [
    "ENV_VAR", "OFFLOAD_TIERS", "PACKED_BYTES_LIMIT", "AccelBackend",
    "requested_offload_tier", "reset_offload_cache",
    "resolve_offload_tier",
]
