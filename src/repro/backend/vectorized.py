"""The vectorized kernel set — the default backend.

Same arithmetic as :mod:`repro.backend.reference`, restructured for
throughput:

* im2col and pooling windows are built from one
  ``np.lib.stride_tricks.as_strided`` view copied in a single pass
  instead of a python loop over kernel positions;
* the bit-serial crossbar VMM vectorizes the input-bit × offset-group ×
  cell-significance loops of the reference engine into a handful of
  batched einsums over the group-reshaped cell tensor — with an ideal
  ADC the whole accumulation collapses to *one* contraction against the
  cached sign-folded CRW (:attr:`EngineOperands.signed_crw_grouped`);
* the digital offset add (Eq. 7) and the complement post-processing use
  the precomputed per-group input-sum gain matrix
  (:attr:`EngineOperands.offset_gain`): one (N, k) @ (k, cols) matmul
  replaces the per-group broadcast/where pass.

Numerical interchangeability with ``reference`` (up to float rounding)
is asserted by the shared equivalence suite in ``tests/backend/``.

This module is the one sanctioned home of strided-window tricks in the
library (lint rule R7): consumers go through
:func:`repro.backend.get_backend`, never through ``as_strided``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.backend.base import EngineOperands, KernelBackend


def _window_view(x: np.ndarray, kh: int, kw: int,
                 stride: int) -> Tuple[np.ndarray, int, int]:
    """A zero-copy (N, C, kh, kw, OH, OW) sliding-window view of ``x``
    (N, C, H, W); returns ``(view, OH, OW)``.

    The view aliases ``x`` with overlapping strides — callers must copy
    (e.g. via ``reshape``) before writing anywhere.
    """
    n, c, h, w = x.shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    view = as_strided(x, shape=(n, c, kh, kw, oh, ow),
                      strides=(sn, sc, sh, sw, sh * stride, sw * stride))
    return view, oh, ow


class VectorizedBackend(KernelBackend):
    """Strided-view windows and batched bit-serial VMM kernels."""

    name = "vectorized"
    cache_tag = "vectorized"

    # ------------------------------------------------------------------
    # im2col / col2im / pooling windows
    # ------------------------------------------------------------------
    def _im2col(self, x: np.ndarray, kh: int, kw: int, stride: int,
                pad: int) -> Tuple[np.ndarray, int, int]:
        """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW)
        by copying one strided window view in a single pass."""
        if pad > 0:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        x = np.ascontiguousarray(x)
        n, c = x.shape[:2]
        view, oh, ow = _window_view(x, kh, kw, stride)
        # reshape of the overlapping view materialises the copy.
        return view.reshape(n, c * kh * kw, oh * ow), oh, ow

    def _col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
                kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
        """Fold columns (N, C*kh*kw, OH*OW) back into an image of shape
        ``x_shape``, accumulating overlaps (im2col adjoint).

        Overlapping windows make the adjoint a scatter-add, which a
        strided view cannot express safely (the same output element
        would be written through several aliases); the accumulation
        loops over the kh*kw kernel positions and stays vectorised over
        batch and spatial dims, like the reference kernel.
        """
        n, c, h, w = x_shape
        hp, wp = h + 2 * pad, w + 2 * pad
        oh = (hp - kh) // stride + 1
        ow = (wp - kw) // stride + 1
        cols = cols.reshape(n, c, kh, kw, oh, ow)
        x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
        for i in range(kh):
            i_end = i + stride * oh
            for j in range(kw):
                j_end = j + stride * ow
                x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
        if pad > 0:
            x = x[:, :, pad:-pad, pad:-pad]
        return x

    def _pool_windows(self, x: np.ndarray, k: int,
                      stride: int) -> np.ndarray:
        """View ``x`` (N, C, H, W) as windows (N, C, k*k, OH, OW) via
        one strided-view copy."""
        x = np.ascontiguousarray(x)
        n, c = x.shape[:2]
        view, oh, ow = _window_view(x, k, k, stride)
        return view.reshape(n, c, k * k, oh, ow)

    # ------------------------------------------------------------------
    # batched bit-serial crossbar VMM
    # ------------------------------------------------------------------
    def _engine_vmm(self, xq: np.ndarray, op: EngineOperands) -> np.ndarray:
        """Batched crossbar VMM: quantized inputs (N, rows) ->
        integer-domain outputs (N, cols).

        With an ideal ADC the bit-serial accumulation telescopes
        exactly (``sum_b 2^b x_bit = x``), so the analog term is one
        contraction of the group-reshaped inputs against the cached
        sign-folded CRW. A finite-resolution ADC must convert each
        (input bit, offset group) current separately; that path loops
        over the ``input_bits`` bit planes only and contracts all
        groups, columns and cell significances in batched einsums.
        """
        xqf = xq.astype(np.float64)
        gx = op.group_input_sums(xqf)                       # (N, k)

        if op.adc.ideal:
            z = np.einsum("nkm,kmc->nc", op.grouped_inputs(xqf),
                          op.signed_crw_grouped, optimize=True)
        else:
            n = xq.shape[0]
            cells_g = op.cells_grouped                      # (k, m, c, s)
            z_groups = np.zeros((n, op.n_groups, op.cols))
            for bit in range(op.input_bits):
                x_bit = ((xq >> bit) & 1).astype(np.float64)
                drive = op.grouped_inputs(x_bit)            # (N, k, m)
                currents = np.einsum("nkm,kmcs->nkcs", drive, cells_g,
                                     optimize=True)
                converted = op.adc.convert(currents)
                z_groups += float(1 << bit) * np.einsum(
                    "nkcs,s->nkc", converted, op.significance,
                    optimize=True)
            z = np.einsum("nkc,kc->nc", z_groups, op.sign, optimize=True)

        # Digital offset + complement folded into one matmul (Eq. 7),
        # then the ISAAC zero-point correction.
        z = z + gx @ op.offset_gain
        total_x = xqf.sum(axis=1, keepdims=True)
        return z - op.weight_zero_point * total_x
