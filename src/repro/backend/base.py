"""The kernel-set interface every compute backend implements.

A *backend* is a named bundle of the library's arithmetic hot paths:
the im2col / col2im / pooling window kernels that
:mod:`repro.nn.functional` builds convolution and pooling from, and the
bit-serial crossbar VMM that :class:`repro.xbar.engine.CrossbarEngine`
runs. Consumers never import a kernel implementation directly — they
resolve the active backend through :func:`repro.backend.get_backend`
and call the methods defined here, so kernel implementations can evolve
(or be swapped wholesale) without touching the paper-faithful model.

Two implementations ship with the library:

* ``reference`` (:mod:`repro.backend.reference`) — the original
  loop-based kernels, kept verbatim as the correctness oracle;
* ``vectorized`` (:mod:`repro.backend.vectorized`) — the default:
  strided-view windows and a batched bit-serial VMM;
* ``accel`` (:mod:`repro.backend.accel`) — the bit-plane-packed BLAS
  reformulation of the VMM, with optional numba/torch offload tiers.

Every backend must be *numerically interchangeable* with ``reference``
up to float rounding; the guarantee is asserted by the shared
equivalence suite in ``tests/backend/``.

:class:`EngineOperands` carries the forward-invariant state of one
crossbar engine (cells, significances, registers, complement masks and
the derived matrices) so backends can cache expensive precomputations
per engine instead of rebuilding them on every ``forward`` call.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids package cycles)
    from repro.xbar.adc import ADC


class EngineOperands:
    """Forward-invariant operands of one crossbar engine's VMM.

    Built once (at engine construction) from the programmed cell array
    of shape (rows, cols, n_cells), the per-group registers/complement
    masks of shape (n_groups, cols) and the quantization geometry. The
    derived views backends need — the crossbar real weights, the
    group-padded cell tensor, the complement sign matrix and the
    per-group input-sum gain of Eq. 7 — are computed lazily and cached,
    so each backend only ever pays for the intermediates it uses and
    repeated ``forward`` calls recompute nothing.
    """

    def __init__(self, cells: np.ndarray, significance: np.ndarray,
                 registers: np.ndarray, complement: np.ndarray,
                 granularity: int, input_bits: int, weight_qmax: int,
                 weight_zero_point: int, adc: "ADC") -> None:
        """Capture the engine state; ``cells`` is (rows, cols, n_cells),
        ``registers``/``complement`` are (n_groups, cols) and
        ``significance`` is (n_cells,)."""
        self.cells = np.asarray(cells, dtype=np.float64)
        self.significance = np.asarray(significance, dtype=np.float64)
        self.registers = np.asarray(registers, dtype=np.float64)
        self.complement = np.asarray(complement, dtype=bool)
        self.granularity = int(granularity)
        self.input_bits = int(input_bits)
        self.weight_qmax = int(weight_qmax)
        self.weight_zero_point = int(weight_zero_point)
        self.adc = adc
        self.rows, self.cols, self.n_cells = self.cells.shape
        self.n_groups = self.registers.shape[0]
        self._crw: Optional[np.ndarray] = None
        self._cells_grouped: Optional[np.ndarray] = None
        self._sign: Optional[np.ndarray] = None
        self._signed_crw_grouped: Optional[np.ndarray] = None
        self._offset_gain: Optional[np.ndarray] = None
        self._offset_gain_rows: Optional[np.ndarray] = None
        self._packed_ideal_weights: Optional[np.ndarray] = None
        self._cells_packed: Optional[np.ndarray] = None
        self._bit_weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # cached derived views
    # ------------------------------------------------------------------
    @property
    def padded_rows(self) -> int:
        """Rows after padding the last partial group: scalar
        ``n_groups * granularity``."""
        return self.n_groups * self.granularity

    def _pad_rows(self, array: np.ndarray) -> np.ndarray:
        """Zero-pad the leading (row) axis of ``array`` — shape
        (rows, ...) — up to a whole number of groups."""
        pad = self.padded_rows - self.rows
        if pad == 0:
            return array
        widths = [(0, pad)] + [(0, 0)] * (array.ndim - 1)
        return np.pad(array, widths)

    @property
    def crw(self) -> np.ndarray:
        """Crossbar real weights: cells folded over significance,
        shape (rows, cols)."""
        if self._crw is None:
            self._crw = self.cells @ self.significance
        return self._crw

    @property
    def cells_grouped(self) -> np.ndarray:
        """Cells regrouped by offset group: shape
        (n_groups, granularity, cols, n_cells), zero-padded rows."""
        if self._cells_grouped is None:
            padded = self._pad_rows(self.cells)
            self._cells_grouped = padded.reshape(
                self.n_groups, self.granularity, self.cols, self.n_cells)
        return self._cells_grouped

    @property
    def sign(self) -> np.ndarray:
        """Complement sign per group/column: +1 plain, -1 complemented,
        shape (n_groups, cols)."""
        if self._sign is None:
            self._sign = 1.0 - 2.0 * self.complement.astype(np.float64)
        return self._sign

    @property
    def signed_crw_grouped(self) -> np.ndarray:
        """CRW regrouped and pre-multiplied by the complement sign:
        shape (n_groups, granularity, cols).

        Contracting quantized inputs against this matrix yields the
        signed analog contribution of every group in one pass — the
        ideal-ADC fast path of the vectorized backend.
        """
        if self._signed_crw_grouped is None:
            grouped = self._pad_rows(self.crw).reshape(
                self.n_groups, self.granularity, self.cols)
            self._signed_crw_grouped = grouped * self.sign[:, None, :]
        return self._signed_crw_grouped

    @property
    def offset_gain(self) -> np.ndarray:
        """Per-group input-sum gain of the digital post-processing,
        shape (n_groups, cols).

        Folding Eq. 7's offset add and Section III-C's complement into
        one matrix: a group's post-analog contribution is
        ``sign * z + gx * (sign * b + complement * qmax)`` where ``gx``
        is the group input sum, so ``group_sums @ offset_gain`` is the
        whole digital term for a batch.
        """
        if self._offset_gain is None:
            self._offset_gain = (self.sign * self.registers
                                 + self.complement * float(self.weight_qmax))
        return self._offset_gain

    @property
    def offset_gain_rows(self) -> np.ndarray:
        """:attr:`offset_gain` expanded from groups to rows, shape
        (rows, cols): ``offset_gain_rows[r] = offset_gain[r // m]``.

        Because every row of group ``g`` contributes its input once to
        the group sum ``gx_g``, the per-group digital term
        ``gx @ offset_gain`` equals the per-row GEMM
        ``x @ offset_gain_rows`` — which lets the accel backend fold the
        offset add into the packed weight matrix.
        """
        if self._offset_gain_rows is None:
            expanded = np.repeat(self.offset_gain, self.granularity, axis=0)
            self._offset_gain_rows = expanded[:self.rows]
        return self._offset_gain_rows

    @property
    def packed_ideal_weights(self) -> np.ndarray:
        """The single packed GEMM operand of the ideal-ADC forward,
        shape (rows, cols).

        With an ideal ADC the bit-serial sum telescopes
        (``sum_b 2^b x_bit = x``) and every remaining term of the
        integer-domain output is linear in the quantized inputs, so the
        analog contraction, the Eq. 7 offset add, the complement
        post-processing and the ISAAC zero-point correction all fold
        into one matrix::

            P = sign_rows * CRW + offset_gain_rows - weight_zero_point
            z = xq @ P

        (``sign_rows`` expands the per-group complement sign to rows the
        same way :attr:`offset_gain_rows` expands the gain.) See
        DESIGN.md's bit-plane packing section for the derivation.
        """
        if self._packed_ideal_weights is None:
            flat_signed = self.signed_crw_grouped.reshape(
                self.padded_rows, self.cols)[:self.rows]
            self._packed_ideal_weights = np.ascontiguousarray(
                flat_signed + self.offset_gain_rows
                - float(self.weight_zero_point))
        return self._packed_ideal_weights

    @property
    def cells_packed(self) -> np.ndarray:
        """:attr:`cells_grouped` with the column and cell axes merged
        into one GEMM output axis: shape (n_groups, granularity,
        cols * n_cells), contiguous.

        The batched-matmul operand of the accel backend's finite-ADC
        path: ``(k, bits*N, m) @ (k, m, cols*n_cells)`` produces every
        per-(bit, group, column, cell) current in one BLAS call.
        """
        if self._cells_packed is None:
            self._cells_packed = np.ascontiguousarray(
                self.cells_grouped.reshape(
                    self.n_groups, self.granularity,
                    self.cols * self.n_cells))
        return self._cells_packed

    @property
    def bit_weights(self) -> np.ndarray:
        """Shift-and-add bit significances ``2**b``, shape
        (input_bits,)."""
        if self._bit_weights is None:
            self._bit_weights = np.ldexp(
                1.0, np.arange(self.input_bits)).astype(np.float64)
        return self._bit_weights

    def grouped_bit_planes(self, xq: np.ndarray) -> np.ndarray:
        """All bit planes of a quantized batch, stacked and regrouped
        for one batched matmul: (N, rows) int inputs ->
        (n_groups, input_bits * N, granularity) float drive matrix.

        Plane ``b`` of sample ``n`` lands at stacked row ``b * N + n``,
        so the product against :attr:`cells_packed` reshapes back to
        (n_groups, input_bits, N, cols * n_cells) with a plain
        ``reshape``.
        """
        n = xq.shape[0]
        shifts = np.arange(self.input_bits, dtype=xq.dtype)
        planes = ((xq[None, :, :] >> shifts[:, None, None]) & 1)
        padded = np.pad(planes.astype(np.float64),
                        ((0, 0), (0, 0), (0, self.padded_rows - self.rows)))
        grouped = padded.reshape(self.input_bits, n, self.n_groups,
                                 self.granularity)
        stacked = grouped.transpose(2, 0, 1, 3)
        # reshape of the transposed view materialises the copy, giving
        # the contiguous (k, bits*N, m) operand BLAS wants.
        return stacked.reshape(self.n_groups, self.input_bits * n,
                               self.granularity)

    def grouped_inputs(self, x: np.ndarray) -> np.ndarray:
        """Reshape a per-row batch (N, rows) into offset groups
        (N, n_groups, granularity), zero-padding the partial last group."""
        padded = np.pad(x, ((0, 0), (0, self.padded_rows - self.rows)))
        return padded.reshape(x.shape[0], self.n_groups, self.granularity)

    def group_input_sums(self, xq: np.ndarray) -> np.ndarray:
        """Per-group input sums (the adder-tree outputs of Eq. 1):
        quantized inputs (N, rows) -> (N, n_groups)."""
        return self.grouped_inputs(xq).sum(axis=2)


class KernelBackend(abc.ABC):
    """One named, complete set of compute kernels.

    Subclasses implement the private ``_impl`` hooks; the public
    methods add the per-kernel obs counters (``backend.<name>.<kernel>``)
    so kernel traffic is visible in run manifests regardless of which
    backend served it. All kernels are pure functions of their inputs —
    backends hold no per-call state, so one instance is shared
    process-wide by the registry.
    """

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Numeric-equivalence class folded into content-addressed cache
    #: keys (e.g. the serve_program registry) in place of the backend
    #: name. Backends that produce bitwise-identical results on the
    #: deployed fast-float path share a tag, so switching between them
    #: warm-starts the same programmed artifacts instead of
    #: re-deploying. Defaults to the backend name (no sharing);
    #: ``accel`` shares ``vectorized``'s tag.
    cache_tag: str = "abstract"

    def status(self) -> str:
        """A one-line availability note for ``repro backends``; kernel
        sets with optional offload tiers override this."""
        return "available"

    # ------------------------------------------------------------------
    # convolution / pooling window kernels
    # ------------------------------------------------------------------
    def im2col(self, x: np.ndarray, kh: int, kw: int, stride: int,
               pad: int) -> Tuple[np.ndarray, int, int]:
        """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW);
        returns ``(cols, OH, OW)``."""
        obs_metrics.inc(f"backend.{self.name}.im2col")
        return self._im2col(x, kh, kw, stride, pad)

    def col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
               kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
        """Fold columns (N, C*kh*kw, OH*OW) back into an image of shape
        ``x_shape`` (N, C, H, W), accumulating overlaps (im2col adjoint)."""
        obs_metrics.inc(f"backend.{self.name}.col2im")
        return self._col2im(cols, x_shape, kh, kw, stride, pad)

    def pool_windows(self, x: np.ndarray, k: int, stride: int) -> np.ndarray:
        """View ``x`` (N, C, H, W) as pooling windows (N, C, k*k, OH, OW)."""
        obs_metrics.inc(f"backend.{self.name}.pool_windows")
        return self._pool_windows(x, k, stride)

    # ------------------------------------------------------------------
    # crossbar VMM kernel
    # ------------------------------------------------------------------
    def engine_vmm(self, xq: np.ndarray, op: EngineOperands) -> np.ndarray:
        """The integer-domain crossbar VMM of Fig. 1(b)/Fig. 4.

        ``xq`` is the quantized input batch (N, rows); the result
        (N, cols) is the bit-serial analog accumulation through the ADC
        plus the digital offset / complement post-processing of Eq. 7
        and the ISAAC zero-point correction — everything between input
        quantization and the final dequantization scales.
        """
        obs_metrics.inc(f"backend.{self.name}.engine_vmm")
        obs_metrics.inc(f"backend.{self.name}.engine_vmm_batches",
                        xq.shape[0])
        return self._engine_vmm(xq, op)

    # ------------------------------------------------------------------
    # implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _im2col(self, x: np.ndarray, kh: int, kw: int, stride: int,
                pad: int) -> Tuple[np.ndarray, int, int]:
        """Backend implementation of :meth:`im2col` — same shapes."""

    @abc.abstractmethod
    def _col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
                kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
        """Backend implementation of :meth:`col2im` — same shapes."""

    @abc.abstractmethod
    def _pool_windows(self, x: np.ndarray, k: int,
                      stride: int) -> np.ndarray:
        """Backend implementation of :meth:`pool_windows` — same shapes."""

    @abc.abstractmethod
    def _engine_vmm(self, xq: np.ndarray,
                    op: EngineOperands) -> np.ndarray:
        """Backend implementation of :meth:`engine_vmm` — same shapes."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
