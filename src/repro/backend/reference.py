"""The loop-based reference kernel set — the correctness oracle.

This is the library's original kernel code, moved here verbatim from
:mod:`repro.nn.functional` (im2col / col2im / pooling windows) and
:mod:`repro.xbar.engine` (the bit-serial, group-at-a-time crossbar
VMM). It stays deliberately simple and close to the paper's datapath
description: one ADC conversion per cell column per cycle, one offset
group at a time. Every other backend is validated against it by the
shared equivalence suite, which is what makes swapping kernel
implementations safe.

Select it with ``REPRO_BACKEND=reference`` or ``--backend reference``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.backend.base import EngineOperands, KernelBackend


class ReferenceBackend(KernelBackend):
    """Loop-based kernels, bit- and cycle-faithful to the paper."""

    name = "reference"
    cache_tag = "reference"

    # ------------------------------------------------------------------
    # im2col / col2im / pooling windows
    # ------------------------------------------------------------------
    def _im2col(self, x: np.ndarray, kh: int, kw: int, stride: int,
                pad: int) -> Tuple[np.ndarray, int, int]:
        """Unfold ``x`` (N, C, H, W) into columns (N, C*kh*kw, OH*OW).

        The loop is over the ``kh * kw`` kernel positions only (a
        handful of iterations); each iteration copies a strided view,
        so the whole operation is vectorised over batch and spatial
        dims.
        """
        if pad > 0:
            x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        n, c, h, w = x.shape
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        cols = np.empty((n, c, kh, kw, oh, ow), dtype=x.dtype)
        for i in range(kh):
            i_end = i + stride * oh
            for j in range(kw):
                j_end = j + stride * ow
                cols[:, :, i, j] = x[:, :, i:i_end:stride, j:j_end:stride]
        return cols.reshape(n, c * kh * kw, oh * ow), oh, ow

    def _col2im(self, cols: np.ndarray, x_shape: Tuple[int, int, int, int],
                kh: int, kw: int, stride: int, pad: int) -> np.ndarray:
        """Fold columns (N, C*kh*kw, OH*OW) back into an image of shape
        ``x_shape``, accumulating overlaps (im2col adjoint)."""
        n, c, h, w = x_shape
        hp, wp = h + 2 * pad, w + 2 * pad
        oh = (hp - kh) // stride + 1
        ow = (wp - kw) // stride + 1
        cols = cols.reshape(n, c, kh, kw, oh, ow)
        x = np.zeros((n, c, hp, wp), dtype=cols.dtype)
        for i in range(kh):
            i_end = i + stride * oh
            for j in range(kw):
                j_end = j + stride * ow
                x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
        if pad > 0:
            x = x[:, :, pad:-pad, pad:-pad]
        return x

    def _pool_windows(self, x: np.ndarray, k: int,
                      stride: int) -> np.ndarray:
        """View ``x`` (N, C, H, W) as windows (N, C, k*k, OH, OW)."""
        n, c, h, w = x.shape
        oh = (h - k) // stride + 1
        ow = (w - k) // stride + 1
        windows = np.empty((n, c, k * k, oh, ow), dtype=x.dtype)
        idx = 0
        for i in range(k):
            i_end = i + stride * oh
            for j in range(k):
                j_end = j + stride * ow
                windows[:, :, idx] = x[:, :, i:i_end:stride, j:j_end:stride]
                idx += 1
        return windows

    # ------------------------------------------------------------------
    # bit-serial crossbar VMM
    # ------------------------------------------------------------------
    def _engine_vmm(self, xq: np.ndarray, op: EngineOperands) -> np.ndarray:
        """Bit-serial, group-at-a-time analog accumulation:
        quantized inputs (N, rows) -> integer-domain outputs (N, cols).

        One input bit per cycle, one offset group (``granularity``
        wordlines) driven at a time, one ADC conversion per cell column
        per cycle — then the digital offset add (Eq. 7), the complement
        post-processing and the ISAAC zero-point correction.
        """
        n, rows = xq.shape
        m = op.granularity
        k = op.n_groups
        cols = op.cols

        # Per-group integer input sums (the adder-tree outputs).
        group_x_sum = op.group_input_sums(xq.astype(np.float64))  # (N, k)

        # Bit-serial, group-at-a-time analog accumulation.
        z_groups = np.zeros((n, k, cols))
        for bit in range(op.input_bits):
            x_bit = ((xq >> bit) & 1).astype(np.float64)    # (N, rows)
            weight = float(1 << bit)
            for gi in range(k):
                lo = gi * m
                hi = min(lo + m, rows)
                drive = x_bit[:, lo:hi]                     # (N, mg)
                cells_g = op.cells[lo:hi]                   # (mg, cols, n_cells)
                # One ADC conversion per cell column per cycle.
                currents = np.einsum("nr,rck->nck", drive, cells_g,
                                     optimize=True)
                converted = op.adc.convert(currents)
                z_groups[:, gi, :] += weight * (converted @ op.significance)

        # Digital offset path: b_g * sum(x in group g).
        z_groups += group_x_sum[:, :, None] * op.registers[None, :, :]

        # Complement post-processing per group.
        comp = op.complement[None, :, :]
        full = op.weight_qmax * group_x_sum[:, :, None]
        z_groups = np.where(comp, full - z_groups, z_groups)

        # Sum groups and undo the ISAAC weight shift.
        z = z_groups.sum(axis=1)                            # (N, cols)
        total_x = xq.sum(axis=1, keepdims=True).astype(np.float64)
        return z - op.weight_zero_point * total_x
