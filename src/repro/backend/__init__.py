"""Compute-backend dispatch: one registry for all kernel sets.

Every arithmetic hot path in the library — the im2col / col2im /
pooling-window kernels behind :mod:`repro.nn.functional` and the
bit-serial crossbar VMM behind :class:`repro.xbar.engine.CrossbarEngine`
— routes through the backend resolved here, so kernel implementations
can be swapped without touching the paper-faithful model:

.. code-block:: python

    from repro.backend import get_backend, use_backend

    backend = get_backend()              # the active default
    backend = get_backend("reference")   # an explicit kernel set
    with use_backend("reference"):       # temporary override (tests)
        ...

Selection, in precedence order:

1. an explicit ``name`` argument (or per-engine ``backend=`` field);
2. :func:`set_default_backend` (the CLI ``--backend`` flag);
3. the ``REPRO_BACKEND`` environment variable;
4. the built-in default, ``vectorized``.

``reference`` is the original loop-based code and serves as the
correctness oracle: every registered backend must match it within float
rounding (asserted by ``tests/backend/``). Third parties add kernel
sets with :func:`register_backend`.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, Optional, Tuple

from repro.backend.base import EngineOperands, KernelBackend

#: Environment variable naming the default backend.
ENV_VAR = "REPRO_BACKEND"

#: The backend used when nothing else selects one.
BUILTIN_DEFAULT = "vectorized"

_LOCK = threading.Lock()
_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: Dict[str, KernelBackend] = {}
_DEFAULT_OVERRIDE: Optional[str] = None


def register_backend(name: str, factory: Callable[[], KernelBackend],
                     replace: bool = False) -> None:
    """Register a kernel-set ``factory`` under ``name``.

    The factory is called at most once (instances are cached and shared
    process-wide — backends are stateless by contract). Registering an
    existing name raises unless ``replace=True``.
    """
    with _LOCK:
        if name in _FACTORIES and not replace:
            raise ValueError(f"backend {name!r} is already registered")
        _FACTORIES[name] = factory
        _INSTANCES.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """The registered backend names, sorted."""
    with _LOCK:
        return tuple(sorted(_FACTORIES))


def default_backend_name() -> str:
    """The name :func:`get_backend` resolves when called without one.

    Precedence: :func:`set_default_backend` override, then the
    ``REPRO_BACKEND`` environment variable, then ``vectorized``.
    """
    if _DEFAULT_OVERRIDE is not None:
        return _DEFAULT_OVERRIDE
    return os.environ.get(ENV_VAR, "").strip() or BUILTIN_DEFAULT


def set_default_backend(name: Optional[str]) -> None:
    """Set (or with ``None`` clear) the process-wide default backend.

    Validates eagerly so a typo fails at the CLI flag, not deep inside
    the first forward pass.
    """
    global _DEFAULT_OVERRIDE
    if name is not None:
        _resolve(name)                   # raises on unknown names
    _DEFAULT_OVERRIDE = name


def _resolve(name: str) -> KernelBackend:
    """Instantiate (or fetch the cached instance of) backend ``name``."""
    with _LOCK:
        instance = _INSTANCES.get(name)
        if instance is not None:
            return instance
        factory = _FACTORIES.get(name)
        if factory is None:
            known = ", ".join(sorted(_FACTORIES)) or "<none>"
            raise ValueError(
                f"unknown compute backend {name!r} — registered backends: "
                f"{known} (select via {ENV_VAR} or --backend)")
        instance = _INSTANCES[name] = factory()  # fork-ok — per-process instance cache; backends are stateless
        return instance


def get_backend(name: Optional[str] = None) -> KernelBackend:
    """The kernel set to dispatch to.

    ``name=None`` resolves the current default (override, then
    ``REPRO_BACKEND``, then ``vectorized``); unknown names raise
    ``ValueError`` listing what is registered.
    """
    return _resolve(name if name is not None else default_backend_name())


@contextmanager
def use_backend(name: str) -> Iterator[KernelBackend]:
    """Temporarily make ``name`` the default backend (tests, sweeps)."""
    global _DEFAULT_OVERRIDE
    previous = _DEFAULT_OVERRIDE
    backend = _resolve(name)
    _DEFAULT_OVERRIDE = name
    try:
        yield backend
    finally:
        _DEFAULT_OVERRIDE = previous


def _register_builtins() -> None:
    """Register the kernel sets that ship with the library."""
    from repro.backend.accel import AccelBackend
    from repro.backend.reference import ReferenceBackend
    from repro.backend.vectorized import VectorizedBackend

    register_backend(ReferenceBackend.name, ReferenceBackend, replace=True)
    register_backend(VectorizedBackend.name, VectorizedBackend, replace=True)
    register_backend(AccelBackend.name, AccelBackend, replace=True)


_register_builtins()

__all__ = [
    "ENV_VAR", "BUILTIN_DEFAULT", "EngineOperands", "KernelBackend",
    "available_backends", "default_backend_name", "get_backend",
    "register_backend", "set_default_backend", "use_backend",
]
