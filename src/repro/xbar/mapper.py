"""Mapping weight matrices onto fixed-size crossbars.

A layer's (rows, cols) integer weight matrix rarely fits one 128x128
array: each weight occupies ``cells_per_weight`` physical columns (bit
slicing) and large layers need multiple row tiles whose partial outputs
are summed digitally. This module computes the tiling and the crossbar
counts that Table III's "crossbar number" comparison is based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Tuple

import numpy as np


@dataclass(frozen=True)
class TileSpec:
    """One crossbar-sized tile of a weight matrix."""

    row_start: int
    row_stop: int
    col_start: int       # in weight columns (not cells)
    col_stop: int

    @property
    def rows(self) -> int:
        """Wordlines this tile spans."""
        return self.row_stop - self.row_start

    @property
    def weight_cols(self) -> int:
        """Weight columns this tile spans."""
        return self.col_stop - self.col_start


@dataclass(frozen=True)
class CrossbarMapper:
    """Tiling policy for a crossbar of ``size`` x ``size`` cells.

    ``cells_per_weight`` physical columns hold one weight, so a crossbar
    stores ``size // cells_per_weight`` weight columns (the paper's
    ``l``: 32 for 8-bit weights on 2-bit MLCs at size 128).
    """

    size: int = 128
    cells_per_weight: int = 4

    def __post_init__(self):
        if self.size < 1:
            raise ValueError("crossbar size must be positive")
        if not 1 <= self.cells_per_weight <= self.size:
            raise ValueError("cells_per_weight must fit in one crossbar row")

    @classmethod
    def for_array(cls, array: "Any", size: int = 128) -> "CrossbarMapper":
        """A mapper matched to a HAL array's cell geometry.

        ``array`` is any :class:`repro.array.base.ArrayBackend`; the
        tiling uses its ``cells_per_weight`` at crossbar ``size``.
        """
        return cls(size=size, cells_per_weight=array.cells_per_weight)

    @property
    def weight_cols_per_xbar(self) -> int:
        """Weight columns one crossbar stores (the paper's ``l``)."""
        return self.size // self.cells_per_weight

    def tiles(self, rows: int, cols: int) -> List[TileSpec]:
        """Tile a (rows, cols) weight matrix into crossbar-sized pieces."""
        if rows < 1 or cols < 1:
            raise ValueError("matrix dimensions must be positive")
        specs = []
        wc = self.weight_cols_per_xbar
        for r0 in range(0, rows, self.size):
            for c0 in range(0, cols, wc):
                specs.append(TileSpec(r0, min(r0 + self.size, rows),
                                      c0, min(c0 + wc, cols)))
        return specs

    def count(self, rows: int, cols: int) -> int:
        """Number of crossbars a (rows, cols) weight matrix occupies."""
        return len(self.tiles(rows, cols))

    def count_model(self, layer_shapes: List[Tuple[int, int]]) -> int:
        """Total crossbars over a list of per-layer (rows, cols) shapes."""
        return sum(self.count(r, c) for r, c in layer_shapes)


def layer_matrix_shape(weight_shape: Tuple[int, ...]) -> Tuple[int, int]:
    """The (rows, cols) crossbar matrix of a layer's weight tensor.

    Linear (out, in) maps to (in, out); Conv2d (F, C, kh, kw) unrolls to
    (C*kh*kw, F) — inputs on wordlines, outputs on weight columns.
    """
    if len(weight_shape) == 2:
        out_f, in_f = weight_shape
        return in_f, out_f
    if len(weight_shape) == 4:
        f, c, kh, kw = weight_shape
        return c * kh * kw, f
    raise ValueError(f"unsupported weight shape {weight_shape}")
