"""Crossbar simulation: arrays, ADCs, tiling, and the bit-accurate engine."""

from repro.xbar.adc import ADC
from repro.xbar.arch import (OneCrossbarScheme, SchemeCost, TwoCrossbarScheme,
                             normalized_crossbar_number)
from repro.xbar.crossbar import Crossbar
from repro.xbar.engine import CrossbarEngine
from repro.xbar.mapper import CrossbarMapper, TileSpec, layer_matrix_shape
from repro.xbar.tiled import TiledCrossbarEngine

__all__ = [
    "Crossbar", "ADC", "CrossbarEngine", "TiledCrossbarEngine",
    "CrossbarMapper", "TileSpec", "layer_matrix_shape",
    "OneCrossbarScheme", "TwoCrossbarScheme", "SchemeCost",
    "normalized_crossbar_number",
]
