"""Multi-crossbar execution of large weight matrices.

A layer whose matrix exceeds one 128x128 array is split by
:class:`~repro.xbar.mapper.CrossbarMapper` into row/column tiles; each
tile is an independent physical crossbar with its own offset registers,
and the row-tiles' partial outputs are summed digitally (standard ISAAC
operation). :class:`TiledCrossbarEngine` stitches per-tile
:class:`~repro.xbar.engine.CrossbarEngine` instances together and must
produce exactly the same result as one monolithic engine over the whole
matrix — asserted in the test suite. This validates that the tiling and
the offset-group layout compose (every 128-row tile boundary is also an
offset-group boundary whenever ``128 % m == 0``, the paper's setting).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.device.cell import CellType
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.xbar.adc import ADC
from repro.xbar.engine import CrossbarEngine
from repro.xbar.mapper import CrossbarMapper, TileSpec

if TYPE_CHECKING:  # runtime import would create a repro.core <-> repro.xbar cycle
    from typing import Any

    from repro.array.base import ArrayBackend
    from repro.core.offsets import OffsetPlan


class TiledCrossbarEngine:
    """Runs one weight matrix across as many crossbars as it needs."""

    def __init__(self, cells: np.ndarray, plan: "OffsetPlan",
                 registers: np.ndarray, complement: np.ndarray,
                 cell: CellType, mapper: Optional[CrossbarMapper] = None,
                 weight_bits: int = 8, input_bits: int = 8,
                 weight_scale: float = 1.0, weight_zero_point: int = 0,
                 input_scale: float = 1.0, adc: Optional[ADC] = None,
                 backend: Optional[str] = None):
        """Split the (rows, cols, n_cells) cell array into tiles and
        build one :class:`CrossbarEngine` per tile; every tile engine
        dispatches to the same compute ``backend`` (``None`` follows
        the process default — ``vectorized``, ``accel`` or
        ``reference``), each caching its own packed operands."""
        from repro.core.offsets import OffsetPlan

        rows, cols, n_cells = cells.shape
        mapper = mapper or CrossbarMapper(size=128, cells_per_weight=n_cells)
        if mapper.size % plan.granularity != 0 and rows > mapper.size:
            raise ValueError(
                "tiling requires the crossbar size to be a multiple of the "
                "sharing granularity (offset groups must not straddle tiles)")
        self.plan = plan
        self.mapper = mapper
        self.backend = backend
        self.tiles: List[TileSpec] = mapper.tiles(rows, cols)
        self._engines: List[CrossbarEngine] = []
        m = plan.granularity
        for tile in self.tiles:
            g0 = tile.row_start // m
            g1 = -(-tile.row_stop // m)
            sub_plan = OffsetPlan(tile.rows, tile.weight_cols, m)
            self._engines.append(CrossbarEngine(
                cells=cells[tile.row_start:tile.row_stop,
                            tile.col_start:tile.col_stop],
                plan=sub_plan,
                registers=registers[g0:g1, tile.col_start:tile.col_stop],
                complement=complement[g0:g1, tile.col_start:tile.col_stop],
                cell=cell, weight_bits=weight_bits, input_bits=input_bits,
                weight_scale=weight_scale,
                weight_zero_point=weight_zero_point,
                input_scale=input_scale, adc=adc, backend=backend))

    @classmethod
    def from_array(cls, array: "ArrayBackend", plan: "OffsetPlan",
                   registers: np.ndarray, complement: np.ndarray,
                   mapper: Optional[CrossbarMapper] = None,
                   **kwargs: "Any") -> "TiledCrossbarEngine":
        """A tiled engine over a programmed HAL array's current state.

        Reads the ``(rows, cols, n_cells)`` cell image back from
        ``array`` and defaults the
        ``mapper`` to :meth:`CrossbarMapper.for_array` (128-cell tiles
        at the array's ``cells_per_weight``); remaining engine fields
        pass through ``kwargs`` unchanged.
        """
        mapper = mapper or CrossbarMapper.for_array(array)
        return cls(cells=array.read_back(), plan=plan, registers=registers,
                   complement=complement, cell=array.cell, mapper=mapper,
                   **kwargs)

    @property
    def crossbar_count(self) -> int:
        """Number of physical crossbars the matrix occupies."""
        return len(self.tiles)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Drive every tile and digitally combine the partial outputs:
        (N, rows) activations -> (N, cols) outputs."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        obs_metrics.inc("xbar.tiled.vmm_batches", x.shape[0])
        with span("xbar.tiled.forward", tiles=len(self.tiles),
                  backend=self.backend or "default"):
            out = np.zeros((x.shape[0], self.plan.cols))
            for tile, engine in zip(self.tiles, self._engines):
                part = engine.forward(x[:, tile.row_start:tile.row_stop])
                out[:, tile.col_start:tile.col_stop] += part
            return out
