"""Analog-to-digital conversion of bitline currents.

ISAAC reads one cell column per cycle through a sample-and-hold and a
shared ADC. We model a uniform quantizer with saturating full scale;
``bits=None`` gives an ideal (lossless) converter, which is the setting
under which the bit-accurate engine provably matches the fast float
evaluation path (see tests/xbar/test_engine_equivalence.py).
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ADC:
    """Uniform quantizing ADC with configurable resolution.

    Parameters
    ----------
    bits:
        Resolution; ``None`` means ideal (identity).
    full_scale:
        Largest representable input current; larger inputs saturate.
        Required when ``bits`` is set.
    """

    def __init__(self, bits: Optional[int] = None,
                 full_scale: Optional[float] = None):
        """Validate and store the converter configuration."""
        if bits is not None:
            if bits < 1:
                raise ValueError("ADC bits must be >= 1")
            if full_scale is None or full_scale <= 0:
                raise ValueError("a quantizing ADC needs a positive full_scale")
        self.bits = bits
        self.full_scale = full_scale

    @property
    def ideal(self) -> bool:
        """Whether this converter is the lossless identity."""
        return self.bits is None

    @property
    def step(self) -> float:
        """Quantization step size (LSB) of a non-ideal converter."""
        if self.ideal:
            raise ValueError("ideal ADC has no quantization step")
        return self.full_scale / ((1 << self.bits) - 1)

    def convert(self, current: np.ndarray) -> np.ndarray:
        """Digitise ``current``; returns values on the quantizer grid.

        Elementwise: the result has the same shape as ``current``.
        """
        current = np.asarray(current, dtype=np.float64)
        if self.ideal:
            return current
        clipped = np.clip(current, 0.0, self.full_scale)
        return np.round(clipped / self.step) * self.step
