"""One-crossbar vs two-crossbar weight-storage schemes.

The two-crossbar architecture (PRIME-style) stores positive and
negative weights in separate arrays and subtracts their currents; the
one-crossbar architecture (ISAAC-style, used by the paper) shifts all
weights non-negative and subtracts ``shift * sum(x)`` digitally. The
paper's Table III normalises hardware cost by the number of devices
needed per weight; this module provides both layouts and that metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.xbar.mapper import CrossbarMapper


@dataclass(frozen=True)
class SchemeCost:
    """Device cost of a weight-storage scheme."""

    devices_per_weight: int
    crossbars_per_matrix: int


class OneCrossbarScheme:
    """Shifted non-negative storage: one array per weight matrix.

    ``cells_per_weight`` devices represent a weight; the shift is undone
    digitally. This is the architecture the paper's method targets.
    """

    def __init__(self, cells_per_weight: int, crossbar_size: int = 128):
        """Configure the layout for a given cell-per-weight count."""
        self.cells_per_weight = cells_per_weight
        self.mapper = CrossbarMapper(size=crossbar_size,
                                     cells_per_weight=cells_per_weight)

    def devices_per_weight(self) -> int:
        """Devices needed to represent one weight."""
        return self.cells_per_weight

    def cost(self, rows: int, cols: int) -> SchemeCost:
        """Device cost of mapping a (rows, cols) weight matrix."""
        return SchemeCost(self.cells_per_weight, self.mapper.count(rows, cols))

    def split(self, q_shifted: np.ndarray) -> np.ndarray:
        """Identity — shifted weights are stored directly (same shape
        as ``q_shifted``)."""
        return np.asarray(q_shifted)


class TwoCrossbarScheme:
    """Positive/negative split storage: a crossbar pair per matrix.

    A signed integer weight q is stored as (max(q, 0), max(-q, 0)); the
    output is the current difference. Doubles the device count — the
    implicit fault-tolerance-for-cost trade the paper argues against.
    """

    def __init__(self, cells_per_weight: int, crossbar_size: int = 128):
        """Configure the layout for a given cell-per-weight count."""
        self.cells_per_weight = cells_per_weight
        self.mapper = CrossbarMapper(size=crossbar_size,
                                     cells_per_weight=cells_per_weight)

    def devices_per_weight(self) -> int:
        """Devices needed to represent one weight (two arrays' worth)."""
        return 2 * self.cells_per_weight

    def cost(self, rows: int, cols: int) -> SchemeCost:
        """Device cost of mapping a (rows, cols) weight matrix."""
        return SchemeCost(2 * self.cells_per_weight,
                          2 * self.mapper.count(rows, cols))

    def split(self, q_signed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Signed integers -> (positive array, negative array), each
        with the same shape as ``q_signed``."""
        q = np.asarray(q_signed)
        return np.maximum(q, 0), np.maximum(-q, 0)

    def combine(self, z_pos: np.ndarray, z_neg: np.ndarray) -> np.ndarray:
        """Subtract the negative crossbar's output current
        (elementwise; both inputs share one shape)."""
        return np.asarray(z_pos) - np.asarray(z_neg)


def normalized_crossbar_number(devices_per_weight: int,
                               baseline_devices_per_weight: int) -> float:
    """Table III's metric: crossbar count relative to a baseline scheme.

    "The number of crossbars needed is roughly proportional to the
    number of devices used to represent a weight" (Section IV-C2).
    """
    if baseline_devices_per_weight < 1 or devices_per_weight < 1:
        raise ValueError("device counts must be positive")
    return devices_per_weight / baseline_devices_per_weight
