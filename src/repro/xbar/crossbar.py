"""A physical RRAM crossbar array.

Holds one conductance value per (wordline, bitline) cell — in the
normalised "weight units" of :mod:`repro.device.cell` — and computes
Kirchhoff-law column currents for a given wordline drive vector. The
paper's power-saving constraint that only a limited number of wordlines
are activated per cycle (Section III-A) is modelled by
:meth:`Crossbar.vmm_grouped`, which processes the rows in activation
groups and reports the per-group partial currents the digital-offset
adder trees consume.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.contracts import check_shapes


class Crossbar:
    """An R x C array of programmable conductances."""

    def __init__(self, rows: int, cols: int):
        """Allocate a zeroed (rows, cols) conductance array."""
        if rows < 1 or cols < 1:
            raise ValueError("crossbar dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self._g = np.zeros((rows, cols))

    @property
    def conductances(self) -> np.ndarray:
        """The stored (rows, cols) conductance matrix (weight units)."""
        return self._g

    def write(self, conductances: np.ndarray) -> None:
        """Store a full conductance image (shape must match exactly)."""
        conductances = np.asarray(conductances, dtype=np.float64)
        if conductances.shape != (self.rows, self.cols):
            raise ValueError(
                f"expected shape {(self.rows, self.cols)}, got {conductances.shape}")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        self._g = conductances.copy()

    def write_region(self, conductances: np.ndarray, row0: int = 0,
                     col0: int = 0) -> None:
        """Store a sub-image with its top-left corner at (row0, col0)."""
        conductances = np.asarray(conductances, dtype=np.float64)
        r, c = conductances.shape
        if row0 < 0 or col0 < 0 or row0 + r > self.rows or col0 + c > self.cols:
            raise ValueError("region does not fit in the crossbar")
        if np.any(conductances < 0):
            raise ValueError("conductances must be non-negative")
        self._g[row0:row0 + r, col0:col0 + c] = conductances

    @check_shapes("(...,r)->(...,c)", arg_names=["x"])
    def vmm(self, x: np.ndarray, active_rows: Optional[np.ndarray] = None) -> np.ndarray:
        """Column currents for drive vector(s) ``x``.

        ``x`` has shape (..., rows); rows outside ``active_rows`` (a
        boolean mask or index array) contribute nothing. Returns
        (..., cols).
        """
        x = np.asarray(x, dtype=np.float64)
        if x.shape[-1] != self.rows:
            raise ValueError(f"drive vector needs {self.rows} entries")
        if active_rows is not None:
            active_rows = np.asarray(active_rows)
            if active_rows.dtype == bool:
                # Already a mask — use it directly (hot path: no
                # zeros() allocation + fancy-index round trip).
                if active_rows.shape != (self.rows,):
                    raise ValueError(
                        f"boolean row mask must have shape {(self.rows,)}, "
                        f"got {active_rows.shape}")
                mask = active_rows
            else:
                mask = np.zeros(self.rows, dtype=bool)
                mask[active_rows] = True
            x = x * mask
        return x @ self._g

    @check_shapes("(...,r)->(...,g,c)", arg_names=["x"])
    def vmm_grouped(self, x: np.ndarray, group_rows: int) -> np.ndarray:
        """Per-activation-group partial currents.

        Splits the rows into consecutive groups of ``group_rows``
        (activating one group per cycle, as in the paper) and returns
        shape (..., n_groups, cols) — the partial sums that are later
        accumulated, and to which per-group digital offsets are added.
        """
        if group_rows < 1:
            raise ValueError("group_rows must be >= 1")
        x = np.asarray(x, dtype=np.float64)
        n_groups = -(-self.rows // group_rows)
        out = np.empty(x.shape[:-1] + (n_groups, self.cols))
        for gi in range(n_groups):
            lo = gi * group_rows
            hi = min(lo + group_rows, self.rows)
            out[..., gi, :] = x[..., lo:hi] @ self._g[lo:hi]
        return out
