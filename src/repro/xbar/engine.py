"""Bit-accurate crossbar inference engine for one weight matrix.

This models the full ISAAC-style datapath of Fig. 1(b) and Fig. 4:

* inputs are quantized and fed bit-serially (1 input bit per cycle);
* each weight is bit-sliced across ``cells_per_weight`` physical columns;
* only ``m`` wordlines (one activation group) are driven per cycle;
* each cell-column current passes through the ADC;
* shift-and-add accumulates over input bits and cell significance;
* the digital-offset path adds ``b_g * sum(x in group g)`` (Eq. 7);
* complemented groups are post-processed as ``(2^n - 1) * sum(x) - z'``
  (Section III-C);
* the ISAAC weight shift subtracts ``zero_point * sum(x)`` at the end.

The engine owns the *semantics* of this pipeline; the arithmetic itself
is executed by the active compute backend
(:func:`repro.backend.get_backend` — the loop-based ``reference``
kernels, the batched ``vectorized`` ones, or the bit-plane-packed
``accel`` GEMMs with optional numba/torch offload). All
forward-invariant state (cell tensor, significances, registers,
complement algebra, and the packed weight/significance tensors the
accel backend contracts against) is precomputed once at construction
into :class:`repro.backend.EngineOperands`, so repeated ``forward``
calls — and every trial or served request after programming —
recompute nothing.

With an ideal ADC the result equals the fast float path used by
:mod:`repro.core.crossbar_layers` exactly (up to float rounding) — the
equivalence is asserted in the test suite. With a finite-resolution ADC
this engine supports the readout ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from typing import TYPE_CHECKING

from repro.backend import EngineOperands, get_backend
from repro.device.cell import CellType
from repro.obs import metrics as obs_metrics
from repro.obs.trace import span
from repro.quant.bitslice import cell_significances
from repro.utils.contracts import check_shapes
from repro.xbar.adc import ADC

if TYPE_CHECKING:  # runtime import would create a repro.core <-> repro.xbar cycle
    from typing import Any

    from repro.array.base import ArrayBackend
    from repro.core.offsets import OffsetPlan


@dataclass
class CrossbarEngine:
    """Executes VMM for one deployed weight matrix, cycle-faithfully.

    Parameters
    ----------
    cells:
        Noisy per-cell conductances, shape (rows, cols, n_cells) — the
        output of :meth:`repro.device.DeviceModel.program_cells`.
    plan:
        Offset sharing plan (rows grouped at granularity m).
    registers:
        Digital offsets, shape (n_groups, cols), integer-valued.
    complement:
        Boolean mask (n_groups, cols): groups stored in complement form.
    cell:
        Cell technology (for significances).
    weight_bits / input_bits:
        Bit widths of weights and inputs (both 8 in the paper).
    weight_scale / weight_zero_point / input_scale:
        Dequantization parameters.
    adc:
        ADC applied to every cell-column group current.
    backend:
        Compute-backend name executing the kernels; ``None`` follows
        the process default (``REPRO_BACKEND`` / ``--backend``).
    """

    cells: np.ndarray
    plan: "OffsetPlan"
    registers: np.ndarray
    complement: np.ndarray
    cell: CellType
    weight_bits: int = 8
    input_bits: int = 8
    weight_scale: float = 1.0
    weight_zero_point: int = 0
    input_scale: float = 1.0
    adc: Optional[ADC] = None
    backend: Optional[str] = None

    def __post_init__(self):
        rows, cols, n_cells = self.cells.shape
        if (rows, cols) != (self.plan.rows, self.plan.cols):
            raise ValueError("cells shape does not match the offset plan")
        expected = (self.plan.n_groups, self.plan.cols)
        if self.registers.shape != expected:
            raise ValueError(f"registers must be {expected}")
        if self.complement.shape != expected:
            raise ValueError(f"complement mask must be {expected}")
        if self.adc is None:
            self.adc = ADC()
        if self.backend is not None:
            get_backend(self.backend)    # unknown names fail at build time
        self._significance = cell_significances(self.weight_bits, self.cell.bits)
        if len(self._significance) != n_cells:
            raise ValueError("cell count inconsistent with bit widths")
        # Forward-invariant operand cache shared by all backends.
        self._operands = EngineOperands(
            cells=self.cells, significance=self._significance,
            registers=self.registers, complement=self.complement,
            granularity=self.plan.granularity, input_bits=self.input_bits,
            weight_qmax=self.weight_qmax,
            weight_zero_point=self.weight_zero_point, adc=self.adc)

    @classmethod
    def from_array(cls, array: "ArrayBackend", plan: "OffsetPlan",
                   registers: np.ndarray, complement: np.ndarray,
                   **kwargs: "Any") -> "CrossbarEngine":
        """An engine over a programmed HAL array's current state.

        Reads the (rows, cols, n_cells) cell image back from ``array``
        (a :class:`repro.array.base.ArrayBackend`) and takes the cell
        technology from it; every other engine field passes through
        ``kwargs`` unchanged.
        """
        return cls(cells=array.read_back(), plan=plan, registers=registers,
                   complement=complement, cell=array.cell, **kwargs)

    @property
    def weight_qmax(self) -> int:
        """Largest integer weight code, ``2^weight_bits - 1``."""
        return (1 << self.weight_bits) - 1

    @property
    def input_qmax(self) -> int:
        """Largest integer input code, ``2^input_bits - 1``."""
        return (1 << self.input_bits) - 1

    def quantize_inputs(self, x: np.ndarray) -> np.ndarray:
        """Float activations -> integer input codes (same shape as ``x``)."""
        return np.clip(np.round(np.asarray(x) / self.input_scale),
                       0, self.input_qmax).astype(np.int64)

    @check_shapes("(...,r)->(_,c)", arg_names=["x"])
    @span("xbar.engine.forward")
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the full pipeline on float activations (N, rows) -> (N, cols).

        Quantizes the inputs, hands the integer-domain VMM (bit-serial
        accumulation + Eq. 7 offset/complement post-processing + the
        ISAAC zero-point correction) to the active backend's
        ``engine_vmm`` kernel over the cached operands, then
        dequantizes.
        """
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        obs_metrics.inc("xbar.engine.vmm_batches", x.shape[0])
        xq = self.quantize_inputs(x)                        # (N, rows)
        z = get_backend(self.backend).engine_vmm(xq, self._operands)
        return self.input_scale * self.weight_scale * z

    def effective_weights(self) -> np.ndarray:
        """The float (rows, cols) weight matrix this engine implements
        (ideal-ADC view).

        Reassembles noisy cells into CRWs (cached on the engine's
        operands), applies offsets and complement, and dequantizes —
        the fast evaluation path's W.
        """
        crw = self._operands.crw                            # (rows, cols)
        q_eff = crw + self.plan.expand(self.registers)
        comp_rows = self.plan.expand(self.complement.astype(np.float64))
        q_eff = comp_rows * (self.weight_qmax - q_eff) + (1 - comp_rows) * q_eff
        return self.weight_scale * (q_eff - self.weight_zero_point)
