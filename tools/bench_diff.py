"""Benchmark-regression gate over ``repro.bench.sidecar/v1`` JSON files.

Compares the wall-clock time (``elapsed_s``) of each benchmark sidecar
in ``--current`` against the same-named sidecar in ``--baseline`` and
fails (exit 1) when any bench slowed down by more than
``--max-slowdown``x. CI runs this against the previous main-branch
sidecars restored from the actions cache, so a PR that regresses the
benchmark suite's runtime is flagged before merge.

Design points:

- stdlib only — the gate must run on a bare CI python before any
  project dependency is installed.
- A missing baseline directory (first run, cache eviction) is not an
  error unless ``--require-baseline`` is passed: the gate reports
  "no baseline" and exits 0 so bootstrap runs stay green.
- Benches shorter than ``--min-baseline-s`` in the baseline are
  compared but never fail the gate — sub-second runs are dominated by
  interpreter startup noise, not by the code under test.
- New benches (no baseline entry) and removed benches (baseline entry
  with no current run) are reported informationally, never fatally.
- Sidecars are only gated against a baseline recorded on the **same
  compute backend**: vectorized-vs-reference timings differ by orders
  of magnitude, so a backend switch would read as a huge (and bogus)
  regression. Mismatched pairs are reported as ``backend-skip``;
  sidecars predating the ``backend`` field compare against anything.

Usage::

    python -m tools.bench_diff --baseline DIR --current DIR \
        [--max-slowdown 1.5] [--min-baseline-s 2.0] [--require-baseline]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: Sidecar schema this tool understands (see benchmarks/_common.py).
SIDECAR_SCHEMA = "repro.bench.sidecar/v1"


@dataclass
class BenchEntry:
    """One parsed sidecar: the bench name and its wall-clock seconds."""

    name: str
    elapsed_s: float
    preset: str
    backend: Optional[str]
    path: Path


@dataclass
class Comparison:
    """Baseline-vs-current verdict for one bench."""

    name: str
    baseline_s: float
    current_s: float
    ratio: float
    skipped_short: bool
    skipped_backend: bool
    regressed: bool


def load_sidecars(directory: Path) -> Dict[str, BenchEntry]:
    """Parse every ``*.json`` sidecar under ``directory`` (recursively).

    Files that are not valid sidecars (wrong schema, missing fields,
    broken JSON) are skipped with a note on stderr — artifact
    directories often carry unrelated JSON.
    """
    entries: Dict[str, BenchEntry] = {}
    for path in sorted(directory.rglob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench-diff: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        if not isinstance(payload, dict) \
                or payload.get("schema") != SIDECAR_SCHEMA:
            continue
        name = payload.get("name")
        elapsed = payload.get("elapsed_s")
        if not isinstance(name, str) \
                or not isinstance(elapsed, (int, float)):
            print(f"bench-diff: skipping malformed sidecar {path}",
                  file=sys.stderr)
            continue
        backend = payload.get("backend")
        entries[name] = BenchEntry(
            name=name, elapsed_s=float(elapsed),
            preset=str(payload.get("preset", "?")),
            backend=str(backend) if isinstance(backend, str) else None,
            path=path)
    return entries


def _backends_comparable(baseline: BenchEntry, current: BenchEntry) -> bool:
    """Whether two sidecars were recorded on the same compute backend.

    Sidecars written before the ``backend`` field existed (``None``)
    are comparable with anything — a missing tag must not silently
    drop every comparison after an upgrade.
    """
    if baseline.backend is None or current.backend is None:
        return True
    return baseline.backend == current.backend


def compare(baseline: Dict[str, BenchEntry],
            current: Dict[str, BenchEntry],
            max_slowdown: float,
            min_baseline_s: float) -> List[Comparison]:
    """Compare every bench present in both sets; sorted worst-first."""
    out: List[Comparison] = []
    for name in sorted(set(baseline) & set(current)):
        base_s = baseline[name].elapsed_s
        cur_s = current[name].elapsed_s
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        skipped_short = base_s < min_baseline_s
        skipped_backend = not _backends_comparable(baseline[name],
                                                   current[name])
        out.append(Comparison(
            name=name, baseline_s=base_s, current_s=cur_s, ratio=ratio,
            skipped_short=skipped_short, skipped_backend=skipped_backend,
            regressed=(not skipped_short and not skipped_backend
                       and ratio > max_slowdown)))
    out.sort(key=lambda c: c.ratio, reverse=True)
    return out


def _fmt_row(c: Comparison) -> str:
    flag = "REGRESSED" if c.regressed else \
        ("backend-skip" if c.skipped_backend else
         "short-skip" if c.skipped_short else "ok")
    return (f"  {c.name:<20}{c.baseline_s:>10.2f}s{c.current_s:>10.2f}s"
            f"{c.ratio:>8.2f}x  {flag}")


def run_diff(baseline_dir: Path, current_dir: Path, max_slowdown: float,
             min_baseline_s: float, require_baseline: bool,
             out=None) -> int:
    """Execute the gate; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if not current_dir.is_dir():
        print(f"bench-diff: current dir {current_dir} does not exist",
              file=sys.stderr)
        return 2
    current = load_sidecars(current_dir)
    if not current:
        print(f"bench-diff: no sidecars found under {current_dir}",
              file=sys.stderr)
        return 2

    if not baseline_dir.is_dir():
        if require_baseline:
            print(f"bench-diff: baseline dir {baseline_dir} missing and "
                  "--require-baseline set", file=sys.stderr)
            return 2
        print(f"bench-diff: no baseline at {baseline_dir} — "
              f"nothing to compare ({len(current)} current benches); "
              "passing.", file=out)
        return 0
    baseline = load_sidecars(baseline_dir)
    if not baseline:
        if require_baseline:
            print(f"bench-diff: no baseline sidecars under {baseline_dir} "
                  "and --require-baseline set", file=sys.stderr)
            return 2
        print(f"bench-diff: baseline dir {baseline_dir} has no sidecars; "
              "passing.", file=out)
        return 0

    comparisons = compare(baseline, current, max_slowdown, min_baseline_s)
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))

    backend_skips = sum(1 for c in comparisons if c.skipped_backend)
    print(f"bench-diff: {len(comparisons)} compared, "
          f"{len(new)} new, {len(gone)} missing, "
          f"{backend_skips} backend-skipped "
          f"(max-slowdown {max_slowdown:.2f}x, "
          f"short floor {min_baseline_s:.1f}s)", file=out)
    if comparisons:
        print(f"  {'bench':<20}{'baseline':>11}{'current':>11}"
              f"{'ratio':>9}", file=out)
        for c in comparisons:
            print(_fmt_row(c), file=out)
    for name in new:
        print(f"  {name:<20} new bench — no baseline, not gated", file=out)
    for name in gone:
        print(f"  {name:<20} in baseline but not in current run", file=out)

    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        worst = regressions[0]
        print(f"bench-diff: FAIL — {len(regressions)} regression(s); "
              f"worst {worst.name} at {worst.ratio:.2f}x "
              f"(limit {max_slowdown:.2f}x)", file=out)
        return 1
    print("bench-diff: OK — no benchmark regressions.", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.bench_diff",
        description="Fail when benchmark sidecars regress vs a baseline.")
    parser.add_argument("--baseline", type=Path, required=True,
                        help="directory of previous-run sidecar JSONs")
    parser.add_argument("--current", type=Path, required=True,
                        help="directory of this run's sidecar JSONs")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="fail when current/baseline exceeds this "
                             "ratio (default 1.5)")
    parser.add_argument("--min-baseline-s", type=float, default=2.0,
                        help="baselines shorter than this are reported "
                             "but never gate (default 2.0)")
    parser.add_argument("--require-baseline", action="store_true",
                        help="treat a missing/empty baseline as an error "
                             "instead of passing")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.max_slowdown <= 0:
        print("bench-diff: --max-slowdown must be > 0", file=sys.stderr)
        return 2
    if args.min_baseline_s < 0:
        print("bench-diff: --min-baseline-s must be >= 0", file=sys.stderr)
        return 2
    return run_diff(args.baseline, args.current, args.max_slowdown,
                    args.min_baseline_s, args.require_baseline)


if __name__ == "__main__":
    sys.exit(main())
