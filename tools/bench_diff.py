"""Benchmark-regression gate over ``repro.bench.sidecar/v1`` JSON files.

Compares the wall-clock time (``elapsed_s``) of each benchmark sidecar
in ``--current`` against the same-named sidecar in ``--baseline`` and
fails (exit 1) when any bench slowed down by more than
``--max-slowdown``x. CI runs this against the previous main-branch
sidecars restored from the actions cache, so a PR that regresses the
benchmark suite's runtime is flagged before merge.

Design points:

- stdlib only — the gate must run on a bare CI python before any
  project dependency is installed.
- A missing baseline directory (first run, cache eviction) is not an
  error unless ``--require-baseline`` is passed: the gate reports
  "no baseline" and exits 0 so bootstrap runs stay green.
- Benches shorter than ``--min-baseline-s`` in the baseline are
  compared but never fail the gate — sub-second runs are dominated by
  interpreter startup noise, not by the code under test.
- New benches (no baseline entry) and removed benches (baseline entry
  with no current run) are reported informationally, never fatally.
- Sidecars are only gated against a baseline recorded on the **same
  compute backend** (and, for the ``accel`` backend, the same resolved
  ``offload_tier``): vectorized-vs-reference timings — or BLAS-vs-numba
  accel timings — differ by orders of magnitude, so a backend or tier
  switch would read as a huge (and bogus) regression. Mismatched pairs
  are reported as ``backend-skip``; sidecars predating the ``backend``
  / ``offload_tier`` fields compare against anything.

Besides the pairwise gate, ``--trend HISTORY.jsonl`` reads the
append-only run log ``benchmarks/_common.py`` maintains
(``repro.bench.history/v1`` rows) and flags **monotonic multi-run
slowdowns**: a bench whose last ``--trend-window`` runs each got at
least ``--trend-step`` slower and whose cumulative drift exceeds
``--max-slowdown`` — creep that no single-commit comparison crosses the
threshold on. The two modes compose: pass ``--trend`` alone for a pure
trend check, or together with ``--baseline``/``--current`` to run both
gates (either failing fails the build).

Usage::

    python -m tools.bench_diff --baseline DIR --current DIR \
        [--max-slowdown 1.5] [--min-baseline-s 2.0] [--require-baseline]
    python -m tools.bench_diff --trend benchmarks/results/history.jsonl \
        [--trend-window 4] [--trend-step 1.02]
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

#: Sidecar schema this tool understands (see benchmarks/_common.py).
SIDECAR_SCHEMA = "repro.bench.sidecar/v1"

#: History row schema the --trend gate understands.
HISTORY_SCHEMA = "repro.bench.history/v1"


@dataclass
class BenchEntry:
    """One parsed sidecar: the bench name and its wall-clock seconds."""

    name: str
    elapsed_s: float
    preset: str
    backend: Optional[str]
    offload_tier: Optional[str]
    path: Path


@dataclass
class Comparison:
    """Baseline-vs-current verdict for one bench."""

    name: str
    baseline_s: float
    current_s: float
    ratio: float
    skipped_short: bool
    skipped_backend: bool
    regressed: bool


def load_sidecars(directory: Path) -> Dict[str, BenchEntry]:
    """Parse every ``*.json`` sidecar under ``directory`` (recursively).

    Files that are not valid sidecars (wrong schema, missing fields,
    broken JSON) are skipped with a note on stderr — artifact
    directories often carry unrelated JSON.
    """
    entries: Dict[str, BenchEntry] = {}
    for path in sorted(directory.rglob("*.json")):
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench-diff: skipping unreadable {path}: {exc}",
                  file=sys.stderr)
            continue
        if not isinstance(payload, dict) \
                or payload.get("schema") != SIDECAR_SCHEMA:
            continue
        name = payload.get("name")
        elapsed = payload.get("elapsed_s")
        if not isinstance(name, str) \
                or not isinstance(elapsed, (int, float)):
            print(f"bench-diff: skipping malformed sidecar {path}",
                  file=sys.stderr)
            continue
        backend = payload.get("backend")
        tier = payload.get("offload_tier")
        entries[name] = BenchEntry(
            name=name, elapsed_s=float(elapsed),
            preset=str(payload.get("preset", "?")),
            backend=str(backend) if isinstance(backend, str) else None,
            offload_tier=str(tier) if isinstance(tier, str) else None,
            path=path)
    return entries


def _backends_comparable(baseline: BenchEntry, current: BenchEntry) -> bool:
    """Whether two sidecars were recorded on the same compute backend
    and (when the accel backend tags one) the same offload tier.

    Sidecars written before the ``backend`` / ``offload_tier`` fields
    existed (``None``) are comparable with anything — a missing tag
    must not silently drop every comparison after an upgrade.
    """
    if baseline.backend is not None and current.backend is not None \
            and baseline.backend != current.backend:
        return False
    if baseline.offload_tier is not None \
            and current.offload_tier is not None \
            and baseline.offload_tier != current.offload_tier:
        return False
    return True


def compare(baseline: Dict[str, BenchEntry],
            current: Dict[str, BenchEntry],
            max_slowdown: float,
            min_baseline_s: float) -> List[Comparison]:
    """Compare every bench present in both sets; sorted worst-first."""
    out: List[Comparison] = []
    for name in sorted(set(baseline) & set(current)):
        base_s = baseline[name].elapsed_s
        cur_s = current[name].elapsed_s
        ratio = cur_s / base_s if base_s > 0 else float("inf")
        skipped_short = base_s < min_baseline_s
        skipped_backend = not _backends_comparable(baseline[name],
                                                   current[name])
        out.append(Comparison(
            name=name, baseline_s=base_s, current_s=cur_s, ratio=ratio,
            skipped_short=skipped_short, skipped_backend=skipped_backend,
            regressed=(not skipped_short and not skipped_backend
                       and ratio > max_slowdown)))
    out.sort(key=lambda c: c.ratio, reverse=True)
    return out


def _fmt_row(c: Comparison) -> str:
    flag = "REGRESSED" if c.regressed else \
        ("backend-skip" if c.skipped_backend else
         "short-skip" if c.skipped_short else "ok")
    return (f"  {c.name:<20}{c.baseline_s:>10.2f}s{c.current_s:>10.2f}s"
            f"{c.ratio:>8.2f}x  {flag}")


def run_diff(baseline_dir: Path, current_dir: Path, max_slowdown: float,
             min_baseline_s: float, require_baseline: bool,
             out=None) -> int:
    """Execute the gate; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if not current_dir.is_dir():
        print(f"bench-diff: current dir {current_dir} does not exist",
              file=sys.stderr)
        return 2
    current = load_sidecars(current_dir)
    if not current:
        print(f"bench-diff: no sidecars found under {current_dir}",
              file=sys.stderr)
        return 2

    if not baseline_dir.is_dir():
        if require_baseline:
            print(f"bench-diff: baseline dir {baseline_dir} missing and "
                  "--require-baseline set", file=sys.stderr)
            return 2
        print(f"bench-diff: no baseline at {baseline_dir} — "
              f"nothing to compare ({len(current)} current benches); "
              "passing.", file=out)
        return 0
    baseline = load_sidecars(baseline_dir)
    if not baseline:
        if require_baseline:
            print(f"bench-diff: no baseline sidecars under {baseline_dir} "
                  "and --require-baseline set", file=sys.stderr)
            return 2
        print(f"bench-diff: baseline dir {baseline_dir} has no sidecars; "
              "passing.", file=out)
        return 0

    comparisons = compare(baseline, current, max_slowdown, min_baseline_s)
    new = sorted(set(current) - set(baseline))
    gone = sorted(set(baseline) - set(current))

    backend_skips = sum(1 for c in comparisons if c.skipped_backend)
    print(f"bench-diff: {len(comparisons)} compared, "
          f"{len(new)} new, {len(gone)} missing, "
          f"{backend_skips} backend-skipped "
          f"(max-slowdown {max_slowdown:.2f}x, "
          f"short floor {min_baseline_s:.1f}s)", file=out)
    if comparisons:
        print(f"  {'bench':<20}{'baseline':>11}{'current':>11}"
              f"{'ratio':>9}", file=out)
        for c in comparisons:
            print(_fmt_row(c), file=out)
    for name in new:
        print(f"  {name:<20} new bench — no baseline, not gated", file=out)
    for name in gone:
        print(f"  {name:<20} in baseline but not in current run", file=out)

    regressions = [c for c in comparisons if c.regressed]
    if regressions:
        worst = regressions[0]
        print(f"bench-diff: FAIL — {len(regressions)} regression(s); "
              f"worst {worst.name} at {worst.ratio:.2f}x "
              f"(limit {max_slowdown:.2f}x)", file=out)
        return 1
    print("bench-diff: OK — no benchmark regressions.", file=out)
    return 0


@dataclass
class TrendVerdict:
    """The trailing-window drift verdict for one bench series."""

    name: str
    preset: str
    backend: Optional[str]
    offload_tier: Optional[str]
    window: List[float]          # elapsed_s, oldest first
    shas: List[Optional[str]]
    flagged: bool
    skipped_short: bool

    @property
    def cumulative(self) -> float:
        first = self.window[0]
        return self.window[-1] / first if first > 0 else float("inf")


def load_history(path: Path) -> List[dict]:
    """Parse history rows, skipping non-history lines with a note."""
    rows: List[dict] = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if not line.strip():
            continue
        try:
            row = json.loads(line)
        except json.JSONDecodeError:
            print(f"bench-diff: skipping malformed history line "
                  f"{path}:{lineno}", file=sys.stderr)
            continue
        if not isinstance(row, dict) \
                or row.get("schema") != HISTORY_SCHEMA:
            continue
        if not isinstance(row.get("name"), str) \
                or not isinstance(row.get("elapsed_s"), (int, float)):
            print(f"bench-diff: skipping malformed history row "
                  f"{path}:{lineno}", file=sys.stderr)
            continue
        rows.append(row)
    return rows


def trend_verdicts(rows: List[dict], window: int, step_ratio: float,
                   max_slowdown: float,
                   min_baseline_s: float) -> List[TrendVerdict]:
    """Per-series drift verdicts over each series' trailing window.

    A series is one ``(name, preset, backend, offload_tier)`` group —
    a preset, backend or accel-offload-tier switch must not read as a
    slowdown. A series is flagged
    when its last ``window`` runs each slowed by at least
    ``step_ratio`` *and* the cumulative first→last drift exceeds
    ``max_slowdown`` — exactly the creep the pairwise gate is blind to.
    Series whose every point sits under ``min_baseline_s`` are noise
    and never flag.
    """
    groups: Dict[tuple, List[dict]] = {}
    for row in rows:
        key = (row["name"], row.get("preset"), row.get("backend"),
               row.get("offload_tier"))
        groups.setdefault(key, []).append(row)
    verdicts: List[TrendVerdict] = []
    for (name, preset, backend, tier), series in sorted(
            groups.items(), key=lambda kv: kv[0][0]):
        series.sort(key=lambda r: r.get("created_unix", 0.0))
        tail = series[-window:]
        elapsed = [float(r["elapsed_s"]) for r in tail]
        shas = [r.get("git_sha") for r in tail]
        skipped_short = max(elapsed) < min_baseline_s
        flagged = False
        if len(elapsed) >= 3 and not skipped_short:
            steps_up = all(b >= a * step_ratio
                           for a, b in zip(elapsed, elapsed[1:]))
            cumulative = elapsed[-1] / elapsed[0] if elapsed[0] > 0 \
                else float("inf")
            flagged = steps_up and cumulative > max_slowdown
        verdicts.append(TrendVerdict(
            name=name, preset=str(preset), backend=backend,
            offload_tier=tier, window=elapsed, shas=shas, flagged=flagged,
            skipped_short=skipped_short))
    return verdicts


def _short_sha(sha: Optional[str]) -> str:
    return sha[:9] if isinstance(sha, str) else "?"


def run_trend(history_path: Path, window: int, step_ratio: float,
              max_slowdown: float, min_baseline_s: float,
              out=None) -> int:
    """Execute the trend gate; returns the process exit code."""
    out = out if out is not None else sys.stdout
    if not history_path.is_file():
        print(f"bench-diff: no history at {history_path} — "
              "nothing to trend; passing.", file=out)
        return 0
    rows = load_history(history_path)
    if not rows:
        print(f"bench-diff: {history_path} holds no history rows; "
              "passing.", file=out)
        return 0
    verdicts = trend_verdicts(rows, window, step_ratio, max_slowdown,
                              min_baseline_s)
    print(f"bench-diff: trend over last {window} run(s) of "
          f"{len(verdicts)} series (step {step_ratio:.2f}x, "
          f"cumulative limit {max_slowdown:.2f}x)", file=out)
    for v in verdicts:
        shape = " -> ".join(f"{e:.2f}s" for e in v.window)
        flag = "TRENDING UP" if v.flagged else \
            ("short-skip" if v.skipped_short else "ok")
        label = v.backend or "?"
        if v.offload_tier:
            label += f"+{v.offload_tier}"
        print(f"  {v.name:<20}[{v.preset}/{label}] "
              f"{shape}  ({v.cumulative:.2f}x)  {flag}", file=out)
        if v.flagged:
            print(f"  {'':<20}shas: "
                  f"{' -> '.join(_short_sha(s) for s in v.shas)}", file=out)
    trending = [v for v in verdicts if v.flagged]
    if trending:
        print(f"bench-diff: FAIL — {len(trending)} series trending up "
              f"monotonically past {max_slowdown:.2f}x cumulative.",
              file=out)
        return 1
    print("bench-diff: OK — no monotonic slowdown trends.", file=out)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.bench_diff",
        description="Fail when benchmark sidecars regress vs a baseline.")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="directory of previous-run sidecar JSONs")
    parser.add_argument("--current", type=Path, default=None,
                        help="directory of this run's sidecar JSONs")
    parser.add_argument("--trend", type=Path, default=None,
                        metavar="HISTORY",
                        help="history.jsonl to scan for monotonic "
                             "multi-run slowdowns (repro.bench.history/v1)")
    parser.add_argument("--trend-window", type=int, default=4,
                        help="trailing runs per series the trend gate "
                             "inspects (default 4)")
    parser.add_argument("--trend-step", type=float, default=1.02,
                        help="minimum per-run ratio for a step to count "
                             "as 'slower' (default 1.02)")
    parser.add_argument("--max-slowdown", type=float, default=1.5,
                        help="fail when current/baseline exceeds this "
                             "ratio (default 1.5)")
    parser.add_argument("--min-baseline-s", type=float, default=2.0,
                        help="baselines shorter than this are reported "
                             "but never gate (default 2.0)")
    parser.add_argument("--require-baseline", action="store_true",
                        help="treat a missing/empty baseline as an error "
                             "instead of passing")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.max_slowdown <= 0:
        print("bench-diff: --max-slowdown must be > 0", file=sys.stderr)
        return 2
    if args.min_baseline_s < 0:
        print("bench-diff: --min-baseline-s must be >= 0", file=sys.stderr)
        return 2
    pairwise = args.baseline is not None or args.current is not None
    if pairwise and (args.baseline is None or args.current is None):
        parser.error("--baseline and --current go together")
    if not pairwise and args.trend is None:
        parser.error("pass --baseline/--current, --trend, or both")
    if args.trend_window < 3:
        print("bench-diff: --trend-window must be >= 3 (a trend needs "
              "at least two steps)", file=sys.stderr)
        return 2
    code = 0
    if pairwise:
        code = run_diff(args.baseline, args.current, args.max_slowdown,
                        args.min_baseline_s, args.require_baseline)
    if args.trend is not None and code in (0, 1):
        trend_code = run_trend(args.trend, args.trend_window,
                               args.trend_step, args.max_slowdown,
                               args.min_baseline_s)
        code = max(code, trend_code)
    return code


if __name__ == "__main__":
    sys.exit(main())
