"""Violation record and text rendering."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.code)
