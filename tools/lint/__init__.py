"""repro-lint: custom static analysis for the simulation stack.

Twelve rules encode the invariants the numpy-heavy pipeline (device
variation -> VAWO/PWT offsets -> crossbar eval) depends on — the
mistakes that corrupt accuracy numbers without crashing. R1-R7 are
single-file pattern rules; R8-R12 are AST + dataflow rules that share
one :class:`~tools.lint.callgraph.ModuleGraph` built per run (single
parse pass, cached by file content hash).

======  ==============================================================
R1      No direct ``np.random.*`` / ``default_rng()`` calls outside
        ``repro/utils/rng.py`` — all randomness flows through the
        seedable ``make_rng`` / ``spawn_rngs`` utilities.
R2      No mutable default arguments.
R3      Public functions in ``repro/core``, ``repro/device`` and
        ``repro/xbar`` carry complete type annotations and a docstring
        that documents array shapes.
R4      No silent dtype narrowing of weight/conductance arrays
        (``np.asarray(w, dtype=np.float32)``) without ``# dtype-ok``.
R5      ``np.savez`` / ``np.load`` paths must show an explicit ``.npz``
        suffix (or ``# npz-ok``) — the save/load suffix-mismatch class
        of bug that broke the seed's tier-1 run.
R6      No bare ``print()`` inside the ``repro`` library — output goes
        through ``repro.utils.logging`` or the ``repro.obs`` exporters
        (benchmarks/examples/tests/tools are exempt; ``# print-ok``
        marks a deliberate exception).
R7      No ``np.lib.stride_tricks`` (``as_strided`` /
        ``sliding_window_view``) outside ``repro/backend`` — window
        kernels live behind the compute-backend dispatch whose
        reference equivalence the test suite guarantees
        (``# stride-ok`` marks a vetted exception).
R8      Cache-salt drift: the normalized AST hash of every memoized
        stage (``Deployer._stage`` / literal ``stage_key`` anchors plus
        strict transitive ``repro.*`` callees) must match the committed
        ``tools/stage_hashes.json`` — a stage-body edit without a
        ``STAGE_VERSIONS`` bump fails the gate. After a legitimate
        bump, regenerate with ``python -m tools.lint --update-baseline``
        (workflow: DESIGN.md §4c).
R9      Worker RNG discipline: no generator constructed (or module
        global consumed) outside the spawned per-trial stream in code
        reachable from the ``repro.parallel`` worker entrypoints
        (``# rng-ok — reason`` marks a vetted exception).
R10     Fork-safety: no module-level state written by worker-reachable
        code, and every ``shared_memory`` segment pairs with
        ``close``/``unlink`` (``# fork-ok — reason``).
R11     Span hygiene: ``repro.obs`` spans open structurally — as a
        ``with`` context or decorator, never free-floating or via raw
        ``TRACER.push`` (``# span-ok — reason``).
R12     Exception hygiene: broad ``except Exception`` requires the
        justified ``# noqa: BLE001 — reason`` marker; bare ``except:``
        is never allowed.
======  ==============================================================

Run it as ``python -m tools.lint src/ tests/ benchmarks/``; add
``--json lint-report.json`` for the machine-readable sidecar CI
uploads. Suppress a single line with ``# repro-lint: disable=R1`` (or
``disable`` for all rules), a whole file with
``# repro-lint: disable-file=R3``.
"""

from tools.lint.report import Violation
from tools.lint.rules import FILE_RULES, Rule
from tools.lint.runner import (ALL_RULES, check_file, check_paths,
                               check_source, main)

__all__ = ["ALL_RULES", "FILE_RULES", "Rule", "Violation", "check_file",
           "check_paths", "check_source", "main"]
