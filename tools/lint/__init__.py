"""repro-lint: custom static analysis for the simulation stack.

Seven AST-based rules encode the invariants the numpy-heavy pipeline
(device variation -> VAWO/PWT offsets -> crossbar eval) depends on —
the mistakes that corrupt accuracy numbers without crashing:

======  ==============================================================
R1      No direct ``np.random.*`` / ``default_rng()`` calls outside
        ``repro/utils/rng.py`` — all randomness flows through the
        seedable ``make_rng`` / ``spawn_rngs`` utilities.
R2      No mutable default arguments.
R3      Public functions in ``repro/core``, ``repro/device`` and
        ``repro/xbar`` carry complete type annotations and a docstring
        that documents array shapes.
R4      No silent dtype narrowing of weight/conductance arrays
        (``np.asarray(w, dtype=np.float32)``) without ``# dtype-ok``.
R5      ``np.savez`` / ``np.load`` paths must show an explicit ``.npz``
        suffix (or ``# npz-ok``) — the save/load suffix-mismatch class
        of bug that broke the seed's tier-1 run.
R6      No bare ``print()`` inside the ``repro`` library — output goes
        through ``repro.utils.logging`` or the ``repro.obs`` exporters
        (benchmarks/examples/tests/tools are exempt; ``# print-ok``
        marks a deliberate exception).
R7      No ``np.lib.stride_tricks`` (``as_strided`` /
        ``sliding_window_view``) outside ``repro/backend`` — window
        kernels live behind the compute-backend dispatch whose
        reference equivalence the test suite guarantees
        (``# stride-ok`` marks a vetted exception).
======  ==============================================================

Run it as ``python -m tools.lint src/ tests/ benchmarks/``. Suppress a
single line with ``# repro-lint: disable=R1`` (or ``disable`` for all
rules), a whole file with ``# repro-lint: disable-file=R3``.
"""

from tools.lint.report import Violation
from tools.lint.rules import ALL_RULES, Rule
from tools.lint.runner import check_file, check_paths, check_source, main

__all__ = ["ALL_RULES", "Rule", "Violation", "check_file", "check_paths",
           "check_source", "main"]
