"""File collection, rule execution and the command-line front end."""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from tools.lint.context import FileContext
from tools.lint.report import Violation
from tools.lint.rules import ALL_RULES, Rule

_SKIP_DIR_NAMES = {"__pycache__", ".git", ".cache", ".mypy_cache",
                   ".ruff_cache", ".pytest_cache", "build", "dist"}


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIR_NAMES for part in sub.parts):
                    out.append(sub)
        elif p.suffix == ".py":
            out.append(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return out


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if not select:
        return list(ALL_RULES)
    wanted = {s.strip().upper() for s in select}
    unknown = wanted - {r.code for r in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [r for r in ALL_RULES if r.code in wanted]


def check_source(source: str, path: str = "<string>",
                 select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint a source string; the programmatic API the tests drive."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, code="E999",
                          message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path, source, tree)
    violations: List[Violation] = []
    for rule in _select_rules(select):
        violations.extend(rule.run(ctx))
    return sorted(violations, key=Violation.sort_key)


def check_file(path: Path,
               select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one file from disk."""
    source = Path(path).read_text(encoding="utf-8")
    return check_source(source, str(path), select=select)


def check_paths(paths: Sequence[str],
                select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint every ``.py`` file reachable from ``paths``."""
    violations: List[Violation] = []
    for file_path in collect_files(paths):
        violations.extend(check_file(file_path, select=select))
    return violations


def _print_rule_listing(out) -> None:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.name}", file=out)
        print(f"    {rule.description}", file=out)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m tools.lint``."""
    parser = argparse.ArgumentParser(
        prog="tools.lint",
        description="repro-lint: project-specific static analysis "
                    "(rules R1-R7; see tools/lint/__init__.py)")
    parser.add_argument("paths", nargs="*", default=["src", "tests",
                                                     "benchmarks"],
                        help="files or directories to lint "
                             "(default: src tests benchmarks)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_listing(sys.stdout)
        return 0

    select = args.select.split(",") if args.select else None
    try:
        files = collect_files(args.paths)
        violations: List[Violation] = []
        for file_path in files:
            violations.extend(check_file(file_path, select=select))
    except (FileNotFoundError, ValueError) as exc:
        print(f"tools.lint: {exc}", file=sys.stderr)
        return 2

    violations.sort(key=Violation.sort_key)
    for violation in violations:
        print(violation.render())
    if not args.quiet:
        status = "clean" if not violations else "found issues"
        print(f"repro-lint: {len(files)} files checked, "
              f"{len(violations)} violation(s) — {status}",
              file=sys.stderr)
    return 1 if violations else 0
