"""File collection, multi-pass rule execution and the CLI front end.

The run is staged so every rule shares one set of parsed facts:

1. collect ``.py`` files and build (cached) :class:`FileContext`
   objects — one parse per file content (:func:`~tools.lint.callgraph.
   get_context`);
2. assemble the project-wide :class:`~tools.lint.callgraph.ModuleGraph`
   from those contexts;
3. run the single-file rules (R1-R7, R11, R12) per context, then the
   graph-backed project rules (R8-R10) once against the graph.

Besides the human-readable text report, ``--json PATH`` writes a
machine-readable sidecar (counts per rule + every finding) that CI
uploads as an artifact, and ``--update-baseline`` re-seeds the R8
stage-hash baseline (``tools/stage_hashes.json``) after a legitimate
``STAGE_VERSIONS`` bump.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from tools.lint.ast_rules import AST_RULES, LintOptions, ProjectRule
from tools.lint.callgraph import ModuleGraph, get_context
from tools.lint.context import FileContext
from tools.lint.hashing import stage_hashes, write_baseline
from tools.lint.report import Violation
from tools.lint.rules import FILE_RULES, Rule

#: Every rule, file-scoped and graph-scoped, in gate order.
ALL_RULES: Tuple[Rule, ...] = (*FILE_RULES, *AST_RULES)

#: ``fixtures`` is skipped so the deliberately-violating golden fixture
#: modules under ``tests/tools/fixtures/`` never fail a tree-wide run.
_SKIP_DIR_NAMES = {"__pycache__", ".git", ".cache", ".mypy_cache",
                   ".ruff_cache", ".pytest_cache", "build", "dist",
                   "fixtures"}

#: Committed R8 baseline, resolved relative to this checkout.
DEFAULT_STAGE_BASELINE = Path(__file__).resolve().parents[1] / "stage_hashes.json"


def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            for sub in sorted(p.rglob("*.py")):
                if not any(part in _SKIP_DIR_NAMES for part in sub.parts):
                    out.append(sub)
        elif p.suffix == ".py":
            out.append(p)
        elif not p.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return out


def _select_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    if not select:
        return list(ALL_RULES)
    wanted = {s.strip().upper() for s in select}
    unknown = wanted - {r.code for r in ALL_RULES}
    if unknown:
        raise ValueError(f"unknown rule code(s): {', '.join(sorted(unknown))}")
    return [r for r in ALL_RULES if r.code in wanted]


def _build_contexts(files: Sequence[Path],
                    ) -> Tuple[List[FileContext], List[Violation]]:
    """Parse (via the content-hash cache) every file; E999 on failure."""
    contexts: List[FileContext] = []
    errors: List[Violation] = []
    for file_path in files:
        source = Path(file_path).read_text(encoding="utf-8")
        try:
            contexts.append(get_context(str(file_path), source))
        except SyntaxError as exc:
            errors.append(Violation(
                path=str(file_path), line=exc.lineno or 1,
                col=(exc.offset or 0) + 1, code="E999",
                message=f"syntax error: {exc.msg}"))
    return contexts, errors


def _run_rules(contexts: Sequence[FileContext], rules: Sequence[Rule],
               options: LintOptions) -> List[Violation]:
    """Pass 2+3: file rules per context, project rules once per graph."""
    graph = ModuleGraph(contexts)
    violations: List[Violation] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.run_project(graph, options))
        else:
            for ctx in contexts:
                violations.extend(rule.run(ctx))
    return sorted(violations, key=Violation.sort_key)


def check_source(source: str, path: str = "<string>",
                 select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint a source string; the programmatic API the tests drive.

    Single-source runs get a one-module graph and no R8 baseline
    (there is nothing meaningful to diff a lone string against).
    """
    try:
        ctx = get_context(path, source)
    except SyntaxError as exc:
        return [Violation(path=path, line=exc.lineno or 1,
                          col=(exc.offset or 0) + 1, code="E999",
                          message=f"syntax error: {exc.msg}")]
    return _run_rules([ctx], _select_rules(select),
                      LintOptions(stage_baseline=None))


def check_file(path: Path,
               select: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one file from disk (no cross-file analysis)."""
    source = Path(path).read_text(encoding="utf-8")
    return check_source(source, str(path), select=select)


def check_paths(paths: Sequence[str],
                select: Optional[Sequence[str]] = None,
                stage_baseline: Optional[Path] = DEFAULT_STAGE_BASELINE,
                ) -> List[Violation]:
    """Lint every ``.py`` file reachable from ``paths``, cross-file rules
    included. ``stage_baseline=None`` disables the R8 comparison."""
    files = collect_files(paths)
    contexts, errors = _build_contexts(files)
    if stage_baseline is not None and not Path(stage_baseline).exists():
        stage_baseline = None if stage_baseline == DEFAULT_STAGE_BASELINE \
            else stage_baseline
    options = LintOptions(stage_baseline=stage_baseline)
    return sorted(errors + _run_rules(contexts, _select_rules(select),
                                      options),
                  key=Violation.sort_key)


def _json_report(files: Sequence[Path], rules: Sequence[Rule],
                 violations: Sequence[Violation]) -> Dict:
    counts: Dict[str, int] = {}
    for v in violations:
        counts[v.code] = counts.get(v.code, 0) + 1
    return {
        "tool": "repro-lint",
        "schema": "repro-lint/2",
        "files_checked": len(files),
        "rules": [r.code for r in rules],
        "counts": dict(sorted(counts.items())),
        "violations": [
            {"path": v.path, "line": v.line, "col": v.col,
             "code": v.code, "message": v.message}
            for v in violations
        ],
        "clean": not violations,
    }


def _print_rule_listing(out) -> None:
    for rule in ALL_RULES:
        print(f"{rule.code}  {rule.name}", file=out)
        print(f"    {rule.description}", file=out)


def _update_baseline(paths: Sequence[str], baseline: Path) -> int:
    """Re-seed ``tools/stage_hashes.json`` from the current tree."""
    contexts, errors = _build_contexts(collect_files(paths))
    for err in errors:
        print(err.render(), file=sys.stderr)
    if errors:
        return 2
    stages = stage_hashes(ModuleGraph(contexts))
    if not stages:
        print("tools.lint: no memoized stages discovered under "
              f"{' '.join(paths)} — baseline not written", file=sys.stderr)
        return 2
    write_baseline(baseline, stages)
    for stage, entry in sorted(stages.items()):
        print(f"  {stage}: salt={entry['salt']} "
              f"hash={entry['hash'][:12]}… "
              f"({entry['functions_hashed']} functions)")
    print(f"repro-lint: wrote {len(stages)} stage fingerprint(s) to "
          f"{baseline}", file=sys.stderr)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m tools.lint``."""
    parser = argparse.ArgumentParser(
        prog="tools.lint",
        description="repro-lint: project-specific static analysis "
                    "(rules R1-R12; see tools/lint/__init__.py)")
    parser.add_argument("paths", nargs="*", default=["src", "tests",
                                                     "benchmarks"],
                        help="files or directories to lint "
                             "(default: src tests benchmarks)")
    parser.add_argument("--select", default=None,
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="describe every rule and exit")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write a machine-readable report "
                             "(consumed by CI as an artifact)")
    parser.add_argument("--stage-baseline", metavar="PATH",
                        default=str(DEFAULT_STAGE_BASELINE),
                        help="R8 stage-hash baseline file "
                             "(default: tools/stage_hashes.json)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the R8 baseline from the current "
                             "tree (after a STAGE_VERSIONS bump) and exit")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="suppress the summary line")
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_listing(sys.stdout)
        return 0

    baseline = Path(args.stage_baseline)
    if args.update_baseline:
        paths = args.paths if args.paths != ["src", "tests", "benchmarks"] \
            else ["src"]
        return _update_baseline(paths, baseline)

    select = args.select.split(",") if args.select else None
    try:
        rules = _select_rules(select)
        files = collect_files(args.paths)
        contexts, errors = _build_contexts(files)
        # A missing *default* baseline silently disables R8 (fresh
        # checkouts before seeding); an explicitly requested one that
        # is missing must be reported, so it stays set.
        explicit = Path(args.stage_baseline) != DEFAULT_STAGE_BASELINE
        options = LintOptions(
            stage_baseline=baseline if (explicit or baseline.exists())
            else None)
        violations = sorted(errors + _run_rules(contexts, rules, options),
                            key=Violation.sort_key)
    except (FileNotFoundError, ValueError) as exc:
        print(f"tools.lint: {exc}", file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if args.json:
        report = _json_report(files, rules, violations)
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n",
                                   encoding="utf-8")
    if not args.quiet:
        status = "clean" if not violations else "found issues"
        print(f"repro-lint: {len(files)} files checked, "
              f"{len(violations)} violation(s) — {status}",
              file=sys.stderr)
    return 1 if violations else 0
