"""Normalized AST hashing for the cache-salt drift gate (rule R8).

``repro.cache`` memoizes pipeline stages under content-addressed keys
salted with :data:`repro.cache.keys.STAGE_VERSIONS`. The salt is the
only thing standing between "I edited the LUT builder" and "the cache
replays last week's LUT bit-for-bit" — and nothing used to check that
the salt actually moved when the code did. This module closes the loop:

1. **Discovery** — a *stage anchor* is any function that invokes the
   ``Deployer._stage(...)`` memoization helper or builds a
   ``stage_key(...)`` with a literal stage name
   (:func:`discover_stages`); both spellings exist in the tree.
2. **Hashing** — each stage hashes the *normalized* AST (docstrings
   stripped, positions ignored — comments and formatting never enter)
   of its anchors plus their strict transitive ``repro.*`` callees
   (:func:`stage_hashes`). Observability plumbing (``repro.obs``,
   ``repro.utils.logging``) is excluded: it cannot change artifact
   content. Walking callees means editing ``run_vawo`` trips the
   ``vawo`` stage even though the memoizing function itself is
   untouched.
3. **Baseline** — hashes + salts are committed to
   ``tools/stage_hashes.json``. R8 compares the working tree against
   that file; ``python -m tools.lint --update-baseline`` rewrites it
   after a legitimate salt bump (see DESIGN.md §4c for the workflow).
"""

from __future__ import annotations

import ast
import copy
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from tools.lint.callgraph import FunctionInfo, ModuleGraph

__all__ = ["BASELINE_DOC", "discover_stages", "function_hash",
           "load_baseline", "normalized_dump", "parse_stage_versions",
           "stage_hashes", "write_baseline"]

#: Qualname prefixes excluded from stage-hash closures: code that can
#: never change what a cached artifact *contains*.
HASH_EXCLUDE_PREFIXES = ("repro.obs", "repro.utils.logging")

BASELINE_DOC = ("Committed AST fingerprints of every repro.cache stage "
                "(rule R8). When a stage's hash drifts, bump its "
                "STAGE_VERSIONS salt in src/repro/cache/keys.py and "
                "regenerate this file with: "
                "python -m tools.lint --update-baseline")


def normalized_dump(node: ast.AST) -> str:
    """Position-free, docstring-free dump of ``node``.

    Reformatting, comments and docstring edits leave the dump unchanged;
    any behavioural edit (operators, constants, call targets, control
    flow) changes it. ``ast.dump`` without attributes already drops
    line/column info, so only docstrings need explicit stripping.
    """
    node = copy.deepcopy(node)
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Module, ast.ClassDef, ast.FunctionDef,
                            ast.AsyncFunctionDef)):
            body = sub.body
            if (body and isinstance(body[0], ast.Expr)
                    and isinstance(body[0].value, ast.Constant)
                    and isinstance(body[0].value.value, str)):
                sub.body = body[1:] or [ast.Pass()]
    return ast.dump(node, include_attributes=False)


def function_hash(info: FunctionInfo) -> str:
    """SHA-256 of one function's normalized AST."""
    return hashlib.sha256(normalized_dump(info.node).encode()).hexdigest()


# ----------------------------------------------------------------------
# stage discovery
# ----------------------------------------------------------------------
def _stage_literal(call: ast.Call) -> Optional[str]:
    """The literal stage name of a ``_stage``/``stage_key`` call, if any."""
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


def _is_stage_call(graph: ModuleGraph, info: FunctionInfo,
                   call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "_stage":
        return True
    if isinstance(func, ast.Name):
        resolved = info.ctx.aliases.get(func.id)
        if resolved is None and func.id == "stage_key":
            return True
        if resolved is not None:
            target = graph.resolve_function(info.module, resolved)
            name = target or resolved
            return name.rsplit(".", 1)[-1] == "stage_key"
    return False


def discover_stages(graph: ModuleGraph) -> Dict[str, List[FunctionInfo]]:
    """Map stage name -> the functions that memoize under that name."""
    stages: Dict[str, List[FunctionInfo]] = {}
    for info in graph.functions.values():
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if not _is_stage_call(graph, info, node):
                continue
            stage = _stage_literal(node)
            if stage is None:
                continue
            anchors = stages.setdefault(stage, [])
            if info not in anchors:
                anchors.append(info)
    return stages


def parse_stage_versions(graph: ModuleGraph) -> Optional[Dict[str, int]]:
    """The literal ``STAGE_VERSIONS`` mapping, read from the AST.

    Looked up without importing ``repro`` (the linter stays importless):
    any graph module assigning a dict literal to ``STAGE_VERSIONS``
    counts, preferring ``repro.cache.keys``. Returns ``None`` when no
    such module is in the lint set.
    """
    candidates = []
    for module, names in graph.module_globals.items():
        binding = names.get("STAGE_VERSIONS")
        if binding is not None and isinstance(binding.value, ast.Dict):
            candidates.append((module, binding))
    if not candidates:
        return None
    candidates.sort(key=lambda mb: (mb[0] != "repro.cache.keys", mb[0]))
    _, binding = candidates[0]
    try:
        literal = ast.literal_eval(binding.value)
    except ValueError:
        return None
    return {str(k): int(v) for k, v in literal.items()}


def stage_hashes(graph: ModuleGraph) -> Dict[str, Dict[str, Any]]:
    """Current per-stage fingerprints: hash, salt, anchors, closure size."""
    versions = parse_stage_versions(graph) or {}
    out: Dict[str, Dict[str, Any]] = {}
    for stage, anchors in sorted(discover_stages(graph).items()):
        closure = graph.closure(
            [a.qualname for a in anchors], strict_only=True,
            exclude_prefixes=HASH_EXCLUDE_PREFIXES)
        closure = {q for q in closure
                   if graph.functions[q].module.split(".")[0] == "repro"}
        digest = hashlib.sha256()
        for qual in sorted(closure):
            digest.update(f"{qual}:{function_hash(graph.functions[qual])}\n"
                          .encode())
        out[stage] = {
            "salt": versions.get(stage),
            "hash": digest.hexdigest(),
            "anchors": sorted(a.qualname for a in anchors),
            "functions_hashed": len(closure),
        }
    return out


# ----------------------------------------------------------------------
# baseline I/O
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> Optional[Dict[str, Dict[str, Any]]]:
    """The committed stage fingerprints, or ``None`` if unreadable."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    stages = document.get("stages")
    return dict(stages) if isinstance(stages, dict) else None


def write_baseline(path: Path,
                   stages: Dict[str, Dict[str, Any]]) -> Path:
    """Write ``stages`` as the committed R8 baseline; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = {"__doc__": BASELINE_DOC,
                "stages": {k: stages[k] for k in sorted(stages)}}
    path.write_text(json.dumps(document, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path
