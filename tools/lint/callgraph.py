"""Shared module graph: one parse pass, functions, call/reference edges.

The AST rules (R8-R12, :mod:`tools.lint.ast_rules`) all need the same
expensive facts: which functions exist under which dotted names, who
calls (or merely references) whom, and what a module binds at top
level. :class:`ModuleGraph` computes those facts **once per lint run**
from the :class:`~tools.lint.context.FileContext` objects the runner
already built; parsing itself is cached by ``(path, content hash)``
(:func:`get_context`), so re-linting an unchanged file never re-parses.

Edge classes
------------
*strict* edges are resolvable dataflow: a call or bare reference whose
target the import/alias machinery pins to exactly one project function
(``run_vawo(...)`` after ``from repro.core.vawo import run_vawo``,
``self._compute_gradients`` inside its class, a same-module name,
or a re-export followed through a package ``__init__``). R8's stage
hashing walks only strict edges so hashes never depend on coincidental
name matches.

*loose* edges add the conservative over-approximation reachability
needs: an attribute call on an unknown receiver (``deployer.program()``)
links to **every** project function of that name. R9/R10 use
strict + loose closure — for "is this code reachable from a pool
worker?" it is better to check too much than too little.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.lint.context import FileContext

__all__ = ["FunctionInfo", "ModuleGraph", "get_context", "clear_parse_cache"]

#: Parse cache keyed by (normalised path, sha256 of the source) — the
#: "cached by file content hash" guarantee of the single parse pass.
_PARSE_CACHE: Dict[Tuple[str, str], FileContext] = {}
_PARSE_CACHE_MAX = 4096


def get_context(path: str, source: str) -> FileContext:
    """A :class:`FileContext` for ``source``, reused while content matches."""
    key = (path.replace("\\", "/"), hashlib.sha256(source.encode()).hexdigest())
    ctx = _PARSE_CACHE.get(key)
    if ctx is None:
        if len(_PARSE_CACHE) >= _PARSE_CACHE_MAX:
            _PARSE_CACHE.clear()
        ctx = FileContext(key[0], source, ast.parse(source))
        _PARSE_CACHE[key] = ctx
    return ctx


def clear_parse_cache() -> None:
    """Drop every cached parse (tests that rewrite files in place)."""
    _PARSE_CACHE.clear()


@dataclass
class FunctionInfo:
    """One top-level function or method, with its resolved out-edges."""

    qualname: str                       # module[.Class].name
    name: str
    module: str
    class_name: Optional[str]
    node: ast.AST                       # FunctionDef / AsyncFunctionDef
    ctx: FileContext
    strict: Set[str] = field(default_factory=set)
    loose_names: Set[str] = field(default_factory=set)

    @property
    def lineno(self) -> int:
        return int(getattr(self.node, "lineno", 1))


@dataclass
class GlobalInfo:
    """One module-level name binding (for RNG-flow / fork-safety rules)."""

    name: str
    module: str
    node: ast.AST                       # the assignment statement
    value: Optional[ast.expr]
    lineno: int


class ModuleGraph:
    """Project-wide function index + call graph over one set of files."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.modules: Dict[str, FileContext] = {}
        self.by_path: Dict[str, FileContext] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_name: Dict[str, List[str]] = {}
        self.module_globals: Dict[str, Dict[str, GlobalInfo]] = {}
        for ctx in contexts:
            # Last context wins on (pathological) duplicate module names.
            self.modules[ctx.module] = ctx
            self.by_path[ctx.path] = ctx
        for ctx in self.modules.values():
            self._index_module(ctx)
        for info in self.functions.values():
            self._collect_edges(info)

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def _index_module(self, ctx: FileContext) -> None:
        globals_here: Dict[str, GlobalInfo] = {}
        self.module_globals[ctx.module] = globals_here
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(ctx, stmt, class_name=None)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(ctx, sub, class_name=stmt.name)
            elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                value = getattr(stmt, "value", None)
                targets = (stmt.targets if isinstance(stmt, ast.Assign)
                           else [stmt.target])
                for target in targets:
                    if isinstance(target, ast.Name):
                        globals_here[target.id] = GlobalInfo(
                            name=target.id, module=ctx.module, node=stmt,
                            value=value, lineno=stmt.lineno)

    def _add_function(self, ctx: FileContext, node: ast.AST,
                      class_name: Optional[str]) -> None:
        name = node.name  # type: ignore[attr-defined]
        qual = (f"{ctx.module}.{class_name}.{name}" if class_name
                else f"{ctx.module}.{name}")
        info = FunctionInfo(qualname=qual, name=name, module=ctx.module,
                            class_name=class_name, node=node, ctx=ctx)
        self.functions[qual] = info
        self.by_name.setdefault(name, []).append(qual)

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_function(self, module: str, dotted: str,
                         _hops: int = 0) -> Optional[str]:
        """Resolve ``dotted`` (seen from ``module``) to a known qualname.

        Follows package re-exports: ``repro.cache.stage_key`` resolves
        through ``repro/cache/__init__.py``'s ``from repro.cache.keys
        import stage_key`` to ``repro.cache.keys.stage_key`` (bounded
        at four hops so alias cycles terminate).
        """
        if _hops > 4:
            return None
        if dotted in self.functions:
            return dotted
        # Longest known-module prefix, then look the remainder up in
        # that module's import aliases (a re-export) and recurse.
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            prefix = ".".join(parts[:cut])
            owner = self.modules.get(prefix)
            if owner is None:
                continue
            remainder = parts[cut:]
            candidate = f"{prefix}.{'.'.join(remainder)}"
            if candidate in self.functions:
                return candidate
            target = owner.aliases.get(remainder[0])
            if target is not None:
                rest = remainder[1:]
                rerouted = ".".join([target] + rest) if rest else target
                return self.resolve_function(prefix, rerouted, _hops + 1)
            return None
        return None

    def _resolve_local(self, info: FunctionInfo, name: str) -> Optional[str]:
        """A bare name inside ``info``: import alias or same-module def."""
        aliased = info.ctx.aliases.get(name)
        if aliased is not None:
            return self.resolve_function(info.module, aliased)
        return self.resolve_function(info.module, f"{info.module}.{name}")

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def _collect_edges(self, info: FunctionInfo) -> None:
        for node in ast.walk(info.node):
            if isinstance(node, ast.Attribute):
                base = node.value
                if (isinstance(base, ast.Name)
                        and base.id in ("self", "cls")
                        and info.class_name is not None):
                    qual = f"{info.module}.{info.class_name}.{node.attr}"
                    if qual in self.functions:
                        info.strict.add(qual)
                        continue
                resolved = info.ctx.resolve_call_name(node)
                if resolved is not None:
                    target = self.resolve_function(info.module, resolved)
                    if target is not None:
                        info.strict.add(target)
                        continue
                # Unknown receiver: remember the method name for the
                # loose (reachability) closure.
                if node.attr in self.by_name:
                    info.loose_names.add(node.attr)
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                target = self._resolve_local(info, node.id)
                if target is not None:
                    info.strict.add(target)
        info.strict.discard(info.qualname)

    def strict_callees(self, qualname: str) -> Set[str]:
        info = self.functions.get(qualname)
        return set(info.strict) if info is not None else set()

    def loose_callees(self, qualname: str) -> Set[str]:
        info = self.functions.get(qualname)
        if info is None:
            return set()
        out = set(info.strict)
        for name in info.loose_names:
            out.update(self.by_name.get(name, ()))
        out.discard(qualname)
        return out

    # ------------------------------------------------------------------
    # closures
    # ------------------------------------------------------------------
    def closure(self, seeds: Iterable[str], strict_only: bool = False,
                exclude_prefixes: Sequence[str] = ()) -> Set[str]:
        """Transitive closure over call/reference edges from ``seeds``.

        ``exclude_prefixes`` prunes whole subtrees by qualname prefix
        (R8 uses it to keep observability plumbing out of stage hashes).
        Seeds themselves are kept unless excluded.
        """
        out: Set[str] = set()
        stack = [s for s in seeds if s in self.functions]
        while stack:
            qual = stack.pop()
            if qual in out:
                continue
            if any(qual.startswith(p) for p in exclude_prefixes):
                continue
            out.add(qual)
            edges = (self.strict_callees(qual) if strict_only
                     else self.loose_callees(qual))
            stack.extend(e for e in edges if e not in out)
        return out

    def functions_in_module(self, module: str) -> List[FunctionInfo]:
        return [f for f in self.functions.values() if f.module == module]

    def modules_with_prefix(self, prefix: str) -> List[str]:
        return [m for m in self.modules
                if m == prefix or m.startswith(prefix + ".")]
