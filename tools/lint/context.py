"""Per-file analysis context: source, pragmas and import resolution."""

from __future__ import annotations

import ast
import hashlib
import re
from pathlib import PurePosixPath
from typing import Dict, List, Optional, Set

#: Directory names that root an importable tree. ``src`` wins (package
#: code lives under it); the others cover the non-package lint targets.
_ROOT_MARKERS = ("tests", "benchmarks", "tools", "examples")


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path, best effort.

    ``src/repro/cache/keys.py`` -> ``repro.cache.keys`` (the *last*
    ``src`` segment wins, so temp-dir fixture trees resolve the same
    way the real tree does); ``tests/cache/test_keys.py`` ->
    ``tests.cache.test_keys``; an ``__init__.py`` names its package.
    Paths outside any known root fall back to their stem.
    """
    parts = PurePosixPath(path.replace("\\", "/")).parts
    start = None
    for i, part in enumerate(parts):
        if part == "src":
            start = i + 1
    if start is None:
        for marker in _ROOT_MARKERS:
            if marker in parts:
                start = parts.index(marker)
                break
    rel = list(parts[start:] if start is not None else parts[-1:])
    if not rel:
        return ""
    rel[-1] = rel[-1][:-3] if rel[-1].endswith(".py") else rel[-1]
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(p for p in rel if p)

_DISABLE_LINE_RE = re.compile(
    r"#\s*repro-lint:\s*disable(?:=(?P<codes>[A-Z0-9, ]+))?")
_DISABLE_FILE_RE = re.compile(
    r"#\s*repro-lint:\s*disable-file(?:=(?P<codes>[A-Z0-9, ]+))?")


def _parse_codes(raw: Optional[str]) -> Optional[Set[str]]:
    """``None`` means "all rules"; otherwise the explicit code set."""
    if raw is None:
        return None
    return {c.strip() for c in raw.split(",") if c.strip()}


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self.aliases: Dict[str, str] = _collect_import_aliases(tree)
        self.module: str = module_name_for_path(self.path)
        self.content_hash: str = hashlib.sha256(source.encode()).hexdigest()
        self._line_disables: Dict[int, Optional[Set[str]]] = {}
        self._file_disables: Set[str] = set()
        self._file_disable_all = False
        self._scan_pragmas()

    # ------------------------------------------------------------------
    # pragmas
    # ------------------------------------------------------------------
    def _scan_pragmas(self) -> None:
        for lineno, line in enumerate(self.lines, start=1):
            if "repro-lint" not in line:
                continue
            m = _DISABLE_FILE_RE.search(line)
            if m:
                codes = _parse_codes(m.group("codes"))
                if codes is None:
                    self._file_disable_all = True
                else:
                    self._file_disables |= codes
                continue
            m = _DISABLE_LINE_RE.search(line)
            if m:
                self._line_disables[lineno] = _parse_codes(m.group("codes"))

    def is_disabled(self, code: str, lineno: int,
                    end_lineno: Optional[int] = None) -> bool:
        """Whether ``code`` is suppressed at ``lineno`` (or its span)."""
        if self._file_disable_all or code in self._file_disables:
            return True
        last = end_lineno if end_lineno is not None else lineno
        for ln in range(lineno, last + 1):
            codes = self._line_disables.get(ln, False)
            if codes is False:
                continue
            if codes is None or code in codes:
                return True
        return False

    def span_has_marker(self, marker: str, lineno: int,
                        end_lineno: Optional[int] = None) -> bool:
        """Whether a ``# marker`` comment appears on any line of a span."""
        last = end_lineno if end_lineno is not None else lineno
        for ln in range(lineno, min(last, len(self.lines)) + 1):
            if marker in self.lines[ln - 1]:
                return True
        return False

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------
    def resolve_call_name(self, func: ast.expr) -> Optional[str]:
        """Fully-qualified dotted name of a call target, if resolvable.

        ``np.random.normal`` resolves to ``numpy.random.normal`` when
        the file did ``import numpy as np``; a bare ``default_rng``
        resolves through ``from numpy.random import default_rng``.
        """
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0])
        if head is not None:
            parts[0] = head
        return ".".join(parts)


def _collect_import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Map local names to the fully-qualified names they import."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                local = item.asname or item.name.split(".")[0]
                target = item.name if item.asname else item.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for item in node.names:
                if item.name == "*":
                    continue
                local = item.asname or item.name
                aliases[local] = f"{node.module}.{item.name}"
    return aliases
