"""The seven repro-lint rules (R1-R7).

Each rule is a stateless object with a ``code``, human metadata, and a
``check(ctx)`` generator yielding :class:`~tools.lint.report.Violation`
instances. Rules never consult each other; suppression (pragmas,
per-rule path exemptions) is resolved here so the runner stays dumb.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional, Sequence, Tuple

from tools.lint.context import FileContext
from tools.lint.report import Violation


class Rule:
    """Base class: subclasses define ``code``/``name`` and ``check``."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: path suffixes (posix) this rule never applies to
    exempt_suffixes: Tuple[str, ...] = ()

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(ctx.path.endswith(s) for s in self.exempt_suffixes)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def run(self, ctx: FileContext) -> Iterator[Violation]:
        if not self.applies_to(ctx):
            return
        for violation in self.check(ctx):
            if not ctx.is_disabled(self.code, violation.line):
                yield violation

    def _violation(self, ctx: FileContext, node: ast.AST,
                   message: str) -> Violation:
        return Violation(path=ctx.path, line=node.lineno,
                         col=node.col_offset + 1, code=self.code,
                         message=message)


# ----------------------------------------------------------------------
# R1: no unseeded / direct numpy randomness
# ----------------------------------------------------------------------
class UnseededRandomRule(Rule):
    """Forbid direct ``np.random.*`` / bare ``default_rng()`` calls.

    All stochastic code must flow through ``repro.utils.rng`` so a
    whole experiment is reproducible from one integer seed; a stray
    ``np.random.normal`` (or a module-level ``default_rng()``) silently
    decouples a component from the seed plumbing.
    """

    code = "R1"
    name = "no-direct-numpy-random"
    description = ("direct np.random.* / default_rng() call outside "
                   "repro/utils/rng.py — route through repro.utils.rng")
    exempt_suffixes = ("repro/utils/rng.py",)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualname = ctx.resolve_call_name(node.func)
            if qualname is None:
                continue
            if qualname.startswith("numpy.random."):
                short = qualname[len("numpy."):]
                yield self._violation(
                    ctx, node,
                    f"direct call to {short} — use repro.utils.rng."
                    f"make_rng / spawn_rngs so the draw is seedable")


# ----------------------------------------------------------------------
# R2: no mutable default arguments
# ----------------------------------------------------------------------
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "OrderedDict", "Counter", "deque"}


class MutableDefaultRule(Rule):
    """Forbid mutable default argument values (shared across calls)."""

    code = "R2"
    name = "no-mutable-default"
    description = "mutable default argument — use None and create inside"

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            args = node.args
            defaults = list(args.defaults) + [d for d in args.kw_defaults
                                              if d is not None]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    fname = getattr(node, "name", "<lambda>")
                    yield self._violation(
                        ctx, default,
                        f"mutable default {ast.unparse(default)!r} in "
                        f"{fname}() — default to None and build the "
                        f"container in the body")

    @staticmethod
    def _is_mutable(node: ast.expr, ctx: FileContext) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(node, ast.ListComp) or isinstance(node, ast.DictComp) \
                or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Call):
            qualname = ctx.resolve_call_name(node.func)
            if qualname is None:
                return False
            tail = qualname.rsplit(".", 1)[-1]
            return tail in _MUTABLE_CALLS
        return False


# ----------------------------------------------------------------------
# R3: typed + shape-documented public API in the simulation core
# ----------------------------------------------------------------------
_SHAPE_TUPLE_RE = re.compile(r"\([^()]*,[^()]*\)")
_ARRAY_TOKENS = ("ndarray", "ArrayLike", "NDArray")


class TypedPublicApiRule(Rule):
    """Public functions in core/device/xbar: full annotations + shapes.

    Complete parameter and return annotations make mypy's strict mode
    meaningful; the docstring shape requirement ("(rows, cols)"-style
    tuples or the word "shape") keeps the array algebra documented at
    the API boundary, where transposition bugs are born.
    """

    code = "R3"
    name = "typed-public-api"
    description = ("public function in repro/{core,device,xbar} missing "
                   "annotations or a shape-documenting docstring")

    _scoped_dirs = ("src/repro/core/", "src/repro/device/",
                    "src/repro/xbar/", "repro/core/", "repro/device/",
                    "repro/xbar/")

    def applies_to(self, ctx: FileContext) -> bool:
        return any(d in ctx.path for d in self._scoped_dirs)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        yield from self._check_body(ctx, ctx.tree.body, class_public=None)

    def _check_body(self, ctx: FileContext, body: Sequence[ast.stmt],
                    class_public: Optional[bool]) -> Iterator[Violation]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                public_class = not node.name.startswith("_")
                yield from self._check_body(ctx, node.body,
                                            class_public=public_class)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if class_public is False:
                    continue
                yield from self._check_function(ctx, node,
                                               is_method=class_public
                                               is not None)

    def _check_function(self, ctx: FileContext, node: ast.FunctionDef,
                        is_method: bool) -> Iterator[Violation]:
        name = node.name
        is_init = name == "__init__"
        if name.startswith("_") and not is_init:
            return
        missing: List[str] = []
        arg_sources: List[str] = []
        args = node.args
        positional = list(args.posonlyargs) + list(args.args)
        if is_method and positional and positional[0].arg in ("self", "cls"):
            positional = positional[1:]
        for arg in positional + list(args.kwonlyargs):
            if arg.annotation is None:
                missing.append(arg.arg)
            else:
                arg_sources.append(ast.unparse(arg.annotation))
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                missing.append("*" + star.arg)
            elif star is not None:
                arg_sources.append(ast.unparse(star.annotation))
        if missing:
            yield self._violation(
                ctx, node,
                f"{name}() is missing type annotations for: "
                f"{', '.join(missing)}")
        returns_src = None
        if node.returns is not None:
            returns_src = ast.unparse(node.returns)
        elif not is_init:
            yield self._violation(
                ctx, node, f"{name}() is missing a return annotation")
        doc = ast.get_docstring(node)
        if not doc:
            yield self._violation(
                ctx, node, f"{name}() is missing a docstring")
            return
        touches_arrays = any(
            any(tok in src for tok in _ARRAY_TOKENS)
            for src in arg_sources + ([returns_src] if returns_src else []))
        if touches_arrays and not self._documents_shapes(doc):
            yield self._violation(
                ctx, node,
                f"{name}() handles arrays but its docstring documents no "
                f"shapes — mention e.g. '(rows, cols)' or the word 'shape'")

    @staticmethod
    def _documents_shapes(doc: str) -> bool:
        if "shape" in doc.lower() or "scalar" in doc.lower():
            return True
        return bool(_SHAPE_TUPLE_RE.search(doc))


# ----------------------------------------------------------------------
# R4: no silent dtype narrowing of weight/conductance arrays
# ----------------------------------------------------------------------
_NARROWING_DTYPES = {
    "float16", "float32", "half", "single", "int8", "int16", "int32",
    "uint8", "uint16", "uint32", "f2", "f4", "i1", "i2", "i4", "u1",
    "u2", "u4",
}
_SENSITIVE_NAME_RE = re.compile(
    r"weight|conduct|cells|crw|ntw|ctw|offset|register", re.IGNORECASE)
_ARRAY_CTORS = ("numpy.asarray", "numpy.array", "numpy.ascontiguousarray",
                "numpy.asfortranarray")


class DtypeNarrowingRule(Rule):
    """Flag dtype-narrowing array conversions of simulation state.

    Casting weights/conductances/offsets below float64 silently
    degrades the accuracy numbers the reproduction reports; where the
    narrowing is intentional (e.g. a memory-bound benchmark) the line
    carries an explicit ``# dtype-ok``.
    """

    code = "R4"
    name = "no-silent-dtype-narrowing"
    description = ("dtype-narrowing conversion of a weight/conductance "
                   "array without '# dtype-ok'")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            qualname = ctx.resolve_call_name(node.func)
            if qualname not in _ARRAY_CTORS:
                continue
            dtype_kw = next((kw for kw in node.keywords
                             if kw.arg == "dtype"), None)
            if dtype_kw is None:
                continue
            dtype_src = ast.unparse(dtype_kw.value).strip("\"'")
            dtype_name = dtype_src.rsplit(".", 1)[-1]
            if dtype_name not in _NARROWING_DTYPES:
                continue
            target_src = ast.unparse(node.args[0])
            if not _SENSITIVE_NAME_RE.search(target_src):
                continue
            if ctx.span_has_marker("dtype-ok", node.lineno, node.end_lineno):
                continue
            yield self._violation(
                ctx, node,
                f"{qualname.rsplit('.', 1)[-1]}({target_src!r}, "
                f"dtype={dtype_src}) narrows simulation state below "
                f"float64 — add '# dtype-ok' if intentional")


# ----------------------------------------------------------------------
# R5: explicit .npz suffixes on numpy archive paths
# ----------------------------------------------------------------------
_ARCHIVE_CALLS = ("numpy.savez", "numpy.savez_compressed", "numpy.load")


class NpzSuffixRule(Rule):
    """``np.savez``/``np.load`` paths must show an explicit ``.npz``.

    ``np.savez`` appends ``.npz`` to suffix-less paths but ``np.load``
    does not, so a shared suffix-less path constant saves to one file
    and loads another — the bug class that broke the seed's tier-1
    end-to-end test. Paths normalised elsewhere carry ``# npz-ok``.
    """

    code = "R5"
    name = "explicit-npz-suffix"
    description = ("np.savez/np.load on a path without a visible '.npz' "
                   "suffix (or '# npz-ok')")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            qualname = ctx.resolve_call_name(node.func)
            if qualname not in _ARCHIVE_CALLS:
                continue
            path_src = ast.unparse(node.args[0])
            if ".npz" in path_src or ".npy" in path_src:
                continue
            if ctx.span_has_marker("npz-ok", node.lineno, node.end_lineno):
                continue
            short = qualname[len("numpy."):]
            yield self._violation(
                ctx, node,
                f"np.{short}({path_src!r}, ...): path shows no '.npz' "
                f"suffix — np.savez appends it but np.load does not; "
                f"normalise the path (repro.utils.serialization) or add "
                f"'# npz-ok'")


# ----------------------------------------------------------------------
# R6: no bare print() in library code
# ----------------------------------------------------------------------
class NoPrintInLibraryRule(Rule):
    """Forbid bare ``print()`` calls inside the ``repro`` package.

    Library output must flow through ``repro.utils.logging.get_logger``
    (diagnostics, level-controlled via ``REPRO_LOG_LEVEL``) or the
    ``repro.obs`` exporters (measurements) — a stray ``print`` is
    invisible to verbosity control, corrupts piped CLI output, and
    can't be captured in run artifacts. Benchmarks, examples, tests
    and the ``tools`` package are exempt (they *are* front ends);
    inside ``repro`` only the CLI's ``_echo`` helper talks to stdout.
    A deliberate exception carries ``# print-ok`` on the line.
    """

    code = "R6"
    name = "no-print-in-library"
    description = ("bare print() inside src/repro — use "
                   "repro.utils.logging.get_logger or the repro.obs "
                   "exporters (or '# print-ok')")

    _scoped_dirs = ("src/repro/", "repro/")
    _exempt_dirs = ("benchmarks/", "examples/", "tests/", "tools/")

    def applies_to(self, ctx: FileContext) -> bool:
        if any(d in ctx.path for d in self._exempt_dirs):
            return False
        return any(d in ctx.path for d in self._scoped_dirs)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (isinstance(node.func, ast.Name)
                    and node.func.id == "print"):
                continue
            # A local redefinition of `print` is not the builtin.
            if ctx.aliases.get("print") is not None:
                continue
            if ctx.span_has_marker("print-ok", node.lineno, node.end_lineno):
                continue
            yield self._violation(
                ctx, node,
                "bare print() in library code — log via "
                "repro.utils.logging.get_logger, report via repro.obs, "
                "or mark a deliberate exception with '# print-ok'")


# ----------------------------------------------------------------------
# R7: stride tricks belong to the compute-backend package
# ----------------------------------------------------------------------
_STRIDE_FUNCS = ("as_strided", "sliding_window_view")
_STRIDE_MODULE = "numpy.lib.stride_tricks"


class StrideTricksOutsideBackendRule(Rule):
    """Confine ``np.lib.stride_tricks`` to ``repro.backend``.

    ``as_strided`` views alias arbitrary memory: writing through one
    (or reading past a miscomputed stride) corrupts data silently, and
    hand-rolled window extraction outside the backend bypasses the
    dispatch layer whose reference/vectorized equivalence the test
    suite guarantees. All window/im2col kernels live behind
    :func:`repro.backend.get_backend`; everything else calls the
    dispatching wrappers in ``repro.nn.functional``. A deliberate
    exception carries ``# stride-ok``.
    """

    code = "R7"
    name = "stride-tricks-in-backend-only"
    description = ("np.lib.stride_tricks use outside repro/backend — "
                   "go through repro.backend kernels (or '# stride-ok')")

    _exempt_dirs = ("repro/backend/", "tools/")

    def applies_to(self, ctx: FileContext) -> bool:
        return not any(d in ctx.path for d in self._exempt_dirs)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            hit = self._match(ctx, node)
            if hit is None:
                continue
            if ctx.span_has_marker("stride-ok", node.lineno,
                                   getattr(node, "end_lineno", None)):
                continue
            yield self._violation(
                ctx, node,
                f"{hit} outside repro.backend — strided-window kernels "
                f"live behind repro.backend.get_backend(); add "
                f"'# stride-ok' only for a vetted exception")

    @staticmethod
    def _match(ctx: FileContext, node: ast.AST) -> Optional[str]:
        """The offending source construct, or ``None``."""
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.name.startswith(_STRIDE_MODULE):
                    return f"import {item.name}"
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith(_STRIDE_MODULE):
                return f"from {node.module} import ..."
            if node.module == "numpy.lib":
                for item in node.names:
                    if item.name == "stride_tricks":
                        return "from numpy.lib import stride_tricks"
        elif isinstance(node, ast.Call):
            qualname = ctx.resolve_call_name(node.func)
            if qualname and qualname.startswith(_STRIDE_MODULE + "."):
                return f"{qualname}()"
            if qualname and qualname.rsplit(".", 1)[-1] in _STRIDE_FUNCS:
                return f"{qualname.rsplit('.', 1)[-1]}()"
        return None


#: The single-file rules (R1-R7). The graph-backed rules (R8-R12) live
#: in :mod:`tools.lint.ast_rules`; the runner assembles ``ALL_RULES``
#: from both so neither module has to import the other.
FILE_RULES: Tuple[Rule, ...] = (
    UnseededRandomRule(),
    MutableDefaultRule(),
    TypedPublicApiRule(),
    DtypeNarrowingRule(),
    NpzSuffixRule(),
    NoPrintInLibraryRule(),
    StrideTricksOutsideBackendRule(),
)
