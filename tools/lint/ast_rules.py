"""The graph-backed rules R8-R12: cache, RNG, fork, span, exception gates.

These rules protect the two subsystems whose failure modes are
*silent*: the content-addressed stage cache (a stale artifact replays
bit-for-bit) and the parallel trial executor (determinism dies without
a crash). Unlike R1-R7 they reason about more than one line at a time —
R8 hashes whole call closures, R9/R10 walk reachability from the
process-pool worker entrypoints over the shared
:class:`~tools.lint.callgraph.ModuleGraph` the runner builds once per
run.

Vetted exceptions carry justified inline markers, mirroring the
``# dtype-ok`` family: ``# rng-ok — reason`` (R9), ``# fork-ok —
reason`` (R10), ``# span-ok — reason`` (R11) and the pre-existing
``# noqa: BLE001 — reason`` convention (R12). A marker without a
reason does not suppress — the justification is the point.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from tools.lint.callgraph import FunctionInfo, ModuleGraph
from tools.lint.context import FileContext
from tools.lint.hashing import (load_baseline, parse_stage_versions,
                                stage_hashes)
from tools.lint.report import Violation
from tools.lint.rules import Rule

__all__ = ["AST_RULES", "LintOptions", "ProjectRule"]


class LintOptions:
    """Run-scoped knobs the project rules need (beyond the file set)."""

    def __init__(self, stage_baseline: Optional[Path] = None) -> None:
        self.stage_baseline = stage_baseline


class ProjectRule(Rule):
    """A rule that runs once per lint run against the whole graph."""

    def check_project(self, graph: ModuleGraph,
                      options: LintOptions) -> Iterator[Violation]:
        raise NotImplementedError

    def run_project(self, graph: ModuleGraph,
                    options: LintOptions) -> Iterator[Violation]:
        for violation in self.check_project(graph, options):
            ctx = graph.by_path.get(violation.path)
            if ctx is None or not ctx.is_disabled(self.code, violation.line):
                yield violation

    @staticmethod
    def _at(ctx: FileContext, node: ast.AST, code: str,
            message: str) -> Violation:
        return Violation(path=ctx.path, line=getattr(node, "lineno", 1),
                         col=getattr(node, "col_offset", 0) + 1, code=code,
                         message=message)


def _justified(ctx: FileContext, marker: str, lineno: int,
               end_lineno: Optional[int] = None) -> bool:
    """Whether a ``# <marker> — reason`` comment covers the span.

    The reason text is mandatory: a bare marker reads as a reflex, a
    justified one as a decision.
    """
    pattern = re.compile(rf"#\s*{re.escape(marker)}\b\s*[—–:-]*\s*(\S.+)")
    last = end_lineno if end_lineno is not None else lineno
    for ln in range(lineno, min(last, len(ctx.lines)) + 1):
        match = pattern.search(ctx.lines[ln - 1])
        if match and match.group(1).strip():
            return True
    return False


def _in_library(ctx: FileContext) -> bool:
    return ctx.module == "repro" or ctx.module.startswith("repro.")


# ----------------------------------------------------------------------
# R8: cache-salt drift
# ----------------------------------------------------------------------
class CacheSaltDriftRule(ProjectRule):
    """A memoized stage's code changed but its ``STAGE_VERSIONS`` salt
    didn't — the exact edit that makes ``repro.cache`` replay stale
    artifacts bit-for-bit. Compares normalized AST hashes of every
    stage (anchor functions + strict transitive ``repro`` callees,
    :mod:`tools.lint.hashing`) against the committed baseline
    ``tools/stage_hashes.json``; legitimate bumps refresh it with
    ``python -m tools.lint --update-baseline``.
    """

    code = "R8"
    name = "cache-salt-drift"
    description = ("memoized stage body changed without a STAGE_VERSIONS "
                   "bump (vs tools/stage_hashes.json; legitimate bumps: "
                   "python -m tools.lint --update-baseline)")

    def check_project(self, graph: ModuleGraph,
                      options: LintOptions) -> Iterator[Violation]:
        if options.stage_baseline is None:
            return
        versions = parse_stage_versions(graph)
        current = stage_hashes(graph)
        if versions is None or not current:
            # The lint set does not cover the cache subsystem (e.g. a
            # single-file run): nothing meaningful to compare.
            return
        baseline = load_baseline(options.stage_baseline)
        if baseline is None:
            anchor = self._first_anchor(graph, current)
            if anchor is not None:
                yield self._at(
                    anchor.ctx, anchor.node, self.code,
                    f"no readable stage-hash baseline at "
                    f"{options.stage_baseline} — seed it with "
                    f"'python -m tools.lint --update-baseline' and commit")
            return
        for stage, entry in sorted(current.items()):
            anchor = graph.functions[entry["anchors"][0]]
            yield from self._check_stage(stage, entry, baseline.get(stage),
                                         anchor)
        for stage in sorted(set(baseline) - set(current)):
            anchor = self._first_anchor(graph, current)
            if anchor is not None:
                yield self._at(
                    anchor.ctx, anchor.node, self.code,
                    f"stage {stage!r} is in tools/stage_hashes.json but no "
                    f"longer memoizes anything — run 'python -m tools.lint "
                    f"--update-baseline' to retire it")

    def _check_stage(self, stage: str, entry: Dict, base: Optional[Dict],
                     anchor: FunctionInfo) -> Iterator[Violation]:
        salt = entry["salt"]
        if salt is None:
            yield self._at(
                anchor.ctx, anchor.node, self.code,
                f"stage {stage!r} is memoized but has no STAGE_VERSIONS "
                f"entry — add a salt in repro/cache/keys.py (unknown "
                f"stages silently key as v0)")
            return
        if base is None:
            yield self._at(
                anchor.ctx, anchor.node, self.code,
                f"stage {stage!r} is not in the committed baseline — run "
                f"'python -m tools.lint --update-baseline' and commit the "
                f"result")
            return
        if entry["hash"] != base.get("hash"):
            if salt == base.get("salt"):
                yield self._at(
                    anchor.ctx, anchor.node, self.code,
                    f"stage {stage!r}: code reachable from "
                    f"{entry['anchors'][0]} changed but "
                    f"STAGE_VERSIONS[{stage!r}] is still {salt} — cached "
                    f"artifacts from the old code would replay against the "
                    f"new; bump the salt, then run 'python -m tools.lint "
                    f"--update-baseline'")
            else:
                yield self._at(
                    anchor.ctx, anchor.node, self.code,
                    f"stage {stage!r}: salt bumped to {salt} — refresh the "
                    f"committed baseline with 'python -m tools.lint "
                    f"--update-baseline'")
        elif salt != base.get("salt"):
            yield self._at(
                anchor.ctx, anchor.node, self.code,
                f"stage {stage!r}: STAGE_VERSIONS changed "
                f"({base.get('salt')} -> {salt}) with no code change — "
                f"refresh the baseline with 'python -m tools.lint "
                f"--update-baseline'")

    @staticmethod
    def _first_anchor(graph: ModuleGraph,
                      current: Dict[str, Dict]) -> Optional[FunctionInfo]:
        for entry in sorted(current.values(),
                            key=lambda e: e["anchors"][0]):
            return graph.functions[entry["anchors"][0]]
        return None


# ----------------------------------------------------------------------
# worker-context discovery shared by R9/R10
# ----------------------------------------------------------------------
_EXECUTOR_ENTRY_NAMES = ("run_trials", "run", "map")


def _trial_fn_expr(call: ast.Call) -> Optional[ast.expr]:
    """The trial-callable argument of an executor submission call."""
    if call.args:
        return call.args[0]
    for kw in call.keywords:
        if kw.arg == "fn":
            return kw.value
    return None


def _resolve_callable_ref(graph: ModuleGraph, info: FunctionInfo,
                          expr: ast.expr) -> Optional[str]:
    """Resolve a callable expression (maybe ``partial(...)``) to a
    project function qualname."""
    if isinstance(expr, ast.Call):
        qual = info.ctx.resolve_call_name(expr.func)
        if qual is not None and qual.rsplit(".", 1)[-1] == "partial" \
                and expr.args:
            return _resolve_callable_ref(graph, info, expr.args[0])
        return None
    if isinstance(expr, ast.Name):
        aliased = info.ctx.aliases.get(expr.id)
        if aliased is not None:
            return graph.resolve_function(info.module, aliased)
        return graph.resolve_function(info.module,
                                      f"{info.module}.{expr.id}")
    if isinstance(expr, ast.Attribute) and isinstance(expr.value, ast.Name) \
            and expr.value.id in ("self", "cls") and info.class_name:
        qual = f"{info.module}.{info.class_name}.{expr.attr}"
        return qual if qual in graph.functions else None
    return None


def worker_reachable(graph: ModuleGraph) -> Set[str]:
    """Functions that may execute inside a process-pool worker.

    Seeds are (a) everything defined under ``repro.parallel`` — the
    executor, worker bootstrap and broadcast machinery all run in the
    child — and (b) every trial callable handed to an executor
    submission call (``run_trials(...)``, ``TrialExecutor.run/map``),
    unwrapping ``functools.partial``. The closure follows loose edges:
    over-approximation is the safe direction for "could this run in a
    worker?".
    """
    seeds: Set[str] = set()
    for module in graph.modules_with_prefix("repro.parallel"):
        seeds.update(f.qualname for f in graph.functions_in_module(module))
    for info in graph.functions.values():
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            if not self_is_executor_submission(graph, info, node):
                continue
            expr = _trial_fn_expr(node)
            if expr is None:
                continue
            target = _resolve_callable_ref(graph, info, expr)
            if target is not None:
                seeds.add(target)
    return graph.closure(seeds, strict_only=False)


def self_is_executor_submission(graph: ModuleGraph, info: FunctionInfo,
                                call: ast.Call) -> bool:
    """Whether ``call`` hands a trial callable to the parallel executor."""
    func = call.func
    if isinstance(func, ast.Name):
        aliased = info.ctx.aliases.get(func.id)
        dotted = aliased or f"{info.module}.{func.id}"
        target = graph.resolve_function(info.module, dotted) or dotted
        tail = target.rsplit(".", 1)[-1]
        return tail == "run_trials" and "parallel" in target
    if isinstance(func, ast.Attribute) and func.attr in _EXECUTOR_ENTRY_NAMES:
        # Method form: executor.run(fn, ...) / executor.map(fn, ...) on
        # an unknown receiver — accept when any repro.parallel function
        # carries that name (loose, deliberately).
        return any("parallel" in qual
                   for qual in graph.by_name.get(func.attr, ()))
    return False


# ----------------------------------------------------------------------
# R9: RNG discipline in worker-reachable code
# ----------------------------------------------------------------------
_GENERATOR_CTORS = ("numpy.random.default_rng", "numpy.random.Generator",
                    "numpy.random.RandomState")
_GENERATOR_FACTORY_TAILS = ("make_rng", "default_rng", "spawn_rngs",
                            "Generator", "RandomState")


def _generator_globals(graph: ModuleGraph) -> Dict[Tuple[str, str], int]:
    """Module-level names bound to RNG generators: (module, name) -> line."""
    out: Dict[Tuple[str, str], int] = {}
    for module, bindings in graph.module_globals.items():
        ctx = graph.modules[module]
        for name, binding in bindings.items():
            value = binding.value
            if not isinstance(value, ast.Call):
                continue
            qual = ctx.resolve_call_name(value.func)
            if qual is None:
                continue
            if (qual in _GENERATOR_CTORS
                    or qual.rsplit(".", 1)[-1] in _GENERATOR_FACTORY_TAILS):
                out[(module, name)] = binding.lineno
    return out


class RngDisciplineRule(ProjectRule):
    """No generator created outside ``repro.utils.rng`` may flow into
    code reachable from the process-pool workers. A worker that builds
    (or shares) its own generator instead of consuming the spawned
    per-trial stream silently breaks the jobs=N == jobs=1 bit-identity
    the paper's trial statistics rest on (DESIGN.md §4c).
    """

    code = "R9"
    name = "worker-rng-discipline"
    description = ("RNG generator constructed or consumed outside the "
                   "spawned per-trial stream in worker-reachable code "
                   "(justify vetted exceptions with '# rng-ok — reason')")

    def check_project(self, graph: ModuleGraph,
                      options: LintOptions) -> Iterator[Violation]:
        reachable = worker_reachable(graph)
        if not reachable:
            return
        gen_globals = _generator_globals(graph)
        # A module-level generator in the parallel/data packages is
        # materialised at import time inside every worker: flag the
        # definition itself, read or not.
        for (module, name), lineno in sorted(gen_globals.items()):
            if module.startswith(("repro.parallel", "repro.data")):
                ctx = graph.modules[module]
                binding = graph.module_globals[module][name]
                if not _justified(ctx, "rng-ok", lineno,
                                  getattr(binding.node, "end_lineno", None)):
                    yield self._at(
                        ctx, binding.node, self.code,
                        f"module-level generator {name!r} in {module} — "
                        f"workers import this module, so every process "
                        f"gets an independent stream; pass spawned "
                        f"per-trial streams instead")
        for qual in sorted(reachable):
            info = graph.functions[qual]
            if info.module == "repro.utils.rng" \
                    or not info.module.startswith("repro"):
                continue
            yield from self._check_function(graph, info, gen_globals)

    def _check_function(self, graph: ModuleGraph, info: FunctionInfo,
                        gen_globals: Dict[Tuple[str, str], int],
                        ) -> Iterator[Violation]:
        ctx = info.ctx
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                qual = ctx.resolve_call_name(node.func)
                if qual in _GENERATOR_CTORS:
                    if not _justified(ctx, "rng-ok", node.lineno,
                                      node.end_lineno):
                        yield self._at(
                            ctx, node, self.code,
                            f"{qual.rsplit('.', 1)[-1]}() constructs a "
                            f"generator inside worker-reachable "
                            f"{info.qualname} — trials must consume their "
                            f"spawned per-trial stream "
                            f"(repro.parallel.rngshard)")
                elif (qual is not None
                        and qual.rsplit(".", 1)[-1] == "make_rng"
                        and self._is_fresh_entropy(node)):
                    if not _justified(ctx, "rng-ok", node.lineno,
                                      node.end_lineno):
                        yield self._at(
                            ctx, node, self.code,
                            f"make_rng() with no seed in worker-reachable "
                            f"{info.qualname} draws OS entropy — results "
                            f"would differ per worker; thread the trial "
                            f"stream through instead")
            elif isinstance(node, ast.Name) and isinstance(node.ctx,
                                                           ast.Load):
                source = self._global_generator_source(graph, info, node.id,
                                                      gen_globals)
                if source is not None:
                    if not _justified(ctx, "rng-ok", node.lineno):
                        yield self._at(
                            ctx, node, self.code,
                            f"worker-reachable {info.qualname} reads the "
                            f"module-level generator {source} — a shared "
                            f"stream is consumed in pool-dependent order, "
                            f"breaking jobs=N determinism; use the spawned "
                            f"per-trial stream")

    @staticmethod
    def _is_fresh_entropy(call: ast.Call) -> bool:
        if call.keywords:
            return False
        if not call.args:
            return True
        first = call.args[0]
        return isinstance(first, ast.Constant) and first.value is None

    @staticmethod
    def _global_generator_source(graph: ModuleGraph, info: FunctionInfo,
                                 name: str,
                                 gen_globals: Dict[Tuple[str, str], int],
                                 ) -> Optional[str]:
        if (info.module, name) in gen_globals:
            return f"{info.module}.{name}"
        aliased = info.ctx.aliases.get(name)
        if aliased is not None and "." in aliased:
            module, attr = aliased.rsplit(".", 1)
            if (module, attr) in gen_globals:
                return aliased
        return None


# ----------------------------------------------------------------------
# R10: fork-safety of module state and shared memory
# ----------------------------------------------------------------------
_MUTABLE_VALUE_NODES = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)
_MUTABLE_CTOR_TAILS = {"list", "dict", "set", "bytearray", "defaultdict",
                       "OrderedDict", "Counter", "deque"}
_MUTATOR_METHODS = {"append", "extend", "insert", "add", "update",
                    "setdefault", "pop", "popitem", "remove", "discard",
                    "clear"}
_SHM_CTOR = "multiprocessing.shared_memory.SharedMemory"


def _mutable_global_names(graph: ModuleGraph, module: str) -> Set[str]:
    names: Set[str] = set()
    ctx = graph.modules[module]
    for name, binding in graph.module_globals.get(module, {}).items():
        value = binding.value
        if isinstance(value, _MUTABLE_VALUE_NODES):
            names.add(name)
        elif isinstance(value, ast.Call):
            qual = ctx.resolve_call_name(value.func)
            if qual is not None \
                    and qual.rsplit(".", 1)[-1] in _MUTABLE_CTOR_TAILS:
                names.add(name)
    return names


class ForkSafetyRule(ProjectRule):
    """Pool workers are forked (or freshly spawned) copies: module-level
    state written inside a worker diverges per process and silently
    desynchronises from the parent, and a ``shared_memory`` segment
    without a paired ``close``/``unlink`` leaks until reboot. Flags
    (a) rebinds/mutations of module globals inside worker-reachable
    functions and (b) ``SharedMemory`` usage in modules that never
    reference ``close``/``unlink``.
    """

    code = "R10"
    name = "fork-safety"
    description = ("module-level state written in worker-reachable code, "
                   "or shared_memory without paired close/unlink "
                   "(justify vetted exceptions with '# fork-ok — reason')")

    def check_project(self, graph: ModuleGraph,
                      options: LintOptions) -> Iterator[Violation]:
        reachable = worker_reachable(graph)
        for qual in sorted(reachable):
            info = graph.functions[qual]
            if not info.module.startswith("repro"):
                continue
            yield from self._check_global_writes(graph, info)
        yield from self._check_shared_memory(graph)

    def _check_global_writes(self, graph: ModuleGraph,
                             info: FunctionInfo) -> Iterator[Violation]:
        ctx = info.ctx
        declared_global: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)
        mutable = _mutable_global_names(graph, info.module)
        module_names = set(graph.module_globals.get(info.module, {}))
        for node in ast.walk(info.node):
            hit: Optional[Tuple[ast.AST, str, str]] = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    if isinstance(target, ast.Name) \
                            and target.id in declared_global \
                            and target.id in module_names:
                        hit = (node, target.id, "rebinds")
                    elif isinstance(target, ast.Subscript) \
                            and isinstance(target.value, ast.Name) \
                            and target.value.id in mutable:
                        hit = (node, target.value.id, "writes into")
            elif isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _MUTATOR_METHODS \
                    and isinstance(node.func.value, ast.Name) \
                    and node.func.value.id in mutable:
                hit = (node, node.func.value.id, "mutates")
            if hit is None:
                continue
            stmt, name, verb = hit
            if _justified(ctx, "fork-ok", stmt.lineno,
                          getattr(stmt, "end_lineno", None)):
                continue
            yield self._at(
                ctx, stmt, self.code,
                f"worker-reachable {info.qualname} {verb} module-level "
                f"{name!r} — each pool worker holds its own copy, so the "
                f"write never reaches the parent and fork-inherited state "
                f"goes stale; return results instead, or justify with "
                f"'# fork-ok — reason'")

    def _check_shared_memory(self,
                             graph: ModuleGraph) -> Iterator[Violation]:
        for module, ctx in sorted(graph.modules.items()):
            if not module.startswith("repro"):
                continue
            shm_calls: List[ast.Call] = []
            attrs: Set[str] = set()
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Attribute):
                    attrs.add(node.attr)
                if isinstance(node, ast.Call):
                    qual = ctx.resolve_call_name(node.func)
                    if qual == _SHM_CTOR:
                        shm_calls.append(node)
            for call in shm_calls:
                creates = any(kw.arg == "create"
                              and isinstance(kw.value, ast.Constant)
                              and kw.value.value is True
                              for kw in call.keywords)
                missing = [op for op in
                           (("close", "unlink") if creates else ("close",))
                           if op not in attrs]
                if not missing:
                    continue
                if _justified(ctx, "fork-ok", call.lineno, call.end_lineno):
                    continue
                role = "created" if creates else "attached"
                yield self._at(
                    ctx, call, self.code,
                    f"SharedMemory segment {role} here but {module} never "
                    f"references {' or '.join(missing)} — an unreleased "
                    f"segment outlives the process (leaks until reboot); "
                    f"pair every segment with close()"
                    + ("/unlink()" if creates else "()"))


# ----------------------------------------------------------------------
# R11: span hygiene (a file-local rule)
# ----------------------------------------------------------------------
_SPAN_QUALNAMES = ("repro.obs.trace.span", "repro.obs.span")


class SpanHygieneRule(Rule):
    """``Tracer`` spans must be opened structurally — as a ``with``
    context or a decorator. A ``span(...)`` kept in a variable (or a
    raw ``TRACER.push``) has no guaranteed ``pop``: one early return
    and every later record nests under a ghost parent, corrupting the
    ``--profile`` manifests the reproduction's timing claims cite.
    """

    code = "R11"
    name = "span-hygiene"
    description = ("obs span opened outside a with-statement/decorator, "
                   "or raw TRACER.push/pop, inside src/repro "
                   "(justify with '# span-ok — reason')")

    exempt_suffixes = ("repro/obs/trace.py",)
    _exempt_dirs = ("benchmarks/", "examples/", "tests/", "tools/")

    def applies_to(self, ctx: FileContext) -> bool:
        if any(d in ctx.path for d in self._exempt_dirs):
            return False
        if not any(d in ctx.path for d in ("src/repro/", "repro/")):
            return False
        return super().applies_to(ctx)

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        allowed = self._structural_call_ids(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qual = ctx.resolve_call_name(node.func)
            if qual in _SPAN_QUALNAMES:
                if id(node) in allowed:
                    continue
                if _justified(ctx, "span-ok", node.lineno, node.end_lineno):
                    continue
                yield self._violation(
                    ctx, node,
                    "span(...) opened outside a 'with' statement or "
                    "decorator — nothing guarantees its pop, so one early "
                    "exit corrupts the span tree; use 'with span(...):' "
                    "(or '# span-ok — reason' for a vetted exception)")
            elif qual is not None and qual.endswith((".TRACER.push",
                                                     ".TRACER.pop")):
                if _justified(ctx, "span-ok", node.lineno, node.end_lineno):
                    continue
                yield self._violation(
                    ctx, node,
                    "raw TRACER.push/pop — open spans through the span() "
                    "context manager/decorator so exception paths close "
                    "them (or '# span-ok — reason')")

    @staticmethod
    def _structural_call_ids(tree: ast.Module) -> Set[int]:
        allowed: Set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    allowed.add(id(item.context_expr))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                for dec in node.decorator_list:
                    allowed.add(id(dec))
        return allowed


# ----------------------------------------------------------------------
# R12: exception hygiene (a file-local rule)
# ----------------------------------------------------------------------
class ExceptionHygieneRule(Rule):
    """Broad ``except Exception`` handlers swallow the honest crash a
    corrupted artifact or poisoned worker *should* produce. Where the
    breadth is deliberate (cache miss on unreadable archive, trial
    fault capture) the tree already annotates it ``# noqa: BLE001 —
    reason``; this rule makes that convention mandatory, and bans bare
    ``except:`` outright (it also catches KeyboardInterrupt/SystemExit).
    """

    code = "R12"
    name = "exception-hygiene"
    description = ("broad 'except Exception' without the justified "
                   "'# noqa: BLE001 — reason' marker (bare 'except:' is "
                   "never allowed)")

    _BROAD = ("Exception", "BaseException")

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self._violation(
                    ctx, node,
                    "bare 'except:' also catches KeyboardInterrupt and "
                    "SystemExit — name the exceptions (at the broadest, "
                    "'except Exception' with '# noqa: BLE001 — reason')")
                continue
            broad = self._broad_name(ctx, node.type)
            if broad is None:
                continue
            if _justified(ctx, "noqa: BLE001", node.lineno):
                continue
            yield self._violation(
                ctx, node,
                f"'except {broad}' without a justified marker — either "
                f"narrow the exception types or annotate the line with "
                f"'# noqa: BLE001 — <why the breadth is safe here>'")

    def _broad_name(self, ctx: FileContext,
                    type_node: ast.expr) -> Optional[str]:
        nodes: Sequence[ast.expr] = (type_node.elts
                                     if isinstance(type_node, ast.Tuple)
                                     else [type_node])
        for node in nodes:
            if isinstance(node, ast.Name) and node.id in self._BROAD:
                return node.id
            if isinstance(node, ast.Attribute) and node.attr in self._BROAD:
                return node.attr
        return None


AST_RULES: Tuple[Rule, ...] = (
    CacheSaltDriftRule(),
    RngDisciplineRule(),
    ForkSafetyRule(),
    SpanHygieneRule(),
    ExceptionHygieneRule(),
)
