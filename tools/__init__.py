"""Developer tooling for the reproduction repo (not shipped with repro)."""
