"""Edge cases for the functional ops: rectangular inputs, odd strides."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.helpers import gradcheck
from tests.nn.test_functional import naive_conv2d


class TestRectangularInputs:
    def test_conv_on_non_square_image(self, rng):
        x = rng.normal(size=(2, 3, 5, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=1, padding=1)
        assert out.shape == (2, 4, 5, 9)
        np.testing.assert_allclose(out.data, naive_conv2d(x, w, None, 1, 1),
                                   atol=1e-10)

    def test_pool_on_non_square_image(self, rng):
        x = rng.normal(size=(1, 2, 4, 8))
        out = F.max_pool2d(Tensor(x), 2)
        assert out.shape == (1, 2, 2, 4)

    def test_conv_grad_non_square(self):
        gradcheck(
            lambda ts: (F.conv2d(ts[0], ts[1], None, stride=1,
                                 padding=1) ** 2).sum(),
            [(1, 2, 3, 5), (2, 2, 3, 3)])


class TestDegenerateShapes:
    def test_conv_kernel_equals_image(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 4, 4))
        out = F.conv2d(Tensor(x), Tensor(w))
        assert out.shape == (2, 5, 1, 1)
        expected = np.einsum("nchw,fchw->nf", x, w)
        np.testing.assert_allclose(out.data.reshape(2, 5), expected,
                                   atol=1e-10)

    def test_pool_whole_image(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        out = F.max_pool2d(Tensor(x), 4)
        assert out.data.reshape(()) == x.max()

    def test_batch_of_one(self, rng):
        x = rng.normal(size=(1, 2, 6, 6))
        w = rng.normal(size=(3, 2, 3, 3))
        out = F.conv2d(Tensor(x), Tensor(w), None, 2, 1)
        assert out.shape == (1, 3, 3, 3)

    def test_single_class_cross_entropy(self):
        loss = F.cross_entropy(Tensor(np.zeros((3, 1))), np.zeros(3, int))
        np.testing.assert_allclose(loss.item(), 0.0)


class TestLargeStride:
    def test_stride_larger_than_kernel(self, rng):
        x = rng.normal(size=(1, 1, 7, 7))
        w = rng.normal(size=(1, 1, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w), None, stride=3)
        np.testing.assert_allclose(out.data,
                                   naive_conv2d(x, w, None, 3, 0),
                                   atol=1e-10)

    def test_pool_stride_larger_than_kernel(self, rng):
        x = rng.normal(size=(1, 1, 7, 7))
        out = F.avg_pool2d(Tensor(x), 2, stride=3)
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_allclose(out.data[0, 0, 0, 0],
                                   x[0, 0, :2, :2].mean())
