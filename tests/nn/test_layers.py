"""Layer modules: shapes, parameter registration, modes."""

import numpy as np
import pytest

from repro.nn.layers import (AvgPool2d, BatchNorm2d, Conv2d, Dropout,
                             Flatten, GlobalAvgPool2d, Identity, Linear,
                             MaxPool2d, ReLU, Sequential)
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(8, 3, rng=rng)
        assert layer(Tensor(np.ones((4, 8)))).shape == (4, 3)

    def test_no_bias(self, rng):
        layer = Linear(8, 3, bias=False, rng=rng)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_parameters_registered(self, rng):
        names = dict(Linear(4, 2, rng=rng).named_parameters())
        assert set(names) == {"weight", "bias"}

    def test_deterministic_init(self):
        a = Linear(6, 2, rng=42).weight.data
        b = Linear(6, 2, rng=42).weight.data
        np.testing.assert_array_equal(a, b)

    def test_repr(self, rng):
        assert "Linear(8, 3)" == repr(Linear(8, 3, rng=rng))


class TestConv2d:
    def test_output_shape_padded(self, rng):
        layer = Conv2d(3, 8, 3, padding=1, rng=rng)
        assert layer(Tensor(np.ones((2, 3, 16, 16)))).shape == (2, 8, 16, 16)

    def test_output_shape_strided(self, rng):
        layer = Conv2d(3, 8, 3, stride=2, padding=1, rng=rng)
        assert layer(Tensor(np.ones((2, 3, 16, 16)))).shape == (2, 8, 8, 8)

    def test_no_bias_param_count(self, rng):
        layer = Conv2d(2, 4, 3, bias=False, rng=rng)
        assert len(list(layer.parameters())) == 1

    def test_weight_shape(self, rng):
        assert Conv2d(5, 7, 3, rng=rng).weight.shape == (7, 5, 3, 3)


class TestPoolingLayers:
    def test_max_pool_shape(self):
        assert MaxPool2d(2)(Tensor(np.ones((1, 2, 8, 8)))).shape == (1, 2, 4, 4)

    def test_avg_pool_shape(self):
        assert AvgPool2d(4)(Tensor(np.ones((1, 2, 8, 8)))).shape == (1, 2, 2, 2)

    def test_stride_defaults_to_kernel(self):
        assert MaxPool2d(3).stride == 3

    def test_global_avg_pool_shape(self):
        assert GlobalAvgPool2d()(Tensor(np.ones((3, 5, 7, 7)))).shape == (3, 5)


class TestBatchNorm2d:
    def test_shapes_and_params(self):
        bn = BatchNorm2d(6)
        out = bn(Tensor(make_rng(0).normal(size=(4, 6, 3, 3))))
        assert out.shape == (4, 6, 3, 3)
        assert {n for n, _ in bn.named_parameters()} == {"gamma", "beta"}

    def test_buffers_registered(self):
        bn = BatchNorm2d(4)
        assert {n for n, _ in bn.named_buffers()} == \
            {"running_mean", "running_var"}

    def test_eval_mode_is_deterministic(self, rng):
        bn = BatchNorm2d(2)
        x1 = rng.normal(size=(4, 2, 3, 3))
        bn.train()
        bn(Tensor(x1))
        bn.eval()
        x2 = rng.normal(size=(4, 2, 3, 3))
        out_a = bn(Tensor(x2)).data
        out_b = bn(Tensor(x2)).data
        np.testing.assert_array_equal(out_a, out_b)


class TestMisc:
    def test_relu(self):
        out = ReLU()(Tensor(np.array([-1.0, 1.0])))
        np.testing.assert_array_equal(out.data, [0.0, 1.0])

    def test_flatten(self):
        assert Flatten()(Tensor(np.ones((2, 3, 4, 5)))).shape == (2, 60)

    def test_identity(self):
        t = Tensor(np.ones(3))
        assert Identity()(t) is t

    def test_dropout_eval_identity(self, rng):
        d = Dropout(0.9, rng=rng)
        d.eval()
        x = Tensor(np.ones((4, 4)))
        np.testing.assert_array_equal(d(x).data, x.data)

    def test_dropout_train_masks(self, rng):
        d = Dropout(0.5, rng=rng)
        d.train()
        out = d(Tensor(np.ones((20, 20))))
        assert (out.data == 0).any()


class TestSequential:
    def test_forward_order(self, rng):
        seq = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
        assert seq(Tensor(np.ones((3, 4)))).shape == (3, 2)

    def test_len_iter_getitem(self, rng):
        seq = Sequential(ReLU(), Flatten())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU)
        assert [type(m) for m in seq] == [ReLU, Flatten]

    def test_child_parameters_collected(self, rng):
        seq = Sequential(Linear(4, 4, rng=rng), Linear(4, 2, rng=rng))
        assert len(list(seq.parameters())) == 4

    def test_train_mode_propagates(self, rng):
        seq = Sequential(Dropout(0.5), BatchNorm2d(2))
        seq.eval()
        assert not seq[0].training and not seq[1].training
