"""Model architectures: shapes, structure, parameter budgets."""

import numpy as np
import pytest

from repro.nn.models import (LeNet, resnet18, resnet18_slim, resnet_tiny,
                             vgg16, vgg16_slim)
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


class TestLeNet:
    def test_output_shape(self):
        net = LeNet(rng=0)
        out = net(Tensor(np.zeros((2, 1, 28, 28))))
        assert out.shape == (2, 10)

    def test_parameter_count(self):
        # Classic LeNet-5: 61,706 parameters.
        assert LeNet(rng=0).num_parameters() == 61706

    def test_custom_classes(self):
        net = LeNet(num_classes=7, rng=0)
        assert net(Tensor(np.zeros((1, 1, 28, 28)))).shape == (1, 7)


class TestResNet:
    def test_tiny_forward(self):
        net = resnet_tiny(rng=0)
        assert net(Tensor(np.zeros((2, 3, 32, 32)))).shape == (2, 10)

    def test_slim_forward(self):
        net = resnet18_slim(base_width=4, rng=0)
        assert net(Tensor(np.zeros((1, 3, 32, 32)))).shape == (1, 10)

    def test_full_resnet18_structure(self):
        """The faithful model is constructible with the right depth/width."""
        net = resnet18(rng=0)
        # 4 stages x 2 BasicBlocks, each with 2 convs, + stem + shortcuts.
        from repro.nn.layers import Conv2d
        convs = [m for _, m in net.named_modules() if isinstance(m, Conv2d)]
        assert len(convs) == 1 + 16 + 3  # stem + block convs + 3 projections
        assert net.fc.weight.shape == (10, 512)
        # ~11M parameters like torchvision's CIFAR-style ResNet-18.
        assert 10_500_000 < net.num_parameters() < 11_500_000

    def test_downsampling_halves_spatial(self):
        net = resnet18_slim(base_width=4, rng=0)
        feats = net.stages(net.stem(Tensor(np.zeros((1, 3, 32, 32)))))
        assert feats.shape == (1, 32, 4, 4)   # 3 downsamples from 32

    def test_shortcut_projection_only_on_shape_change(self):
        from repro.nn.layers import Identity
        from repro.nn.models.resnet import BasicBlock
        same = BasicBlock(8, 8, stride=1, rng=0)
        diff = BasicBlock(8, 16, stride=2, rng=0)
        assert isinstance(same.shortcut, Identity)
        assert not isinstance(diff.shortcut, Identity)


class TestVGG:
    def test_slim_forward(self):
        net = vgg16_slim(width_scale=0.125, rng=0)
        assert net(Tensor(np.zeros((1, 3, 32, 32)))).shape == (1, 10)

    def test_full_vgg16_depth(self):
        from repro.nn.layers import Conv2d, Linear
        net = vgg16(rng=0)
        convs = [m for _, m in net.named_modules() if isinstance(m, Conv2d)]
        linears = [m for _, m in net.named_modules() if isinstance(m, Linear)]
        assert len(convs) == 13
        assert len(linears) == 3

    def test_width_scale_reduces_params(self):
        assert vgg16_slim(width_scale=0.125, rng=0).num_parameters() < \
            vgg16(rng=0).num_parameters() / 10


class TestTrainability:
    def test_lenet_loss_decreases(self, blob_data):
        """One gradient step on real data reduces the loss."""
        from repro.nn import functional as F
        from repro.nn.optim import Adam

        net = LeNet(rng=0)
        x = make_rng(0).random((8, 1, 28, 28))
        y = np.arange(8) % 10
        opt = Adam(net.parameters(), lr=1e-2)
        losses = []
        for _ in range(5):
            opt.zero_grad()
            loss = F.cross_entropy(net(Tensor(x)), y)
            loss.backward()
            opt.step()
            losses.append(loss.item())
        assert losses[-1] < losses[0]
