"""Functional ops: values against naive references, gradients numerically."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.tensor import Tensor
from tests.helpers import gradcheck, numeric_grad
from repro.utils.rng import make_rng


def naive_conv2d(x, w, b, stride, pad):
    """Straightforward quadruple-loop conv for value checking."""
    n, c, h, ww = x.shape
    f, _, kh, kw = w.shape
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (ww + 2 * pad - kw) // stride + 1
    out = np.zeros((n, f, oh, ow))
    for ni in range(n):
        for fi in range(f):
            for i in range(oh):
                for j in range(ow):
                    patch = xp[ni, :, i * stride:i * stride + kh,
                               j * stride:j * stride + kw]
                    out[ni, fi, i, j] = (patch * w[fi]).sum()
            if b is not None:
                out[ni, fi] += b[fi]
    return out


class TestIm2Col:
    def test_roundtrip_adjoint(self, rng):
        """col2im is the exact adjoint of im2col: <Ax, y> == <x, A*y>."""
        x = rng.normal(size=(2, 3, 6, 6))
        cols, oh, ow = F.im2col(x, 3, 3, 1, 1)
        y = rng.normal(size=cols.shape)
        lhs = (cols * y).sum()
        back = F.col2im(y, x.shape, 3, 3, 1, 1)
        rhs = (x * back).sum()
        np.testing.assert_allclose(lhs, rhs)

    def test_output_shape(self, rng):
        cols, oh, ow = F.im2col(rng.normal(size=(1, 2, 5, 5)), 3, 3, 2, 0)
        assert (oh, ow) == (2, 2)
        assert cols.shape == (1, 2 * 9, 4)


class TestConv2d:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_values_match_naive(self, rng, stride, pad):
        x = rng.normal(size=(2, 3, 6, 6))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=4)
        out = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride, pad)
        np.testing.assert_allclose(out.data,
                                   naive_conv2d(x, w, b, stride, pad),
                                   atol=1e-10)

    def test_gradcheck_weight_and_input(self):
        gradcheck(
            lambda ts: (F.conv2d(ts[0], ts[1], ts[2], stride=1, padding=1)
                        ** 2).sum(),
            [(1, 2, 4, 4), (3, 2, 3, 3), (3,)])

    def test_gradcheck_strided(self):
        gradcheck(
            lambda ts: (F.conv2d(ts[0], ts[1], None, stride=2) ** 2).sum(),
            [(1, 1, 5, 5), (2, 1, 3, 3)])

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        w = rng.normal(size=(1, 1, 2, 2))
        out = F.conv2d(Tensor(x), Tensor(w))
        np.testing.assert_allclose(out.data,
                                   naive_conv2d(x, w, None, 1, 0), atol=1e-10)

    def test_1x1_conv_is_channel_mix(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        w = rng.normal(size=(5, 3, 1, 1))
        out = F.conv2d(Tensor(x), Tensor(w)).data
        expected = np.einsum("fc,nchw->nfhw", w[:, :, 0, 0], x)
        np.testing.assert_allclose(out, expected, atol=1e-10)


class TestPooling:
    def test_max_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_array_equal(out.data.reshape(2, 2),
                                      [[5, 7], [13, 15]])

    def test_max_pool_grad_hits_argmax(self):
        x = Tensor(np.arange(16.0).reshape(1, 1, 4, 4), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        expected = np.zeros((4, 4))
        expected[1, 1] = expected[1, 3] = expected[3, 1] = expected[3, 3] = 1
        np.testing.assert_array_equal(x.grad[0, 0], expected)

    def test_max_pool_overlapping_stride(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = F.max_pool2d(Tensor(x), 3, stride=1)
        assert out.shape == (1, 1, 3, 3)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_avg_pool_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = F.avg_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data.reshape(2, 2),
                                   [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_gradcheck(self):
        gradcheck(lambda ts: (F.avg_pool2d(ts[0], 2) ** 2).sum(),
                  [(1, 2, 4, 4)])

    def test_global_avg_pool(self, rng):
        x = rng.normal(size=(2, 3, 4, 4))
        out = F.global_avg_pool2d(Tensor(x))
        np.testing.assert_allclose(out.data, x.mean(axis=(2, 3)))


class TestLinear:
    def test_values(self, rng):
        x = rng.normal(size=(4, 5))
        w = rng.normal(size=(3, 5))
        b = rng.normal(size=3)
        out = F.linear(Tensor(x), Tensor(w), Tensor(b))
        np.testing.assert_allclose(out.data, x @ w.T + b)

    def test_gradcheck(self):
        gradcheck(lambda ts: (F.linear(ts[0], ts[1], ts[2]) ** 2).sum(),
                  [(3, 4), (2, 4), (2,)])


class TestBatchNorm:
    def test_training_normalises(self, rng):
        x = rng.normal(3.0, 2.0, size=(8, 4, 5, 5))
        gamma = Tensor(np.ones(4), requires_grad=True)
        beta = Tensor(np.zeros(4), requires_grad=True)
        rmean, rvar = np.zeros(4), np.ones(4)
        out = F.batch_norm2d(Tensor(x), gamma, beta, rmean, rvar,
                             training=True)
        np.testing.assert_allclose(out.data.mean(axis=(0, 2, 3)),
                                   np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.data.std(axis=(0, 2, 3)),
                                   np.ones(4), atol=1e-3)

    def test_running_stats_updated(self, rng):
        x = rng.normal(5.0, 1.0, size=(16, 2, 4, 4))
        rmean, rvar = np.zeros(2), np.ones(2)
        F.batch_norm2d(Tensor(x), Tensor(np.ones(2)), Tensor(np.zeros(2)),
                       rmean, rvar, training=True, momentum=1.0)
        np.testing.assert_allclose(rmean, x.mean(axis=(0, 2, 3)), atol=1e-10)

    def test_eval_uses_running_stats(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rmean = np.array([1.0, -1.0])
        rvar = np.array([4.0, 9.0])
        out = F.batch_norm2d(Tensor(x), Tensor(np.ones(2)),
                             Tensor(np.zeros(2)), rmean, rvar,
                             training=False, eps=0.0)
        expected = (x - rmean.reshape(1, 2, 1, 1)) / \
            np.sqrt(rvar.reshape(1, 2, 1, 1))
        np.testing.assert_allclose(out.data, expected)

    def test_gradcheck_gamma_beta(self, rng):
        x = rng.normal(size=(4, 2, 3, 3))
        rmean, rvar = np.zeros(2), np.ones(2)
        gradcheck(
            lambda ts: (F.batch_norm2d(Tensor(x), ts[0], ts[1], rmean.copy(),
                                       rvar.copy(), training=True) ** 2).sum(),
            [(2,), (2,)])


class TestDropout:
    def test_identity_in_eval(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert F.dropout(x, 0.5, training=False) is x

    def test_identity_at_p0(self, rng):
        x = Tensor(rng.normal(size=(4, 4)))
        assert F.dropout(x, 0.0, training=True) is x

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, training=True)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.5, training=True,
                        rng=make_rng(0))
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_mask_backward(self):
        x = Tensor(np.ones((10, 10)), requires_grad=True)
        out = F.dropout(x, 0.5, training=True, rng=make_rng(1))
        out.sum().backward()
        np.testing.assert_allclose(x.grad, out.data)


class TestSoftmaxAndLosses:
    def test_log_softmax_normalises(self, rng):
        x = rng.normal(size=(5, 7))
        out = F.log_softmax(Tensor(x))
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1),
                                   np.ones(5), atol=1e-12)

    def test_log_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 1000.1]]))
        out = F.log_softmax(x)
        assert np.all(np.isfinite(out.data))

    def test_log_softmax_gradcheck(self):
        gradcheck(lambda ts: (F.log_softmax(ts[0]) ** 2).sum(), [(3, 4)])

    def test_softmax_sums_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(4, 6))))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_cross_entropy_value(self):
        logits = np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]]))
        loss = F.cross_entropy(Tensor(logits), np.array([0, 1]))
        expected = -(np.log(0.7) + np.log(0.8)) / 2
        np.testing.assert_allclose(loss.item(), expected)

    def test_cross_entropy_gradient(self, rng):
        x = rng.normal(size=(4, 5))
        labels = np.array([0, 1, 2, 3])
        t = Tensor(x, requires_grad=True)
        F.cross_entropy(t, labels).backward()
        expected = numeric_grad(
            lambda: float(F.cross_entropy(Tensor(t.data), labels).data),
            t.data)
        np.testing.assert_allclose(t.grad, expected, atol=1e-6)

    def test_cross_entropy_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.array([0, 1]))

    def test_mse_loss(self):
        pred = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        target = Tensor(np.array([0.0, 0.0]))
        loss = F.mse_loss(pred, target)
        np.testing.assert_allclose(loss.item(), 2.5)
        loss.backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])
