"""Module base class: traversal, state dicts, modes."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm2d, Linear, ReLU, Sequential
from repro.nn.module import Module, Parameter
from repro.nn.tensor import Tensor


class Nested(Module):
    def __init__(self):
        super().__init__()
        self.inner = Sequential(Linear(4, 4, rng=0), ReLU())
        self.head = Linear(4, 2, rng=1)
        self.scale = Parameter(np.ones(1))

    def forward(self, x):
        return self.head(self.inner(x)) * self.scale


class TestTraversal:
    def test_named_parameters_paths(self):
        names = {n for n, _ in Nested().named_parameters()}
        assert "scale" in names
        assert "head.weight" in names
        assert "inner.m0.weight" in names

    def test_parameter_count(self):
        # inner linear (w+b) + head (w+b) + scale
        assert len(list(Nested().parameters())) == 5

    def test_num_parameters(self):
        n = Nested().num_parameters()
        assert n == 4 * 4 + 4 + 4 * 2 + 2 + 1

    def test_named_modules_includes_self(self):
        mods = dict(Nested().named_modules())
        assert "" in mods
        assert "inner.m0" in mods

    def test_named_buffers(self):
        m = Sequential(BatchNorm2d(3))
        assert {n for n, _ in m.named_buffers()} == \
            {"m0.running_mean", "m0.running_var"}


class TestStateDict:
    def test_roundtrip(self):
        a, b = Nested(), Nested()
        b.load_state_dict(a.state_dict())
        for (_, pa), (_, pb) in zip(a.named_parameters(),
                                    b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_state_dict_is_a_copy(self):
        m = Nested()
        state = m.state_dict()
        state["scale"][...] = 99.0
        assert m.scale.data[0] != 99.0

    def test_load_rejects_unknown_key(self):
        with pytest.raises(KeyError):
            Nested().load_state_dict({"nonexistent": np.ones(1)})

    def test_load_rejects_shape_mismatch(self):
        m = Nested()
        state = m.state_dict()
        state["scale"] = np.ones(7)
        with pytest.raises(ValueError):
            m.load_state_dict(state)

    def test_buffers_in_state_dict(self):
        m = Sequential(BatchNorm2d(2))
        assert "m0.running_mean" in m.state_dict()

    def test_buffer_roundtrip_preserves_aliasing(self):
        m = Sequential(BatchNorm2d(2))
        state = m.state_dict()
        state["m0.running_mean"] = np.array([5.0, 6.0])
        m.load_state_dict(state)
        # The module attribute and _buffers entry must stay the same array.
        bn = m[0]
        np.testing.assert_array_equal(bn.running_mean, [5.0, 6.0])
        np.testing.assert_array_equal(bn._buffers["running_mean"], [5.0, 6.0])


class TestModes:
    def test_train_eval_recursive(self):
        m = Nested()
        m.eval()
        assert not m.inner.training
        m.train()
        assert m.inner.training

    def test_zero_grad(self):
        m = Nested()
        out = m(Tensor(np.ones((2, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(None)


class TestDeepCopy:
    def test_deepcopy_independent(self):
        import copy
        a = Nested()
        b = copy.deepcopy(a)
        b.scale.data[...] = 123.0
        assert a.scale.data[0] != 123.0

    def test_deepcopy_preserves_buffer_aliasing(self):
        import copy
        m = copy.deepcopy(Sequential(BatchNorm2d(2)))
        bn = m[0]
        bn.running_mean[...] = 7.0
        np.testing.assert_array_equal(bn._buffers["running_mean"],
                                      [7.0, 7.0])
