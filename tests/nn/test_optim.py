"""Optimizers: convergence on analytic problems, options, scheduler."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam, StepLR


def quadratic_step(opt, p, target):
    opt.zero_grad()
    # loss = 0.5 * ||p - target||^2, grad = p - target
    p.grad = p.data - target
    opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        opt = SGD([p], lr=0.1)
        target = np.array([1.0, 2.0])
        for _ in range(200):
            quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        target = np.array([0.0])
        trajectories = {}
        for momentum in (0.0, 0.9):
            p = Parameter(np.array([100.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                quadratic_step(opt, p, target)
            trajectories[momentum] = abs(p.data[0])
        assert trajectories[0.9] < trajectories[0.0]

    def test_weight_decay_shrinks(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 1.0

    def test_skips_none_grad(self):
        p = Parameter(np.array([3.0]))
        opt = SGD([p], lr=0.1)
        opt.step()  # no grad set: must be a no-op, not an error
        assert p.data[0] == 3.0

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([Parameter(np.ones(1))], lr=0.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -5.0]))
        opt = Adam([p], lr=0.3)
        target = np.array([-1.0, 4.0])
        for _ in range(300):
            quadratic_step(opt, p, target)
        np.testing.assert_allclose(p.data, target, atol=1e-3)

    def test_first_step_size_is_lr(self):
        # With bias correction, the first Adam step is ~lr in magnitude.
        p = Parameter(np.array([0.0]))
        opt = Adam([p], lr=0.5)
        opt.zero_grad()
        p.grad = np.array([1.0])
        opt.step()
        np.testing.assert_allclose(abs(p.data[0]), 0.5, rtol=1e-6)

    def test_scale_invariance(self):
        # Adam's per-parameter normalisation: huge gradients take the
        # same step size as small ones.
        results = []
        for scale in (1.0, 1e6):
            p = Parameter(np.array([0.0]))
            opt = Adam([p], lr=0.1)
            p.grad = np.array([scale])
            opt.step()
            results.append(abs(p.data[0]))
        np.testing.assert_allclose(results[0], results[1], rtol=1e-5)

    def test_weight_decay(self):
        p = Parameter(np.array([10.0]))
        opt = Adam([p], lr=0.1, weight_decay=0.1)
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] < 10.0


class TestStepLR:
    def test_decays_on_schedule(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        np.testing.assert_allclose(opt.lr, 0.1)

    def test_invalid_step_size(self):
        opt = SGD([Parameter(np.ones(1))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
