"""Training loop."""

import numpy as np
import pytest

from repro.nn.optim import SGD
from repro.nn.trainer import TrainResult, evaluate_accuracy, train_classifier
from tests.conftest import TinyMLP
from repro.utils.rng import make_rng


class TestTrainClassifier:
    def test_learns_blob_task(self, blob_data):
        model = TinyMLP(rng=make_rng(0))
        result = train_classifier(model, blob_data, epochs=8, batch_size=32,
                                  lr=5e-3, rng=1)
        assert result.final_accuracy > 0.9

    def test_losses_trend_down(self, blob_data):
        model = TinyMLP(rng=make_rng(0))
        result = train_classifier(model, blob_data, epochs=4, batch_size=32,
                                  lr=5e-3, rng=1)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_eval_data_used_for_scoring(self, blob_data):
        from tests.conftest import make_blob_dataset
        model = TinyMLP(rng=make_rng(0))
        holdout = make_blob_dataset(n=60, seed=9)
        result = train_classifier(model, blob_data, epochs=2, batch_size=32,
                                  eval_data=holdout, rng=1)
        assert len(result.epoch_accuracies) == 2

    def test_custom_optimizer(self, blob_data):
        model = TinyMLP(rng=make_rng(0))
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        result = train_classifier(model, blob_data, epochs=3, batch_size=32,
                                  optimizer=opt, rng=1)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_empty_result_nan(self):
        assert np.isnan(TrainResult().final_accuracy)


class TestEvaluateAccuracy:
    def test_perfect_model(self, blob_data, trained_tiny_mlp):
        assert evaluate_accuracy(trained_tiny_mlp, blob_data) > 0.9

    def test_untrained_near_chance(self, blob_data, tiny_mlp):
        acc = evaluate_accuracy(tiny_mlp, blob_data)
        assert acc < 0.8    # 4-class chance is 0.25; untrained stays low

    def test_sets_eval_mode(self, blob_data, tiny_mlp):
        tiny_mlp.train()
        evaluate_accuracy(tiny_mlp, blob_data)
        assert not tiny_mlp.training
