"""Autograd core: every op's gradient against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.tensor import Tensor, as_tensor, concatenate, stack
from tests.helpers import gradcheck
from repro.utils.rng import make_rng


class TestBasics:
    def test_construction_from_list(self):
        t = Tensor([1.0, 2.0, 3.0])
        assert t.shape == (3,)
        assert t.dtype == np.float64

    def test_integer_input_promoted_to_float(self):
        t = Tensor(np.arange(4))
        assert np.issubdtype(t.dtype, np.floating)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_item_scalar(self):
        assert Tensor(3.5).item() == 3.5

    def test_item_raises_on_vector(self):
        with pytest.raises(ValueError):
            Tensor([1.0, 2.0]).item()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))

    def test_len(self):
        assert len(Tensor(np.zeros((5, 2)))) == 5

    def test_as_tensor_passthrough(self):
        t = Tensor([1.0])
        assert as_tensor(t) is t

    def test_as_tensor_wraps_array(self):
        assert isinstance(as_tensor(np.ones(3)), Tensor)


class TestArithmeticGradients:
    def test_add(self):
        gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [(3, 4), (3, 4)])

    def test_add_broadcast_row(self):
        gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [(3, 4), (4,)])

    def test_add_broadcast_col(self):
        gradcheck(lambda ts: (ts[0] + ts[1]).sum(), [(3, 4), (3, 1)])

    def test_add_scalar_constant(self):
        gradcheck(lambda ts: (ts[0] + 2.5).sum(), [(3, 3)])

    def test_radd(self):
        gradcheck(lambda ts: (1.0 + ts[0]).sum(), [(2, 2)])

    def test_neg(self):
        gradcheck(lambda ts: (-ts[0]).sum(), [(4,)])

    def test_sub(self):
        gradcheck(lambda ts: (ts[0] - ts[1]).sum(), [(2, 3), (2, 3)])

    def test_rsub(self):
        gradcheck(lambda ts: (5.0 - ts[0]).sum(), [(4,)])

    def test_mul(self):
        gradcheck(lambda ts: (ts[0] * ts[1]).sum(), [(3, 2), (3, 2)])

    def test_mul_broadcast(self):
        gradcheck(lambda ts: (ts[0] * ts[1]).sum(), [(3, 2), (2,)])

    def test_div(self):
        gradcheck(lambda ts: (ts[0] / ts[1]).sum(), [(3,), (3,)],
                  positive=True)

    def test_rdiv(self):
        gradcheck(lambda ts: (2.0 / ts[0]).sum(), [(3,)], positive=True)

    def test_pow(self):
        gradcheck(lambda ts: (ts[0] ** 3).sum(), [(4,)])

    def test_pow_non_scalar_exponent_raises(self):
        with pytest.raises(TypeError):
            Tensor([1.0]) ** np.array([1.0, 2.0])

    def test_matmul_2d(self):
        gradcheck(lambda ts: (ts[0] @ ts[1]).sum(), [(3, 4), (4, 2)])

    def test_matmul_vector_result_values(self):
        a = make_rng(0).normal(size=(3, 4))
        b = make_rng(1).normal(size=(4, 2))
        out = Tensor(a) @ Tensor(b)
        np.testing.assert_allclose(out.data, a @ b)


class TestNonlinearGradients:
    def test_exp(self):
        gradcheck(lambda ts: ts[0].exp().sum(), [(3, 3)])

    def test_log(self):
        gradcheck(lambda ts: ts[0].log().sum(), [(3,)], positive=True)

    def test_sqrt(self):
        gradcheck(lambda ts: ts[0].sqrt().sum(), [(3,)], positive=True)

    def test_relu(self):
        # Avoid kinks at 0 by shifting away from it.
        gradcheck(lambda ts: (ts[0] + 10.0).relu().sum(), [(3, 3)])

    def test_relu_zeroes_negatives(self):
        t = Tensor([-1.0, 2.0, -3.0])
        np.testing.assert_array_equal(t.relu().data, [0.0, 2.0, 0.0])

    def test_tanh(self):
        gradcheck(lambda ts: ts[0].tanh().sum(), [(4,)])

    def test_sigmoid(self):
        gradcheck(lambda ts: ts[0].sigmoid().sum(), [(4,)])

    def test_abs(self):
        gradcheck(lambda ts: (ts[0] + 5.0).abs().sum(), [(3,)])

    def test_clip_gradient_masks_outside(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        np.testing.assert_array_equal(t.grad, [0.0, 1.0, 0.0])


class TestReductions:
    def test_sum_all(self):
        gradcheck(lambda ts: ts[0].sum(), [(3, 4)])

    def test_sum_axis0(self):
        gradcheck(lambda ts: (ts[0].sum(axis=0) ** 2).sum(), [(3, 4)])

    def test_sum_axis_tuple(self):
        gradcheck(lambda ts: (ts[0].sum(axis=(0, 2)) ** 2).sum(), [(2, 3, 4)])

    def test_sum_keepdims(self):
        out = Tensor(np.ones((2, 3))).sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)

    def test_mean(self):
        gradcheck(lambda ts: ts[0].mean(), [(5,)])

    def test_mean_axis(self):
        gradcheck(lambda ts: (ts[0].mean(axis=1) ** 2).sum(), [(3, 4)])

    def test_var(self):
        gradcheck(lambda ts: ts[0].var(), [(6,)])

    def test_var_matches_numpy(self):
        x = make_rng(0).normal(size=(4, 5))
        np.testing.assert_allclose(Tensor(x).var(axis=0).data,
                                   x.var(axis=0))

    def test_max_all(self):
        # Unique max so the subgradient is well defined.
        x = np.arange(6.0).reshape(2, 3)
        t = Tensor(x, requires_grad=True)
        t.max().backward()
        expected = np.zeros_like(x)
        expected[1, 2] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_max_axis(self):
        x = np.array([[1.0, 5.0], [7.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_array_equal(t.grad, [[0, 1], [1, 0]])

    def test_max_splits_ties(self):
        t = Tensor([2.0, 2.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5])


class TestShapes:
    def test_reshape_grad(self):
        gradcheck(lambda ts: (ts[0].reshape(6) ** 2).sum(), [(2, 3)])

    def test_reshape_minus_one(self):
        assert Tensor(np.zeros((2, 3, 4))).reshape(2, -1).shape == (2, 12)

    def test_transpose_grad(self):
        gradcheck(lambda ts: (ts[0].transpose(1, 0) @ ts[1]).sum(),
                  [(4, 3), (4, 2)])

    def test_transpose_default_reverses(self):
        assert Tensor(np.zeros((2, 3, 4))).T.shape == (4, 3, 2)

    def test_getitem_grad(self):
        t = Tensor(np.arange(6.0), requires_grad=True)
        t[np.array([0, 0, 3])].sum().backward()
        np.testing.assert_array_equal(t.grad, [2, 0, 0, 1, 0, 0])

    def test_getitem_fancy_2d(self):
        t = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        idx = np.array([1, 1, 2])
        t[idx].sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[2] = 1.0
        np.testing.assert_array_equal(t.grad, expected)

    def test_pad2d_roundtrip_grad(self):
        gradcheck(lambda ts: (ts[0].pad2d(1) ** 2).sum(), [(1, 1, 3, 3)])

    def test_pad2d_zero_is_identity(self):
        t = Tensor(np.ones((1, 1, 2, 2)))
        assert t.pad2d(0) is t

    def test_stack_grad(self):
        gradcheck(lambda ts: (stack(ts, axis=0) ** 2).sum(),
                  [(2, 3), (2, 3)])

    def test_concatenate_grad(self):
        gradcheck(lambda ts: (concatenate(ts, axis=1) ** 2).sum(),
                  [(2, 3), (2, 2)])


class TestBackwardMechanics:
    def test_backward_on_non_grad_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_non_scalar_needs_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_explicit_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_array_equal(t.grad, [3.0, 30.0])

    def test_backward_grad_shape_mismatch(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward(np.ones(3))

    def test_grad_accumulates_across_backwards(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_array_equal(t.grad, [4.0])

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 2).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_diamond_graph_counts_both_paths(self):
        # y = x*x + x*x uses x through two paths.
        x = Tensor([3.0], requires_grad=True)
        y = x * x
        (y + y).sum().backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_shared_subexpression(self):
        x = Tensor([2.0], requires_grad=True)
        s = x * 3
        ((s * s)).sum().backward()
        np.testing.assert_allclose(x.grad, [36.0])

    def test_no_grad_tracking_without_requires(self):
        a = Tensor([1.0])
        b = a * 2
        assert b._backward is None and not b.requires_grad

    def test_deep_chain_no_recursion_error(self):
        x = Tensor([1.0], requires_grad=True)
        y = x
        for _ in range(2000):
            y = y + 0.001
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.0])


@settings(max_examples=25, deadline=None)
@given(rows=st.integers(1, 5), cols=st.integers(1, 5))
def test_unbroadcast_property(rows, cols):
    """Broadcast-add gradients always reduce back to operand shapes."""
    a = Tensor(np.ones((rows, cols)), requires_grad=True)
    b = Tensor(np.ones((1, cols)), requires_grad=True)
    (a + b).sum().backward()
    assert a.grad.shape == (rows, cols)
    assert b.grad.shape == (1, cols)
    np.testing.assert_allclose(b.grad, rows * np.ones((1, cols)))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(1, 6))
def test_matmul_identity_property(n):
    """x @ I == x and gradient of sum is all-ones."""
    x = Tensor(make_rng(n).normal(size=(n, n)),
               requires_grad=True)
    out = x @ Tensor(np.eye(n))
    np.testing.assert_allclose(out.data, x.data)
    out.sum().backward()
    np.testing.assert_allclose(x.grad, np.ones((n, n)))
