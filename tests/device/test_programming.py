"""Iterative write-and-verify programming."""

import numpy as np
import pytest

from repro.device.cell import SLC
from repro.device.lut import DeviceModel
from repro.device.programming import write_verify
from repro.device.variation import VariationModel


def make_device(sigma=0.5):
    return DeviceModel(SLC, VariationModel(sigma), n_bits=8)


class TestWriteVerify:
    def test_no_noise_single_pulse(self):
        res = write_verify(make_device(sigma=0.0), np.full(50, 100), rng=0)
        assert res.total_pulses == 50
        assert res.convergence_rate == 1.0

    def test_noise_requires_retries(self):
        res = write_verify(make_device(sigma=0.5), np.full(200, 200),
                           rel_tolerance=0.05, rng=0)
        assert res.pulses.mean() > 1.5

    def test_tighter_tolerance_more_pulses(self):
        loose = write_verify(make_device(), np.full(300, 200),
                             rel_tolerance=0.3, rng=0)
        tight = write_verify(make_device(), np.full(300, 200),
                             rel_tolerance=0.05, rng=0)
        assert tight.total_pulses > loose.total_pulses

    def test_converged_values_within_tolerance(self):
        values = np.full(100, 150)
        res = write_verify(make_device(), values, rel_tolerance=0.1,
                           max_pulses=50, rng=1)
        ok = res.converged
        assert np.all(np.abs(res.crw[ok] - values[ok]) <= 0.1 * values[ok])

    def test_max_pulses_respected(self):
        res = write_verify(make_device(sigma=1.0), np.full(100, 200),
                           rel_tolerance=0.01, max_pulses=5, rng=0)
        assert res.pulses.max() <= 5

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            write_verify(make_device(), np.ones(3), rel_tolerance=0.0)
        with pytest.raises(ValueError):
            write_verify(make_device(), np.ones(3), max_pulses=0)
