"""Device model and E/Var look-up tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.cell import MLC2, SLC, CellType
from repro.device.lut import (DeviceLUT, DeviceModel, build_lut_analytic,
                              build_lut_monte_carlo)
from repro.device.variation import VariationModel


def make_device(sigma=0.5, cell=SLC, n_bits=8):
    return DeviceModel(cell, VariationModel(sigma), n_bits=n_bits)


class TestDeviceModel:
    def test_cells_per_weight(self):
        assert make_device(cell=SLC).cells_per_weight == 8
        assert make_device(cell=MLC2).cells_per_weight == 4

    def test_invalid_bit_widths(self):
        with pytest.raises(ValueError):
            DeviceModel(CellType(bits=4), VariationModel(0.1), n_bits=2)

    def test_program_zero_sigma_reproduces_value_up_to_leak(self):
        dev = make_device(sigma=0.0)
        values = np.arange(256)
        crw = dev.program(values, rng=0)
        # Leak adds at most (C/r) * sum(significances) = 255/200.
        assert np.all(crw >= values)
        assert np.all(crw - values <= 255 / 200 + 1e-9)

    def test_program_is_stochastic(self):
        dev = make_device(sigma=0.5)
        v = np.full(10, 200)
        a = dev.program(v, rng=1)
        b = dev.program(v, rng=2)
        assert not np.array_equal(a, b)

    def test_program_deterministic_given_rng(self):
        dev = make_device()
        v = np.arange(16)
        np.testing.assert_array_equal(dev.program(v, rng=7),
                                      dev.program(v, rng=7))

    def test_program_cells_shape(self):
        dev = make_device(cell=MLC2)
        cells = dev.program_cells(np.zeros((3, 5), dtype=int), rng=0)
        assert cells.shape == (3, 5, 4)

    def test_exact_mean_is_affine_in_value(self):
        """E[R(v)] = mean_factor * ((1 - 1/r) v + leak): affine in v."""
        dev = make_device(sigma=0.5)
        means = dev.exact_mean(np.arange(256))
        diffs = np.diff(means)
        np.testing.assert_allclose(diffs, diffs[0], rtol=1e-9)

    def test_exact_var_depends_on_bit_pattern(self):
        """v=128 (one high cell) is noisier than v=127 (7 low cells)."""
        dev = make_device(sigma=0.5)
        var = dev.exact_var(np.array([127, 128]))
        assert var[1] > var[0]

    def test_mlc_noisier_than_slc_at_same_value(self):
        slc = make_device(cell=SLC)
        mlc = make_device(cell=MLC2)
        v = np.array([200])
        assert mlc.exact_var(v)[0] > slc.exact_var(v)[0]

    def test_empirical_moments_match_exact(self):
        dev = make_device(sigma=0.5)
        v = np.full(100_000, 173)
        crw = dev.program(v, rng=0)
        np.testing.assert_allclose(crw.mean(), dev.exact_mean([173])[0],
                                   rtol=0.01)
        np.testing.assert_allclose(crw.var(), dev.exact_var([173])[0],
                                   rtol=0.05)


class TestDeviceLUT:
    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceLUT(np.ones(4), np.ones(3))
        with pytest.raises(ValueError):
            DeviceLUT(np.ones(4), -np.ones(4))

    def test_invert_exact_hits(self):
        lut = build_lut_analytic(make_device())
        for v in (0, 1, 100, 255):
            assert lut.invert(np.array([lut.mean[v]]))[0] == v

    def test_invert_clips_extremes(self):
        lut = build_lut_analytic(make_device())
        assert lut.invert(np.array([-50.0]))[0] == 0
        assert lut.invert(np.array([1e6]))[0] == 255

    def test_invert_vectorised_shape(self):
        lut = build_lut_analytic(make_device())
        out = lut.invert(np.zeros((3, 4)))
        assert out.shape == (3, 4)

    def test_residual_zero_at_representable_targets(self):
        lut = build_lut_analytic(make_device())
        np.testing.assert_allclose(lut.residual(lut.mean[[5, 50, 200]]),
                                   np.zeros(3), atol=1e-9)

    def test_residual_bounded_by_half_mean_step(self):
        lut = build_lut_analytic(make_device())
        step = np.diff(lut.mean).max()
        targets = np.linspace(lut.mean.min(), lut.mean.max(), 777)
        assert np.abs(lut.residual(targets)).max() <= step / 2 + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(t=st.floats(0, 300))
    def test_invert_is_nearest_property(self, t):
        lut = build_lut_analytic(make_device())
        v = lut.invert(np.array([t]))[0]
        best = np.abs(lut.mean - t).min()
        np.testing.assert_allclose(abs(lut.mean[v] - t), best, atol=1e-9)


class TestLUTBuilders:
    def test_analytic_size(self):
        lut = build_lut_analytic(make_device(n_bits=4))
        assert len(lut) == 16

    def test_monte_carlo_converges_to_analytic(self):
        dev = make_device(sigma=0.5)
        mc = build_lut_monte_carlo(dev, k_sets=64, j_cycles=64, rng=0)
        exact = build_lut_analytic(dev)
        rel_mean = np.abs(mc.mean - exact.mean).max() / exact.mean.max()
        assert rel_mean < 0.03
        # Variance estimates are noisier; compare in aggregate.
        np.testing.assert_allclose(mc.var.mean(), exact.var.mean(), rtol=0.2)

    def test_monte_carlo_deterministic_by_seed(self):
        dev = make_device()
        a = build_lut_monte_carlo(dev, 8, 8, rng=3)
        b = build_lut_monte_carlo(dev, 8, 8, rng=3)
        np.testing.assert_array_equal(a.mean, b.mean)

    def test_more_samples_tighter(self):
        dev = make_device(sigma=0.5)
        exact = build_lut_analytic(dev)
        small = build_lut_monte_carlo(dev, 4, 4, rng=0)
        large = build_lut_monte_carlo(dev, 64, 64, rng=0)
        err_small = np.abs(small.mean - exact.mean).mean()
        err_large = np.abs(large.mean - exact.mean).mean()
        assert err_large < err_small
