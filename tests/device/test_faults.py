"""Stuck-at-fault model."""

import numpy as np
import pytest

from repro.device.cell import MLC2, SLC, CellType
from repro.device.faults import (FaultMap, FaultyDeviceModel,
                                 sample_fault_map)
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.utils.rng import make_rng


class TestFaultMap:
    def test_rates_approximate(self):
        fm = sample_fault_map((200, 200), sa0_rate=0.05, sa1_rate=0.01,
                              rng=0)
        assert abs(fm.stuck_at_0.mean() - 0.05) < 0.01
        assert abs(fm.stuck_at_1.mean() - 0.01) < 0.005
        assert 0.04 < fm.fault_rate < 0.08

    def test_exclusive_masks(self):
        fm = sample_fault_map((100, 100), 0.3, 0.3, rng=1)
        assert not (fm.stuck_at_0 & fm.stuck_at_1).any()

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            sample_fault_map((4,), 0.8, 0.5)
        with pytest.raises(ValueError):
            sample_fault_map((4,), -0.1, 0.0)

    def test_conflicting_masks_rejected(self):
        both = np.ones((2, 2), dtype=bool)
        with pytest.raises(ValueError):
            FaultMap(stuck_at_0=both, stuck_at_1=both)

    def test_apply_pins_levels(self):
        fm = FaultMap(stuck_at_0=np.array([True, False, False]),
                      stuck_at_1=np.array([False, True, False]))
        g = np.array([0.7, 0.2, 0.5])
        out = fm.apply(g, SLC)
        np.testing.assert_allclose(out[0], SLC.conductance(np.zeros(1))[0])
        np.testing.assert_allclose(out[1], 1.0)   # ON conductance for SLC
        assert out[2] == 0.5                       # healthy cell untouched

    def test_apply_shape_check(self):
        fm = sample_fault_map((3, 3), 0.1, 0.1, rng=0)
        with pytest.raises(ValueError):
            fm.apply(np.ones((2, 2)), SLC)

    def test_apply_does_not_mutate_input(self):
        fm = FaultMap(stuck_at_0=np.array([True]),
                      stuck_at_1=np.array([False]))
        g = np.array([0.9])
        fm.apply(g, SLC)
        assert g[0] == 0.9

    @pytest.mark.parametrize("cell", [SLC, MLC2,
                                      CellType(bits=3, on_off_ratio=50.0)],
                             ids=["slc", "mlc2", "mlc3-r50"])
    def test_apply_pins_to_cell_extremes(self, cell):
        """Pinned levels follow each cell technology's own G_off/G_on."""
        fm = FaultMap(stuck_at_0=np.array([[True, False]]),
                      stuck_at_1=np.array([[False, True]]))
        mid = cell.conductance(np.full((1, 2), cell.max_level // 2 + 1))
        out = fm.apply(mid, cell)
        g_off = cell.conductance(np.zeros(1))[0]
        g_on = cell.conductance(np.array([cell.max_level]))[0]
        assert out[0, 0] == g_off
        assert out[0, 1] == g_on == pytest.approx(cell.max_level)
        assert g_off == pytest.approx(cell.max_level / cell.on_off_ratio)

    @pytest.mark.parametrize("cell", [SLC, MLC2], ids=["slc", "mlc2"])
    def test_apply_3d_cell_image(self, cell):
        """Fault maps cover (rows, cols, n_cells) images, any cell type."""
        fm = sample_fault_map((4, 3, 2), 0.3, 0.2, rng=0)
        g = np.full((4, 3, 2), 0.4)
        out = fm.apply(g, cell)
        g_on = cell.conductance(np.array([cell.max_level]))[0]
        np.testing.assert_array_equal(out[fm.stuck_at_1], g_on)
        healthy = ~(fm.stuck_at_0 | fm.stuck_at_1)
        np.testing.assert_array_equal(out[healthy], 0.4)

    def test_empty_map(self):
        fm = FaultMap.empty((3, 4))
        assert fm.shape == (3, 4)
        assert fm.fault_rate == 0.0
        g = make_rng(0).uniform(size=(3, 4))
        np.testing.assert_array_equal(fm.apply(g, SLC), g)


class TestFaultyDeviceModel:
    def make(self, sa0=0.2, sa1=0.05, sigma=0.0):
        device = DeviceModel(MLC2, VariationModel(sigma), n_bits=8)
        return FaultyDeviceModel(device, sa0_rate=sa0, sa1_rate=sa1, rng=0)

    def test_faults_persistent_across_cycles(self):
        faulty = self.make(sigma=0.0)
        v = np.full((16, 16), 128)
        a = faulty.program_cells(v, rng=1)
        b = faulty.program_cells(v, rng=2)
        fm = faulty.fault_map_for(a.shape)
        # Faulty cells read identically every cycle (no noise here).
        np.testing.assert_array_equal(a[fm.stuck_at_0], b[fm.stuck_at_0])

    def test_faulty_cells_ignore_programming(self):
        faulty = self.make(sigma=0.0)
        lo = faulty.program_cells(np.zeros((8, 8), dtype=int), rng=1)
        hi = faulty.program_cells(np.full((8, 8), 255), rng=1)
        fm = faulty.fault_map_for(lo.shape)
        np.testing.assert_array_equal(lo[fm.stuck_at_1], hi[fm.stuck_at_1])

    def test_zero_rates_match_clean_device(self):
        device = DeviceModel(MLC2, VariationModel(0.4), n_bits=8)
        faulty = FaultyDeviceModel(device, sa0_rate=0.0, sa1_rate=0.0, rng=0)
        v = np.arange(64).reshape(8, 8)
        np.testing.assert_array_equal(faulty.program_cells(v, rng=5),
                                      device.program_cells(v, rng=5))

    def test_weight_level_program(self):
        faulty = self.make()
        crw = faulty.program(np.full(100, 200), rng=1)
        assert crw.shape == (100,)

    def test_delegated_properties(self):
        faulty = self.make()
        assert faulty.cells_per_weight == 4
        assert faulty.qmax == 255


class TestDeploymentWithFaults:
    def test_pwt_recovers_saf_damage(self, trained_tiny_mlp, blob_data):
        """Offsets compensate SAFs: the paper's contrast case [13], but
        with group-shared (cheap) compensation."""
        from repro.core import DeployConfig, Deployer, PWTConfig
        from repro.nn.trainer import evaluate_accuracy

        accs = {}
        for method in ("plain", "vawo*+pwt"):
            cfg = DeployConfig.from_method(
                method, sigma=0.8, granularity=8,
                saf_rates=(0.2, 0.08),
                pwt=PWTConfig(epochs=4, lr=0.5))
            deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
            vals = [evaluate_accuracy(deployer.program(rng=t), blob_data)
                    for t in range(3)]
            accs[method] = np.mean(vals)
        assert accs["vawo*+pwt"] > accs["plain"] + 0.1
