"""Lognormal variation model: sampling statistics and moment formulas."""

import numpy as np
import pytest

from repro.device.variation import VariationModel
from repro.utils.rng import make_rng


class TestConstruction:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            VariationModel(-0.1)

    def test_invalid_ddv_fraction(self):
        with pytest.raises(ValueError):
            VariationModel(0.5, ddv_fraction=1.5)

    def test_variance_split(self):
        v = VariationModel(1.0, ddv_fraction=0.36)
        np.testing.assert_allclose(v.sigma_ddv, 0.6)
        np.testing.assert_allclose(v.sigma_ccv, 0.8)
        np.testing.assert_allclose(v.sigma_ddv ** 2 + v.sigma_ccv ** 2, 1.0)


class TestSampling:
    def test_zero_sigma_is_identity(self, rng):
        v = VariationModel(0.0)
        nominal = rng.uniform(1, 2, size=100)
        np.testing.assert_array_equal(v.perturb(nominal, rng), nominal)

    def test_perturbed_values_positive(self, rng):
        v = VariationModel(1.0)
        out = v.perturb(np.full(1000, 2.0), rng)
        assert np.all(out > 0)

    def test_empirical_mean_matches_formula(self):
        v = VariationModel(0.5)
        rng = make_rng(0)
        samples = v.perturb(np.ones(200_000), rng)
        np.testing.assert_allclose(samples.mean(), v.mean_factor(), rtol=0.01)

    def test_empirical_variance_matches_formula(self):
        v = VariationModel(0.5)
        rng = make_rng(1)
        samples = v.perturb(np.ones(400_000), rng)
        np.testing.assert_allclose(samples.var(), v.variance_factor(),
                                   rtol=0.05)

    def test_median_is_nominal(self):
        """exp(theta) has median 1: half the draws land below nominal."""
        v = VariationModel(0.8)
        rng = make_rng(2)
        samples = v.perturb(np.ones(100_000), rng)
        assert abs((samples < 1.0).mean() - 0.5) < 0.01

    def test_ddv_persistent_across_cycles(self, rng):
        v = VariationModel(0.5, ddv_fraction=1.0)   # pure DDV
        ddv = v.sample_ddv((100,), rng)
        a = v.perturb(np.ones(100), rng, ddv_theta=ddv)
        b = v.perturb(np.ones(100), rng, ddv_theta=ddv)
        np.testing.assert_array_equal(a, b)   # no CCV -> identical cycles

    def test_ccv_differs_across_cycles(self, rng):
        v = VariationModel(0.5, ddv_fraction=0.0)   # pure CCV
        a = v.perturb(np.ones(100), rng)
        b = v.perturb(np.ones(100), rng)
        assert not np.array_equal(a, b)

    def test_total_variance_independent_of_split(self):
        """DDV+CCV splits with equal total sigma give equal total spread."""
        rng1 = make_rng(3)
        rng2 = make_rng(3)
        pure_ccv = VariationModel(0.6, 0.0).perturb(np.ones(200_000), rng1)
        half = VariationModel(0.6, 0.5).perturb(np.ones(200_000), rng2)
        np.testing.assert_allclose(np.log(pure_ccv).std(),
                                   np.log(half).std(), rtol=0.02)

    def test_sample_shapes(self, rng):
        v = VariationModel(0.5, 0.5)
        assert v.sample_ddv((3, 4), rng).shape == (3, 4)
        assert v.sample_ccv((5,), rng).shape == (5,)

    def test_mean_factor_values(self):
        np.testing.assert_allclose(VariationModel(0.0).mean_factor(), 1.0)
        np.testing.assert_allclose(VariationModel(0.5).mean_factor(),
                                   np.exp(0.125))
