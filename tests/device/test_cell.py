"""Memristor cell models."""

import numpy as np
import pytest

from repro.device.cell import MLC2, SLC, CellType


class TestCellType:
    def test_slc_levels(self):
        assert SLC.levels == 2 and SLC.max_level == 1

    def test_mlc2_levels(self):
        assert MLC2.levels == 4 and MLC2.max_level == 3

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            CellType(bits=0)

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            CellType(bits=1, on_off_ratio=1.0)

    def test_top_level_conductance_normalised(self):
        np.testing.assert_allclose(SLC.conductance(np.array([1])), [1.0])
        np.testing.assert_allclose(MLC2.conductance(np.array([3])), [3.0])

    def test_off_state_leak(self):
        """Finite ON/OFF ratio: the OFF state leaks C/r, not zero."""
        np.testing.assert_allclose(SLC.conductance(np.array([0])),
                                   [1.0 / 200.0])
        np.testing.assert_allclose(MLC2.conductance(np.array([0])),
                                   [3.0 / 200.0])

    def test_monotone_in_level(self):
        g = MLC2.conductance(np.arange(4))
        assert np.all(np.diff(g) > 0)

    def test_linear_spacing(self):
        g = MLC2.conductance(np.arange(4))
        np.testing.assert_allclose(np.diff(g), np.diff(g)[0])

    def test_level_out_of_range(self):
        with pytest.raises(ValueError):
            SLC.conductance(np.array([2]))
        with pytest.raises(ValueError):
            SLC.conductance(np.array([-1]))

    def test_read_power_proportional_to_conductance(self):
        levels = np.arange(4)
        np.testing.assert_allclose(MLC2.read_power(levels),
                                   MLC2.conductance(levels))

    def test_higher_ratio_less_leak(self):
        loose = CellType(bits=1, on_off_ratio=10)
        tight = CellType(bits=1, on_off_ratio=1000)
        assert tight.conductance(np.array([0]))[0] < \
            loose.conductance(np.array([0]))[0]

    def test_frozen(self):
        with pytest.raises(Exception):
            SLC.bits = 3
