"""PM unary-coding baseline."""

import numpy as np
import pytest

from repro.baselines.pm import (PM_DEVICES_PER_WEIGHT, PMConfig, UnaryCoder,
                                _order_cells_by_reliability, deploy_pm)
from repro.nn.trainer import evaluate_accuracy
from tests.conftest import make_blob_dataset


class TestUnaryCoder:
    def test_levels_per_polarity(self):
        assert PMConfig().levels_per_polarity == 15   # 5 cells x level 3

    def test_devices_per_weight(self):
        assert PM_DEVICES_PER_WEIGHT == 10

    def test_encode_spreads_greedily(self):
        coder = UnaryCoder(PMConfig())
        mag = np.array([7 * coder.scale])
        cells = coder.encode_magnitude(mag)
        np.testing.assert_array_equal(cells[0], [3, 3, 1, 0, 0])

    def test_encode_zero(self):
        coder = UnaryCoder(PMConfig())
        np.testing.assert_array_equal(
            coder.encode_magnitude(np.array([0.0]))[0], np.zeros(5))

    def test_encode_saturates_at_max(self):
        coder = UnaryCoder(PMConfig())
        cells = coder.encode_magnitude(np.array([1e9]))
        np.testing.assert_array_equal(cells[0], [3, 3, 3, 3, 3])

    def test_roundtrip_quantization_error(self, rng):
        coder = UnaryCoder(PMConfig())
        mags = rng.uniform(0, 127, size=200)
        decoded = coder.decode(coder.encode_magnitude(mags).astype(float))
        assert np.abs(decoded - mags).max() <= coder.scale / 2 + 1e-9

    def test_levels_within_cell_range(self, rng):
        coder = UnaryCoder(PMConfig())
        cells = coder.encode_magnitude(rng.uniform(0, 127, size=100))
        assert cells.min() >= 0 and cells.max() <= 3


class TestPriorityMapping:
    def test_charge_lands_on_reliable_devices(self):
        cells = np.array([[3, 2, 0, 0, 0]])
        ddv = np.array([[0.9, 0.1, 0.5, 0.05, 0.7]])
        mapped = _order_cells_by_reliability(cells, ddv)
        # Best devices (|theta| 0.05 then 0.1) get the largest levels.
        np.testing.assert_array_equal(mapped[0], [0, 2, 0, 3, 0])

    def test_total_charge_preserved(self, rng):
        cells = rng.integers(0, 4, size=(20, 5))
        ddv = rng.normal(size=(20, 5))
        mapped = _order_cells_by_reliability(cells, ddv)
        np.testing.assert_array_equal(mapped.sum(axis=1), cells.sum(axis=1))


class TestDeployPM:
    def test_structure_replaced(self, trained_tiny_mlp):
        from repro.baselines.pm import PMLinear
        deployed = deploy_pm(trained_tiny_mlp, PMConfig(sigma=0.3), rng=0)
        linears = [m for _, m in deployed.named_modules()
                   if isinstance(m, PMLinear)]
        assert len(linears) == 2

    def test_zero_sigma_near_exact(self, trained_tiny_mlp, blob_data):
        cfg = PMConfig(sigma=0.0)
        deployed = deploy_pm(trained_tiny_mlp, cfg, rng=0)
        ref = evaluate_accuracy(trained_tiny_mlp, blob_data)
        acc = evaluate_accuracy(deployed, blob_data)
        assert acc >= ref - 0.05

    def test_original_untouched(self, trained_tiny_mlp):
        before = {n: p.data.copy()
                  for n, p in trained_tiny_mlp.named_parameters()}
        deploy_pm(trained_tiny_mlp, PMConfig(sigma=0.8), rng=0)
        for n, p in trained_tiny_mlp.named_parameters():
            np.testing.assert_array_equal(p.data, before[n])

    def test_priority_mapping_helps_with_ddv(self, trained_tiny_mlp,
                                             blob_data):
        """With a strong persistent-DDV share, priority mapping should
        not hurt — and usually helps (it can see the DDV)."""
        accs = {}
        for pm_on in (False, True):
            cfg = PMConfig(sigma=0.8, ddv_fraction=0.9, priority_mapping=pm_on)
            vals = [evaluate_accuracy(
                deploy_pm(trained_tiny_mlp, cfg, rng=s), blob_data)
                for s in range(4)]
            accs[pm_on] = np.mean(vals)
        assert accs[True] >= accs[False] - 0.03

    def test_unary_more_robust_than_binary_slicing(self, rng):
        """Unary coding's variance averaging: reconstructed weight error
        is smaller than binary bit slicing at equal sigma."""
        from repro.device.cell import MLC2
        from repro.device.lut import DeviceModel
        from repro.device.variation import VariationModel

        sigma = 0.8
        values = rng.integers(0, 128, size=2000)
        # Binary: 4 MLC cells, positional significance.
        dev = DeviceModel(MLC2, VariationModel(sigma), n_bits=8)
        crw = dev.program(values, rng=1)
        binary_err = np.abs(crw - values)
        # Unary: 5 equal cells.
        cfg = PMConfig(sigma=sigma, ddv_fraction=0.0)
        coder = UnaryCoder(cfg)
        cells = coder.encode_magnitude(values.astype(float))
        nominal = cfg.cell.conductance(cells)
        noisy = VariationModel(sigma).perturb(nominal, rng=2)
        leak = cfg.cell.conductance(np.zeros_like(cells))
        unary = coder.decode(noisy - leak)
        unary_err = np.abs(unary - values)
        assert unary_err.mean() < binary_err.mean()
