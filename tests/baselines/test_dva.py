"""DVA variation-aware training baseline."""

import numpy as np
import pytest

from repro.baselines.dva import (DVA_DEVICES_PER_WEIGHT, DVAConfig,
                                 _WeightPerturber, train_dva)
from repro.nn.trainer import evaluate_accuracy
from tests.conftest import TinyMLP, make_blob_dataset
from repro.utils.rng import make_rng


class TestConfig:
    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            DVAConfig(sigma=-0.1)

    def test_devices_per_weight(self):
        assert DVA_DEVICES_PER_WEIGHT == 8


class TestPerturber:
    def test_apply_restore_roundtrip(self, tiny_mlp, rng):
        p = _WeightPerturber(tiny_mlp, perturb_biases=False)
        before = {n: q.data.copy() for n, q in tiny_mlp.named_parameters()}
        p.apply(0.5, rng)
        changed = any(
            not np.array_equal(q.data, before[n])
            for n, q in tiny_mlp.named_parameters() if n.endswith("weight"))
        assert changed
        p.restore()
        for n, q in tiny_mlp.named_parameters():
            np.testing.assert_array_equal(q.data, before[n])

    def test_biases_untouched_by_default(self, tiny_mlp, rng):
        p = _WeightPerturber(tiny_mlp, perturb_biases=False)
        biases = {n: q.data.copy() for n, q in tiny_mlp.named_parameters()
                  if n.endswith("bias")}
        p.apply(0.5, rng)
        for n, q in tiny_mlp.named_parameters():
            if n.endswith("bias"):
                np.testing.assert_array_equal(q.data, biases[n])
        p.restore()

    def test_double_apply_rejected(self, tiny_mlp, rng):
        p = _WeightPerturber(tiny_mlp, perturb_biases=False)
        p.apply(0.1, rng)
        with pytest.raises(RuntimeError):
            p.apply(0.1, rng)

    def test_restore_without_apply_rejected(self, tiny_mlp):
        with pytest.raises(RuntimeError):
            _WeightPerturber(tiny_mlp, False).restore()


class TestTraining:
    def test_loss_decreases(self, blob_data):
        model = TinyMLP(rng=make_rng(0))
        losses = train_dva(model, blob_data,
                           DVAConfig(sigma=0.3, epochs=4, lr=5e-3), rng=1)
        assert losses[-1] < losses[0]

    def test_dva_model_more_robust_than_plain(self):
        """The defining property: under weight noise, the DVA-trained
        model degrades less than an identically-trained clean model."""
        from repro.nn.optim import Adam
        from repro.nn.trainer import train_classifier

        data = make_blob_dataset(n=300, seed=3)
        clean = TinyMLP(rng=make_rng(0))
        opt = Adam(clean.parameters(), lr=5e-3)
        train_classifier(clean, data, epochs=6, batch_size=32,
                         optimizer=opt, rng=4)
        dva = TinyMLP(rng=make_rng(0))
        train_dva(dva, data, DVAConfig(sigma=0.6, epochs=6, lr=5e-3), rng=4)

        def noisy_acc(model, seed):
            rng = make_rng(seed)
            p = _WeightPerturber(model, perturb_biases=False)
            p.apply(1.2, rng)   # heavy noise so the clean model degrades
            try:
                return evaluate_accuracy(model, data)
            finally:
                p.restore()

        clean_noisy = np.mean([noisy_acc(clean, s) for s in range(6)])
        dva_noisy = np.mean([noisy_acc(dva, s) for s in range(6)])
        assert dva_noisy >= clean_noisy - 0.02
