"""Shared test utilities: numerical gradient checking."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


def numeric_grad(f: Callable[[], float], x: np.ndarray,
                 eps: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. array ``x``.

    ``f`` must read ``x`` by reference (the array is perturbed in place).
    """
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def gradcheck(build: Callable[[Sequence[Tensor]], Tensor],
              shapes: Sequence[tuple], seed: int = 0,
              atol: float = 1e-4, rtol: float = 1e-3,
              positive: bool = False) -> None:
    """Assert autograd gradients match finite differences.

    ``build(tensors)`` returns a scalar Tensor; ``shapes`` gives the
    input shapes. ``positive`` draws strictly positive inputs (for log /
    sqrt / division).
    """
    rng = make_rng(seed)
    tensors = []
    for shape in shapes:
        data = rng.normal(0.0, 1.0, size=shape)
        if positive:
            data = np.abs(data) + 0.5
        tensors.append(Tensor(data, requires_grad=True))

    out = build(tensors)
    assert out.size == 1, "gradcheck requires a scalar output"
    out.backward()

    for t in tensors:
        def f(tt=t):
            return float(build(tensors).data)
        expected = numeric_grad(f, t.data)
        actual = t.grad
        assert actual is not None, "missing gradient"
        np.testing.assert_allclose(actual, expected, atol=atol, rtol=rtol)
