"""Grid-scoped broadcast: one pickle per worker, shared-memory arrays.

Covers the encode/install round-trip, the ``MIN_SHM_BYTES`` diversion
threshold, the ``REPRO_SHM=0`` kill switch, the plain-pickle fallback
when shared memory is unavailable, parent-side segment release, and the
end-to-end contract: a process grid whose callable closes over a
multi-megabyte array still matches the serial run bit-for-bit.
"""

import functools
import os
import pickle

import numpy as np
import pytest

from repro.obs import metrics as obs_metrics
from repro.parallel import broadcast
from repro.parallel.broadcast import (MIN_SHM_BYTES, broadcast_fn,
                                      encode_broadcast, install_broadcast,
                                      release_segments, shm_enabled)
from repro.parallel.executor import run_trials
from repro.parallel.worker import TrialTask, run_trial_task
from repro.utils.rng import make_rng

#: Big enough to cross the shared-memory diversion threshold.
BIG = np.arange(MIN_SHM_BYTES // 8 + 16, dtype=np.float64)


def lookup_trial(payload, trial, rng):
    """Module-level (picklable) trial fn closing over a large array."""
    return float(payload[trial % payload.size]) + float(rng.normal())


@pytest.fixture
def clean_slot():
    """Reset the worker-side broadcast slot and segments around a test."""
    yield
    broadcast._BROADCAST_FN = None
    for shm in broadcast._WORKER_SEGMENTS:
        try:
            shm.close()
        except Exception:  # noqa: BLE001 — already released
            pass
    broadcast._WORKER_SEGMENTS.clear()


class TestEncodeInstall:
    def test_roundtrip_with_shared_memory(self, clean_slot):
        if not shm_enabled():
            pytest.skip("shared memory unavailable on this platform")
        fn = functools.partial(lookup_trial, BIG)
        blob, segments = encode_broadcast(fn)
        try:
            assert len(segments) == 1             # BIG was diverted
            assert len(blob) < BIG.nbytes // 100  # blob carries no bytes
            install_broadcast(blob)
            installed = broadcast_fn()
            assert installed is not None
            assert installed(3, make_rng(0)) == fn(3, make_rng(0))
            # The installed partial's array is the shm segment, not a copy.
            assert np.array_equal(installed.args[0], BIG)
        finally:
            release_segments(segments)

    def test_small_payloads_skip_shared_memory(self, clean_slot):
        fn = functools.partial(lookup_trial, np.arange(8.0))
        blob, segments = encode_broadcast(fn)
        assert segments == []
        install_broadcast(blob)
        assert broadcast_fn() is not None

    def test_release_is_idempotent(self):
        if not shm_enabled():
            pytest.skip("shared memory unavailable on this platform")
        _, segments = encode_broadcast(functools.partial(lookup_trial, BIG))
        release_segments(segments)
        release_segments(segments)                # second call: no-op
        assert segments == []


class TestKillSwitchAndFallback:
    def test_repro_shm_0_disables(self, monkeypatch, clean_slot):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert not shm_enabled()
        blob, segments = encode_broadcast(functools.partial(lookup_trial,
                                                            BIG))
        assert segments == []
        assert len(blob) > BIG.nbytes             # arrays ride the blob
        assert pickle.loads(blob)(0, make_rng(0)) is not None

    def test_shm_failure_falls_back_to_plain_pickle(self, monkeypatch,
                                                    clean_slot):
        from multiprocessing import shared_memory

        def boom(*args, **kwargs):
            raise OSError("no shm for you")

        monkeypatch.setattr(shared_memory, "SharedMemory", boom)
        blob, segments = encode_broadcast(functools.partial(lookup_trial,
                                                            BIG))
        assert segments == []
        install_broadcast(blob)
        assert broadcast_fn()(1, make_rng(1)) is not None


class TestWorkerContract:
    def test_stripped_task_without_broadcast_faults(self, clean_slot):
        broadcast._BROADCAST_FN = None
        payload = run_trial_task(TrialTask(index=0, seed=0, fn=None))
        assert not payload.ok
        assert "no grid broadcast" in payload.error

    def test_stripped_task_uses_installed_fn(self, clean_slot):
        blob, _ = encode_broadcast(functools.partial(lookup_trial,
                                                     np.arange(32.0)))
        install_broadcast(blob)
        payload = run_trial_task(TrialTask(index=5, seed=0, fn=None))
        assert payload.ok and isinstance(payload.result, float)


class TestEndToEnd:
    def grid(self, jobs):
        fn = functools.partial(lookup_trial, BIG)
        return run_trials(fn, n_trials=4, seed=123, jobs=jobs).results()

    def test_process_grid_matches_serial(self, obs_on):
        serial = self.grid(jobs=1)
        par = self.grid(jobs=2)
        assert par == serial
        assert obs_metrics.REGISTRY.counter_value("parallel.broadcasts") >= 1
        payload = obs_metrics.REGISTRY.counter_value(
            "parallel.broadcast_payload_bytes")
        assert 0 < payload < BIG.nbytes           # arrays were diverted
        if shm_enabled():
            assert obs_metrics.REGISTRY.counter_value(
                "parallel.broadcast_shm_bytes") >= BIG.nbytes

    def test_process_grid_matches_serial_without_shm(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        assert self.grid(jobs=2) == self.grid(jobs=1)

    def test_no_leaked_segments(self):
        if not shm_enabled():
            pytest.skip("shared memory unavailable on this platform")
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") \
            else None
        self.grid(jobs=2)
        if before is not None:
            leaked = {n for n in set(os.listdir("/dev/shm")) - before
                      if n.startswith("psm_")}
            assert leaked == set()
