"""Tests for the parallel trial executor (``repro.parallel``)."""
