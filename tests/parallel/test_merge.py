"""Child→parent observability merging: metrics math and span adoption."""

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import Tracer, span
from repro.parallel import TrialPayload, merge_trial_payload, run_trials


def _snapshot(build):
    reg = MetricsRegistry()
    build(reg)
    return reg.snapshot()


class TestHistogramMerge:
    def test_exact_aggregate_merge(self):
        child = Histogram()
        for v in (5.0, 1.0):
            child.observe(v)
        parent = Histogram()
        parent.observe(3.0)
        parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert snap["count"] == 3
        assert snap["total"] == 9.0
        assert snap["min"] == 1.0 and snap["max"] == 5.0
        assert snap["last"] == 1.0              # child's last write wins
        assert snap["series"] == [3.0, 5.0, 1.0]

    def test_series_cap_respected(self, monkeypatch):
        monkeypatch.setattr(obs_metrics, "SERIES_CAP", 3)
        child = Histogram()
        for v in (1.0, 2.0, 3.0):
            child.observe(v)
        parent = Histogram()
        parent.observe(0.0)
        parent.merge(child.snapshot())
        snap = parent.snapshot()
        assert snap["count"] == 4               # aggregates stay exact
        assert len(snap["series"]) == 3 and snap["truncated"]


class TestRegistryMerge:
    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.inc("a", 2)
        parent.merge(_snapshot(lambda r: (r.inc("a", 3), r.inc("b"))))
        assert parent.counter_value("a") == 5
        assert parent.counter_value("b") == 1

    def test_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.gauge("g", 1.0)
        parent.merge(_snapshot(lambda r: r.gauge("g", 9.0)))
        assert parent.snapshot()["gauges"]["g"] == 9.0

    def test_histograms_merge_per_name(self):
        parent = MetricsRegistry()
        parent.observe("h", 1.0)
        parent.merge(_snapshot(lambda r: r.observe("h", 3.0)))
        hist = parent.snapshot()["histograms"]["h"]
        assert hist["count"] == 2 and hist["total"] == 4.0


class TestSpanAdoption:
    def _child_records(self):
        """Two nested spans as a child tracer would record them."""
        child = Tracer()
        token_outer = child.push("trial.work", {})
        token_inner = child.push("trial.inner", {})
        child.pop(token_inner)
        child.pop(token_outer)
        return child.records()

    def test_ids_reissued_and_links_remapped(self):
        parent = Tracer()
        anchor = parent.push("parallel.trials", {})
        parent.pop(anchor)
        anchor_id = parent.records()[0]["id"]
        parent.adopt(self._child_records(), parent_id=anchor_id)
        outer, inner = [r for r in parent.records()
                        if r["name"].startswith("trial.")]
        assert outer["parent_id"] == anchor_id
        assert inner["parent_id"] == outer["id"]
        assert outer["depth"] == 1 and inner["depth"] == 2
        ids = [r["id"] for r in parent.records()]
        assert len(set(ids)) == len(ids)

    def test_unknown_parent_id_detaches(self):
        parent = Tracer()
        parent.adopt(self._child_records(), parent_id=12345)
        outer = parent.records()[0]
        assert outer["parent_id"] is None and outer["depth"] == 0

    def test_offset_and_extra_attrs(self):
        parent = Tracer()
        records = self._child_records()
        base = records[0]["start_s"]
        parent.adopt(records, start_offset_s=10.0,
                     extra_attrs={"trial": 3, "subprocess": True})
        adopted = parent.records()[0]
        assert adopted["start_s"] >= base + 10.0
        assert adopted["attrs"]["trial"] == 3
        assert adopted["attrs"]["subprocess"] is True


class TestMergeTrialPayload:
    def test_merges_into_global_registries(self, obs_on):
        child_reg = MetricsRegistry()
        child_reg.inc("trial.count")
        child_tracer = Tracer()
        child_tracer.pop(child_tracer.push("trial.work", {}))
        payload = TrialPayload(index=2, ok=True, result=1.0,
                               metrics=child_reg.snapshot(),
                               spans=child_tracer.records())
        with span("parallel.trials"):
            parent_id = obs_trace.TRACER.current_span_id()
            adopted = merge_trial_payload(payload, parent_span_id=parent_id)
        assert adopted == 1
        assert obs_metrics.REGISTRY.counter_value("trial.count") == 1
        assert obs_metrics.REGISTRY.counter_value(
            "parallel.payloads_merged") == 1
        work = [r for r in obs_trace.TRACER.records()
                if r["name"] == "trial.work"]
        assert len(work) == 1
        assert work[0]["attrs"] == {"trial": 2, "subprocess": True}
        assert work[0]["parent_id"] == parent_id

    def test_empty_payload_is_harmless(self, obs_on):
        merge_trial_payload(TrialPayload(index=0, ok=True))
        assert obs_metrics.REGISTRY.counter_value(
            "parallel.payloads_merged") == 1


def _instrumented(trial, rng):
    """Module-level so it ships to worker processes."""
    from repro.obs import metrics
    from repro.obs.trace import span as obs_span

    metrics.inc("trial.count")
    with obs_span("trial.work", trial=trial):
        return float(rng.normal())


def _boom_on_1(trial, rng):
    if trial == 1:
        raise ValueError("bad trial")
    return trial


class TestTrialTelemetry:
    """Per-trial wall time + retry/fault observations (histograms)."""

    def test_wall_time_percentiles_parallel(self, obs_on):
        run_trials(_instrumented, 3, seed=0, jobs=2)
        hist = obs_metrics.REGISTRY.snapshot()["histograms"]["trial.wall_s"]
        assert hist["count"] == 3
        assert hist["min"] >= 0.0
        for key in ("p50", "p95", "p99"):
            assert hist[key] is not None

    def test_wall_time_recorded_serially_too(self, obs_on):
        run_trials(_instrumented, 2, seed=0, jobs=1)
        hist = obs_metrics.REGISTRY.snapshot()["histograms"]["trial.wall_s"]
        assert hist["count"] == 2

    def test_retry_and_fault_keyed_by_trial_index(self, obs_on):
        run = run_trials(_boom_on_1, 3, seed=0, jobs=1)
        assert [f.index for f in run.faults] == [1]
        hists = obs_metrics.REGISTRY.snapshot()["histograms"]
        # One retry and one fault, both recording the failing index —
        # what `repro obs diff` localizes degrading trials with.
        assert hists["parallel.retry"]["series"] == [1.0]
        assert hists["parallel.fault"]["series"] == [1.0]
        assert "parallel.timeout" not in hists

    def test_single_rooted_tree_under_parallel_run(self, obs_on):
        import os

        with span("run.test"):
            run = run_trials(_instrumented, 3, seed=0, jobs=2)
        assert run.backend == "process"
        records = obs_trace.TRACER.records()
        ids = {r["id"] for r in records}
        roots = [r for r in records if r["parent_id"] not in ids]
        assert len(roots) == 1 and roots[0]["name"] == "run.test"
        work = [r for r in records if r["name"] == "trial.work"]
        assert len(work) == 3
        assert all(r["trace_id"] == obs_trace.TRACER.trace_id
                   for r in work)
        assert all(r["pid"] != os.getpid() for r in work)


class TestEndToEndProcessMerge:
    def test_profiled_parallel_grid_reports_all_trials(self, obs_on):
        run = run_trials(_instrumented, 3, seed=0, jobs=2)
        assert run.backend == "process"
        assert obs_metrics.REGISTRY.counter_value("trial.count") == 3
        assert obs_metrics.REGISTRY.counter_value(
            "parallel.payloads_merged") == 3
        work = [r for r in obs_trace.TRACER.records()
                if r["name"] == "trial.work"]
        assert sorted(r["attrs"]["trial"] for r in work) == [0, 1, 2]
        grid = [r for r in obs_trace.TRACER.records()
                if r["name"] == "parallel.trials"]
        assert len(grid) == 1
        assert all(r["parent_id"] == grid[0]["id"] for r in work)

    def test_serial_grid_records_directly(self, obs_on):
        run_trials(_instrumented, 2, seed=0, jobs=1)
        assert obs_metrics.REGISTRY.counter_value("trial.count") == 2
        # No payload round-trip on the serial backend.
        assert obs_metrics.REGISTRY.counter_value(
            "parallel.payloads_merged") == 0
