"""Trial executor: backends, fallbacks, retries, timeouts, faults."""

import os
import time

import pytest

from repro.parallel import (TrialExecutor, TrialFaultError, TrialRun,
                            resolve_jobs, run_trials, trial_seeds)
from repro.utils.rng import spawn_rngs, spawn_seeds

# ----------------------------------------------------------------------
# module-level trial callables (they must pickle into worker processes)
# ----------------------------------------------------------------------


def draw(trial, rng):
    """The canonical trial: a value depending only on (seed, index)."""
    return float(rng.normal()) + trial * 100.0


def always_raise(trial, rng):
    raise RuntimeError(f"trial {trial} boom")


def raise_on_index_1(trial, rng):
    if trial == 1:
        raise ValueError("bad trial")
    return trial


_FLAKY_CALLS = {"n": 0}


def flaky_once(trial, rng):
    """Fails its first invocation, succeeds on retry (serial-only)."""
    _FLAKY_CALLS["n"] += 1
    if _FLAKY_CALLS["n"] == 1:
        raise RuntimeError("transient")
    return trial


def sleepy(trial, rng):
    time.sleep(1.5)
    return trial


def unpicklable_result(trial, rng):
    return lambda: trial  # a closure cannot pickle back to the parent


# ----------------------------------------------------------------------
class TestResolveJobs:
    def test_auto_is_cpu_count_capped_by_trials(self):
        assert resolve_jobs(None, 1) == 1
        assert resolve_jobs(0, 1) == 1
        assert resolve_jobs(None, 10**6) == (os.cpu_count() or 1)

    def test_explicit_capped_by_trials(self):
        assert resolve_jobs(8, 2) == 2
        assert resolve_jobs(2, 8) == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs(-1, 4)

    def test_zero_trials(self):
        assert resolve_jobs(4, 0) == 1


class TestConstructorValidation:
    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            TrialExecutor(backend="gpu")

    def test_negative_retries(self):
        with pytest.raises(ValueError):
            TrialExecutor(retries=-1)

    def test_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            TrialExecutor(timeout_s=0)

    def test_negative_trials(self):
        with pytest.raises(ValueError):
            TrialExecutor().run(draw, -1)

    def test_seed_count_mismatch(self):
        with pytest.raises(ValueError):
            run_trials(draw, 3, seeds=spawn_seeds(0, 2))


class TestBackendEquivalence:
    """jobs=N must be bit-identical to jobs=1 at the same seed."""

    def test_process_matches_serial(self):
        serial = run_trials(draw, 3, seed=42, jobs=1)
        par = run_trials(draw, 3, seed=42, jobs=2)
        assert serial.backend == "serial" and par.backend == "process"
        assert par.results() == serial.results()

    def test_thread_matches_serial(self):
        serial = run_trials(draw, 3, seed=42, jobs=1)
        threaded = run_trials(draw, 3, seed=42, jobs=2, backend="thread")
        assert threaded.backend == "thread"
        assert threaded.results() == serial.results()

    def test_matches_spawn_rngs_reference(self):
        """The executor draws from the exact streams spawn_rngs yields."""
        expected = [float(r.normal()) + i * 100.0
                    for i, r in enumerate(spawn_rngs(7, 4))]
        assert run_trials(draw, 4, seed=7, jobs=1).results() == expected

    def test_explicit_seeds_shard_a_larger_grid(self):
        """A slice of pre-spawned streams reproduces the full grid's."""
        full = run_trials(draw, 4, seed=3, jobs=1).results()
        seeds = trial_seeds(3, 4)
        half = run_trials(draw, 2, seeds=seeds[:2], jobs=1).results()
        assert half == full[:2]


class TestPickleFallback:
    def test_lambda_demotes_to_thread(self):
        run = run_trials(lambda t, rng: float(rng.normal()), 2, seed=0,
                         jobs=2)
        assert run.backend == "thread"
        serial = run_trials(lambda t, rng: float(rng.normal()), 2, seed=0,
                            jobs=1)
        assert run.results() == serial.results()


class TestFaults:
    def test_retry_then_fault(self):
        run = run_trials(always_raise, 2, seed=0, jobs=1)
        assert len(run.faults) == 2
        for outcome in run.outcomes:
            assert outcome.attempts == 2        # original + one retry
            assert "boom" in outcome.error
        with pytest.raises(TrialFaultError) as err:
            run.results()
        assert len(err.value.faults) == 2
        assert run.results(strict=False) == []

    def test_partial_fault_keeps_good_trials(self):
        run = run_trials(raise_on_index_1, 3, seed=0, jobs=1)
        assert [f.index for f in run.faults] == [1]
        assert run.results(strict=False) == [0, 2]

    def test_process_backend_faults_dont_poison_pool(self):
        run = run_trials(raise_on_index_1, 3, seed=0, jobs=2)
        assert run.backend == "process"
        assert [f.index for f in run.faults] == [1]
        assert run.results(strict=False) == [0, 2]

    def test_transient_failure_recovers_on_retry(self):
        _FLAKY_CALLS["n"] = 0
        run = run_trials(flaky_once, 1, seed=0, jobs=1)
        assert run.results() == [0]
        assert run.outcomes[0].attempts == 2

    def test_zero_retries_faults_immediately(self):
        _FLAKY_CALLS["n"] = 0
        run = run_trials(flaky_once, 1, seed=0, jobs=1, retries=0)
        assert run.outcomes[0].attempts == 1
        assert not run.outcomes[0].ok

    def test_unpicklable_result_is_a_fault_not_a_crash(self):
        # backend forced: one trial would otherwise resolve to serial,
        # where an in-process result needs no pickle round-trip.
        run = run_trials(unpicklable_result, 1, seed=0, jobs=2,
                         retries=0, backend="process")
        assert run.results(strict=False) == []
        assert len(run.faults) == 1


class TestTimeout:
    def test_overdue_trial_times_out_and_faults(self):
        t0 = time.perf_counter()
        run = run_trials(sleepy, 1, seed=0, jobs=2, timeout_s=0.25,
                         backend="process")
        elapsed = time.perf_counter() - t0
        outcome = run.outcomes[0]
        assert outcome.timed_out and not outcome.ok
        assert outcome.attempts == 2            # retried once, then fault
        assert elapsed < 1.5                    # did not wait for the sleep

    def test_timeout_not_enforced_on_thread_backend(self):
        run = run_trials(sleepy, 1, seed=0, jobs=2, backend="thread",
                         timeout_s=0.25)
        assert run.results() == [0]             # ran to completion


class TestMisc:
    def test_zero_trials(self):
        run = run_trials(draw, 0, seed=0, jobs=2)
        assert isinstance(run, TrialRun)
        assert run.outcomes == [] and run.results() == []

    def test_map_is_strict_results(self):
        ex = TrialExecutor(jobs=1)
        assert ex.map(draw, 2, seed=5) == run_trials(draw, 2, seed=5).results()

    def test_outcomes_in_trial_order(self):
        run = run_trials(draw, 4, seed=9, jobs=2)
        assert [o.index for o in run.outcomes] == [0, 1, 2, 3]
