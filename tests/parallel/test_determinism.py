"""Serial/parallel bit-identity through the real deployment pipeline.

The contract under test is the tentpole guarantee of
:mod:`repro.parallel`: at the same seed, a trial grid run with
``jobs=N`` returns exactly the accuracies the serial loop returns —
through ``evaluate_deployment``, ``Deployer.evaluate`` and the
Table III PM trial helper. A full ``run_table3`` cross-check (trains
VGG-16 twice) is gated behind ``REPRO_SLOW_TESTS=1``.
"""

import os

import pytest

from repro.core import DeployConfig, Deployer
from repro.eval.accuracy import evaluate_deployment
from repro.eval.experiments import run_pm_trials
from repro.utils.rng import spawn_seeds


@pytest.fixture
def deployer(trained_tiny_mlp, blob_data):
    # sigma high enough that trials genuinely differ — identical
    # accuracies must come from identical streams, not saturation.
    cfg = DeployConfig.from_method("plain", sigma=0.5, granularity=8)
    return Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)


class TestEvaluateDeployment:
    def test_parallel_matches_serial_bitwise(self, deployer, blob_data):
        serial = evaluate_deployment(deployer, blob_data, n_trials=3,
                                     rng=0, jobs=1)
        par = evaluate_deployment(deployer, blob_data, n_trials=3,
                                  rng=0, jobs=2)
        assert len(set(serial.accuracies)) > 1       # trials do vary
        assert par.accuracies == serial.accuracies

    def test_auto_jobs_matches_serial(self, deployer, blob_data):
        serial = evaluate_deployment(deployer, blob_data, n_trials=2,
                                     rng=7, jobs=1)
        auto = evaluate_deployment(deployer, blob_data, n_trials=2,
                                   rng=7, jobs=0)
        assert auto.accuracies == serial.accuracies


class TestDeployerEvaluate:
    def test_facade_matches_function(self, deployer, blob_data):
        via_method = deployer.evaluate(blob_data, n_trials=2, rng=3, jobs=2)
        via_fn = evaluate_deployment(deployer, blob_data, n_trials=2,
                                     rng=3, jobs=1)
        assert via_method.accuracies == via_fn.accuracies


class TestPMTrials:
    def test_parallel_matches_serial(self, trained_tiny_mlp, blob_data):
        root = spawn_seeds(123, 1)[0]
        serial = run_pm_trials(trained_tiny_mlp, blob_data, 0.8, 3,
                               seeds=spawn_seeds(root, 3), jobs=1)
        par = run_pm_trials(trained_tiny_mlp, blob_data, 0.8, 3,
                            seeds=spawn_seeds(root, 3), jobs=2)
        assert par == serial

    def test_streams_independent_of_sweep_order(self, trained_tiny_mlp,
                                                blob_data):
        """Consuming another method's root must not shift this one's."""
        root_a, root_b = spawn_seeds(99, 2)
        direct = run_pm_trials(trained_tiny_mlp, blob_data, 0.8, 2,
                               seeds=spawn_seeds(root_b, 2), jobs=1)
        run_pm_trials(trained_tiny_mlp, blob_data, 0.8, 2,
                      seeds=spawn_seeds(root_a, 2), jobs=1)
        after_a = run_pm_trials(trained_tiny_mlp, blob_data, 0.8, 2,
                                seeds=spawn_seeds(root_b, 2), jobs=1)
        assert after_a == direct


@pytest.mark.skipif(os.environ.get("REPRO_SLOW_TESTS") != "1",
                    reason="trains VGG-16 twice; set REPRO_SLOW_TESTS=1")
class TestTable3Full:
    def test_table3_parallel_matches_serial(self, tmp_path, monkeypatch):
        from repro.eval.experiments import run_table3

        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "cache"))
        serial = run_table3(preset="quick", n_trials=2, seed=0, jobs=1)
        par = run_table3(preset="quick", n_trials=2, seed=0, jobs=2)
        assert [(r.method, r.accuracy_loss) for r in serial] == \
               [(r.method, r.accuracy_loss) for r in par]
