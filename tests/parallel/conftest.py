"""Fixtures for the parallel-executor tests.

Mirrors ``tests/obs/conftest.py``: tests that exercise the obs-merge
path run against clean process-wide tracer/registry state and restore
the dynamic switch on exit.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import runtime


@pytest.fixture
def obs_on():
    """Enable collection with empty state; restore on exit."""
    was_active = runtime.enabled()
    obs.reset()
    runtime.enable()
    yield obs
    runtime._STATE.active = was_active
    obs.reset()
