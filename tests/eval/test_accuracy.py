"""Trial-averaged evaluation."""

import numpy as np
import pytest

from repro.core import DeployConfig, Deployer
from repro.eval.accuracy import TrialResult, evaluate_deployment, ideal_accuracy


class TestTrialResult:
    def test_stats(self):
        r = TrialResult([0.5, 0.7])
        assert r.mean == pytest.approx(0.6)
        assert r.std == pytest.approx(0.1)
        assert r.n_trials == 2

    def test_str(self):
        assert "2 trials" in str(TrialResult([0.1, 0.2]))


class TestEvaluateDeployment:
    @pytest.fixture
    def deployer(self, trained_tiny_mlp, blob_data):
        cfg = DeployConfig.from_method("plain", sigma=0.4, granularity=8)
        return Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)

    def test_runs_requested_trials(self, deployer, blob_data):
        r = evaluate_deployment(deployer, blob_data, n_trials=3, rng=0)
        assert r.n_trials == 3

    def test_reproducible_by_seed(self, deployer, blob_data):
        a = evaluate_deployment(deployer, blob_data, n_trials=2, rng=5)
        b = evaluate_deployment(deployer, blob_data, n_trials=2, rng=5)
        assert a.accuracies == b.accuracies

    def test_trials_vary(self, deployer, blob_data):
        r = evaluate_deployment(deployer, blob_data, n_trials=4, rng=1)
        assert len(set(r.accuracies)) > 1

    def test_invalid_trials(self, deployer, blob_data):
        with pytest.raises(ValueError):
            evaluate_deployment(deployer, blob_data, n_trials=0)

    def test_ideal_accuracy_high(self, deployer, blob_data):
        assert ideal_accuracy(deployer, blob_data) > 0.9
