"""Experiment-runner plumbing, with the expensive parts stubbed out.

These verify grid construction, row labelling and config wiring of the
Fig. 5 runners without paying for real deployments (the real runs live
in benchmarks/).
"""

import numpy as np
import pytest

import repro.eval.experiments as ex
from repro.eval.accuracy import TrialResult


@pytest.fixture
def stubbed(monkeypatch, trained_tiny_mlp, blob_data):
    """Stub workload building and deployment scoring."""

    def fake_build(name, preset="quick", seed=0, **kwargs):
        return ex.Workload(name=name, model=trained_tiny_mlp,
                           train=blob_data, test=blob_data,
                           float_accuracy=0.99)

    captured = []

    class FakeDeployer:
        def __init__(self, model, train, config, rng=None):
            captured.append(config)

    def fake_eval(deployer, test, n_trials=2, rng=None, batch_size=256,
                  jobs=1, trial_timeout=None):
        return TrialResult(accuracies=[0.5] * n_trials)

    def fake_ideal(deployer, test, batch_size=256):
        return 0.95

    monkeypatch.setattr(ex, "build_workload", fake_build)
    monkeypatch.setattr(ex, "Deployer", FakeDeployer)
    monkeypatch.setattr(ex, "evaluate_deployment", fake_eval)
    monkeypatch.setattr(ex, "ideal_accuracy", fake_ideal)
    return captured


class TestFig5Runner:
    def test_grid_dimensions(self, stubbed):
        rows = ex.run_fig5_accuracy("lenet", methods=("plain", "vawo*"),
                                    granularities=(16, 128), n_trials=3)
        assert len(rows) == 4
        assert {r.method for r in rows} == {"plain", "vawo*"}
        assert {r.granularity for r in rows} == {16, 128}
        assert all(r.ideal_accuracy == 0.95 for r in rows)
        assert all(r.mean_accuracy == 0.5 for r in rows)

    def test_configs_match_methods(self, stubbed):
        ex.run_fig5_accuracy("lenet", methods=("plain", "vawo*+pwt"),
                             granularities=(16,), sigma=0.7)
        assert len(stubbed) == 2
        assert stubbed[0].method_name == "plain"
        assert stubbed[1].method_name == "vawo*+pwt"
        assert all(c.sigma == 0.7 for c in stubbed)
        assert all(c.bn_recalibrate for c in stubbed)

    def test_accuracy_drop_property(self, stubbed):
        rows = ex.run_fig5_accuracy("lenet", methods=("plain",),
                                    granularities=(16,))
        assert rows[0].accuracy_drop == pytest.approx(0.45)


class TestFig5cRunner:
    def test_sigma_sweep_rows(self, stubbed):
        rows = ex.run_fig5c(sigmas=(0.2, 0.8), granularities=(16, 64),
                            n_trials=1)
        assert len(rows) == 4
        assert {r.sigma for r in rows} == {0.2, 0.8}
        assert all(r.method == "vawo*+pwt" for r in rows)
        assert all(r.cell_bits == 2 for r in rows)
