"""Deployment error analysis."""

import numpy as np
import pytest

from repro.core import DeployConfig, Deployer
from repro.eval.analysis import (analyze_deployment, layer_error_stats,
                                 render_markdown)


@pytest.fixture
def deployed_pair(trained_tiny_mlp, blob_data):
    out = {}
    for method in ("plain", "vawo*"):
        cfg = DeployConfig.from_method(method, sigma=0.5, granularity=8)
        deployer = Deployer(trained_tiny_mlp, blob_data, cfg, rng=0)
        out[method] = deployer.program(rng=1)
    return out


class TestLayerStats:
    def test_fields_populated(self, deployed_pair):
        stats = analyze_deployment(deployed_pair["plain"])
        assert len(stats) == 2
        s = stats[0]
        assert s.rows == 64 and s.cols == 24
        assert s.rms_error > 0
        assert s.max_abs_error >= s.rms_error

    def test_error_decomposition_is_pythagorean(self, deployed_pair):
        """group_bias^2 + within_group^2 == total rms^2 (orthogonal split)."""
        for s in analyze_deployment(deployed_pair["plain"]):
            np.testing.assert_allclose(
                s.group_bias_rms ** 2 + s.within_group_rms ** 2,
                s.rms_error ** 2, rtol=1e-6)

    def test_bias_share_in_unit_interval(self, deployed_pair):
        for s in analyze_deployment(deployed_pair["vawo*"]):
            assert 0.0 <= s.bias_share <= 1.0

    def test_vawo_reduces_error_vs_plain(self, deployed_pair):
        plain = analyze_deployment(deployed_pair["plain"])
        vawo = analyze_deployment(deployed_pair["vawo*"])
        assert sum(s.rms_error for s in vawo) < \
            sum(s.rms_error for s in plain)

    def test_requires_metadata(self, deployed_pair):
        from repro.core.pwt import crossbar_modules
        mod = crossbar_modules(deployed_pair["plain"])[0]
        mod.ntw = None
        with pytest.raises(ValueError):
            layer_error_stats(mod)

    def test_non_crossbar_model_rejected(self, trained_tiny_mlp):
        with pytest.raises(ValueError):
            analyze_deployment(trained_tiny_mlp)


class TestMarkdown:
    def test_renders_table(self, deployed_pair):
        stats = analyze_deployment(deployed_pair["vawo*"])
        md = render_markdown(stats, title="test deployment")
        assert md.startswith("### test deployment")
        assert md.count("|") >= 8 * (len(stats) + 2)
        assert "64x24" in md

    def test_no_title(self, deployed_pair):
        md = render_markdown(analyze_deployment(deployed_pair["plain"]))
        assert not md.startswith("###")
