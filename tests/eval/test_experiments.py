"""Experiment harness: workload construction and runner plumbing.

These tests keep workloads tiny (they synthesise data and train for a
few steps); the real paper-scale runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.eval.experiments import (_augmented, build_workload, run_table2,
                                    workload_names)
from repro.utils.rng import make_rng


class TestWorkloadRegistry:
    def test_names(self):
        assert set(workload_names()) == {"lenet", "resnet18", "vgg16"}

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_workload("alexnet")

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            build_workload("lenet", preset="huge")


class TestAugmentation:
    def test_doubles_dataset(self, blob_data):
        aug = _augmented(blob_data, 0.1, make_rng(0))
        assert len(aug) == 2 * len(blob_data)

    def test_zero_level_identity(self, blob_data):
        assert _augmented(blob_data, 0.0, make_rng(0)) \
            is blob_data

    def test_values_stay_in_range(self, blob_data):
        aug = _augmented(blob_data, 0.5, make_rng(0))
        assert aug.images.min() >= 0 and aug.images.max() <= 1


class TestWorkloadCaching:
    def test_cache_roundtrip(self, tmp_path):
        wl1 = build_workload("lenet", "quick", seed=123, cache_dir=tmp_path)
        wl2 = build_workload("lenet", "quick", seed=123, cache_dir=tmp_path)
        np.testing.assert_allclose(wl1.float_accuracy, wl2.float_accuracy)
        state1 = wl1.model.state_dict()
        state2 = wl2.model.state_dict()
        for k in state1:
            np.testing.assert_array_equal(state1[k], state2[k])

    def test_cache_file_created(self, tmp_path):
        build_workload("lenet", "quick", seed=124, cache_dir=tmp_path)
        assert list(tmp_path.glob("objects/*/*.npz"))


class TestTable2Runner:
    def test_rows(self):
        rows = run_table2((16, 128))
        assert [r["granularity"] for r in rows] == [16, 128]
        assert rows[1]["total_area_mm2"] > rows[0]["total_area_mm2"]
