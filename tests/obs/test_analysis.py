"""The offline trace-analysis toolkit (``repro obs ...``).

All tree/attribution math is validated against one hand-written golden
trace whose self-times and critical path are known exactly.
"""

import json
import os

import pytest

from repro.obs import analysis
from repro.obs.manifest import build_manifest
from repro.obs.summary import render_summary, summarize_path
from repro.utils.serialization import SerializationError, save_json


def _span(id, parent, name, start, dur, pid=100, status="ok"):
    return {"id": id, "parent_id": parent, "name": name, "depth": 0,
            "start_s": start, "duration_s": dur, "attrs": {},
            "status": status, "error": None, "trace_id": "cafe0123cafe0123",
            "pid": pid}


#: Golden trace: a profiled --jobs 2 deploy in miniature. Two worker
#: trial subtrees (pids 111/222) overlap in wall time under
#: parallel.trials, so its self-time clamps to zero.
GOLDEN = [
    _span(0, None, "run.deploy", 0.0, 10.0),
    _span(1, 0, "deploy.eval", 0.5, 8.0),
    _span(2, 1, "parallel.trials", 1.0, 7.0),
    _span(3, 2, "trial.work", 1.0, 4.0, pid=111),
    _span(4, 3, "trial.inner", 1.5, 3.0, pid=111),
    _span(5, 2, "trial.work", 1.0, 5.0, pid=222),
    _span(6, 5, "trial.inner", 1.5, 2.5, pid=222),
    _span(7, 0, "deploy.program", 8.6, 1.5),
]


def write_golden(path):
    with open(path, "w") as fh:
        for record in GOLDEN:
            fh.write(json.dumps(record) + "\n")
    return path


class TestBuildTree:
    def test_links_children_and_orders_roots_heaviest_first(self):
        tree = analysis.build_tree(GOLDEN + [_span(99, None, "stray",
                                                   0.0, 0.2)])
        assert [r.name for r in tree.roots] == ["run.deploy", "stray"]
        assert tree.n_spans == 9 and tree.n_open == 0
        assert not tree.is_single_rooted()
        root = tree.roots[0]
        assert [c.name for c in root.children] == ["deploy.eval",
                                                   "deploy.program"]

    def test_missing_parent_becomes_root(self):
        tree = analysis.build_tree([_span(5, 12345, "orphan", 0.0, 1.0)])
        assert len(tree.roots) == 1 and tree.roots[0].name == "orphan"

    def test_self_time_clamps_on_overlapping_children(self):
        tree = analysis.build_tree(GOLDEN)
        nodes = {}

        def collect(node):
            nodes[node.span_id] = node
            for child in node.children:
                collect(child)

        collect(tree.roots[0])
        assert nodes[0].self_s == pytest.approx(0.5)     # 10 - 8 - 1.5
        assert nodes[1].self_s == pytest.approx(1.0)     # 8 - 7
        assert nodes[2].self_s == 0.0                    # 7 - 9, clamped
        assert nodes[5].self_s == pytest.approx(2.5)     # 5 - 2.5


class TestCriticalPath:
    def test_golden_chain_and_self_times(self):
        chains = analysis.critical_path(GOLDEN)
        assert len(chains) == 1
        names = [step.name for step in chains[0]]
        # Heaviest child at every hop: the 5.0 s worker, not the 4.0 s.
        assert names == ["run.deploy", "deploy.eval", "parallel.trials",
                         "trial.work", "trial.inner"]
        self_times = [step.self_s for step in chains[0]]
        assert self_times == pytest.approx([0.5, 1.0, 0.0, 2.5, 2.5])
        assert [step.depth for step in chains[0]] == [0, 1, 2, 3, 4]

    def test_render_mentions_every_hop(self):
        text = analysis.render_critical_path(
            analysis.critical_path(GOLDEN))
        assert "critical path — run.deploy" in text
        for name in ("deploy.eval", "parallel.trials", "trial.inner"):
            assert name in text

    def test_open_span_flagged(self):
        spans = [_span(0, None, "crashed.run", 0.0, None, status="open")]
        text = analysis.render_critical_path(analysis.critical_path(spans))
        assert "[open]" in text

    def test_empty_trace(self):
        assert analysis.critical_path([]) == []
        assert "(no spans)" in analysis.render_critical_path([])


class TestFoldStacks:
    def test_golden_self_time_attribution_in_micros(self):
        folded = analysis.fold_stacks(GOLDEN)
        assert folded == {
            "run.deploy": 500_000,
            "run.deploy;deploy.eval": 1_000_000,
            # Both workers' trial.work/inner share one stack; their
            # self-times sum: (4-3)+(5-2.5) and 3+2.5 seconds.
            "run.deploy;deploy.eval;parallel.trials;trial.work": 3_500_000,
            "run.deploy;deploy.eval;parallel.trials;trial.work;trial.inner":
                5_500_000,
            "run.deploy;deploy.program": 1_500_000,
        }

    def test_zero_self_time_internal_frames_omitted(self):
        folded = analysis.fold_stacks(GOLDEN)
        assert "run.deploy;deploy.eval;parallel.trials" not in folded

    def test_leaves_kept_even_at_zero(self):
        folded = analysis.fold_stacks([_span(0, None, "instant", 0.0, 0.0)])
        assert folded == {"instant": 0}

    def test_render_is_sorted_flamegraph_format(self):
        lines = analysis.render_folded(
            analysis.fold_stacks(GOLDEN)).splitlines()
        assert lines == sorted(lines)
        stack, value = lines[0].rsplit(" ", 1)
        assert ";" not in value and int(value) >= 0


class TestDiff:
    def _manifest(self, scale):
        spans = [dict(s) for s in GOLDEN]
        for s in spans:
            s["duration_s"] *= scale
        metrics = {"counters": {}, "gauges": {}, "histograms": {
            "trial.wall_s": {"count": 2, "p50": 4.5 * scale,
                             "p95": 4.95 * scale, "p99": 4.99 * scale},
            ("only.a" if scale == 1.0 else "only.b"): {"count": 1,
                                                       "p50": 1.0},
        }}
        return build_manifest(command="deploy", spans=spans,
                              metrics_snapshot=metrics)

    def test_stage_and_percentile_rows(self):
        stage_rows, hist_rows = analysis.diff_manifests(
            self._manifest(1.0), self._manifest(2.0))
        by_name = {r.name: r for r in stage_rows}
        trials = by_name["parallel.trials"]
        assert trials.total_a_s == pytest.approx(7.0)
        assert trials.total_b_s == pytest.approx(14.0)
        assert trials.ratio == pytest.approx(2.0)
        # Rows come worst-absolute-delta first.
        deltas = [abs(r.delta_s) for r in stage_rows]
        assert deltas == sorted(deltas, reverse=True)
        # Only shared histograms diff; the percentile shift is exact.
        assert [r.name for r in hist_rows] == ["trial.wall_s"]
        assert hist_rows[0].shift("p99") == pytest.approx(4.99)

    def test_render_contains_tables(self):
        text = analysis.render_diff(*analysis.diff_manifests(
            self._manifest(1.0), self._manifest(2.0)),
            label_a="base", label_b="cand")
        assert "a: base" in text and "b: cand" in text
        assert "parallel.trials" in text
        assert "trial.wall_s" in text and "p99" in text

    def test_empty_diff(self):
        text = analysis.render_diff([], [])
        assert "(nothing to compare)" in text


class TestLoadTrace:
    def test_torn_final_line_dropped(self, tmp_path):
        path = write_golden(tmp_path / "spans.jsonl")
        with open(path, "a") as fh:
            fh.write('{"id": 99, "name": "torn')     # killed mid-write
        records = analysis.load_trace(path)
        assert len(records) == len(GOLDEN)

    def test_torn_middle_line_is_an_error(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"id": 0, "name": "a"}\n{broken\n'
                        '{"id": 1, "name": "b"}\n')
        with pytest.raises(SerializationError):
            analysis.load_trace(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        path.write_text('{"id": 0, "name": "a"}\n\n')
        assert len(analysis.load_trace(path)) == 1


class TestPathResolution:
    def _obs_dir(self, tmp_path, with_manifest=True):
        spans = write_golden(tmp_path / "deploy-spans.jsonl")
        if with_manifest:
            manifest = build_manifest(command="deploy", spans=GOLDEN,
                                      spans_file=spans.name)
            save_json(tmp_path / "deploy-manifest.json", manifest)
        return tmp_path

    def test_directory_prefers_manifest(self, tmp_path):
        d = self._obs_dir(tmp_path)
        assert analysis.resolve_spans_path(d).name == "deploy-spans.jsonl"
        assert analysis.resolve_manifest_path(d).name == \
            "deploy-manifest.json"

    def test_directory_falls_back_to_span_stream(self, tmp_path):
        d = self._obs_dir(tmp_path, with_manifest=False)
        assert analysis.resolve_spans_path(d).name == "deploy-spans.jsonl"

    def test_manifest_file_follows_spans_file(self, tmp_path):
        d = self._obs_dir(tmp_path)
        resolved = analysis.resolve_spans_path(d / "deploy-manifest.json")
        assert resolved == d / "deploy-spans.jsonl"

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            analysis.resolve_spans_path(tmp_path)


class TestMixedDirResolution:
    """A default ``obs/`` dir accumulates one artifact set per command
    (deploy + serve, say); resolution picks the newest run rather than
    erroring, so ``repro obs summarize obs/`` works out of the box."""

    def _mixed_dir(self, tmp_path):
        deploy_spans = write_golden(tmp_path / "deploy-spans.jsonl")
        save_json(tmp_path / "deploy-manifest.json",
                  build_manifest(command="deploy", spans=GOLDEN,
                                 spans_file=deploy_spans.name))
        serve_golden = [dict(s, name=s["name"].replace("deploy", "serve"))
                        for s in GOLDEN]
        serve_spans = tmp_path / "serve-spans.jsonl"
        with open(serve_spans, "w") as fh:
            for record in serve_golden:
                fh.write(json.dumps(record) + "\n")
        save_json(tmp_path / "serve-manifest.json",
                  build_manifest(command="serve", spans=serve_golden,
                                 spans_file=serve_spans.name))
        # Deterministic mtimes: the serve run happened after the deploy.
        for i, name in enumerate(["deploy-spans.jsonl",
                                  "deploy-manifest.json",
                                  "serve-spans.jsonl",
                                  "serve-manifest.json"]):
            os.utime(tmp_path / name, (1_000_000 + i, 1_000_000 + i))
        return tmp_path

    def test_newest_manifest_wins(self, tmp_path):
        d = self._mixed_dir(tmp_path)
        assert analysis.resolve_manifest_path(d).name == \
            "serve-manifest.json"
        assert analysis.resolve_spans_path(d).name == "serve-spans.jsonl"

    def test_older_run_stays_reachable_by_path(self, tmp_path):
        d = self._mixed_dir(tmp_path)
        resolved = analysis.resolve_spans_path(d / "deploy-manifest.json")
        assert resolved == d / "deploy-spans.jsonl"

    def test_summarize_mixed_dir_picks_newest(self, tmp_path):
        d = self._mixed_dir(tmp_path)
        assert "run manifest — serve" in summarize_path(d)

    def test_spans_only_mixed_dir_picks_newest_stream(self, tmp_path):
        d = self._mixed_dir(tmp_path)
        (d / "deploy-manifest.json").unlink()
        (d / "serve-manifest.json").unlink()
        assert analysis.resolve_spans_path(d).name == "serve-spans.jsonl"
        assert "run.serve" in summarize_path(d)


class TestSummarizeStreamedDir:
    """Satellite: summarize reads a streamed-sink dir (crashed run, no
    manifest) identically to a post-hoc export."""

    def test_spans_only_dir_matches_manifest_tables(self, tmp_path):
        crash_dir = tmp_path / "crash"
        crash_dir.mkdir()
        write_golden(crash_dir / "deploy-spans.jsonl")
        # The crash case: the stream ends in a torn line.
        with open(crash_dir / "deploy-spans.jsonl", "a") as fh:
            fh.write('{"id": 99, "na')
        streamed = summarize_path(crash_dir)
        exported = render_summary(build_manifest(command="deploy",
                                                 spans=GOLDEN))

        def stage_lines(text):
            return [line for line in text.splitlines()
                    if line.startswith(("run.deploy", "deploy.",
                                        "parallel.", "trial."))]

        assert stage_lines(streamed) == stage_lines(exported)
        assert stage_lines(streamed)          # non-empty comparison

    def test_open_spans_counted_without_time(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        records = GOLDEN[:2] + [_span(9, 0, "deploy.program", 9.0, None,
                                      status="open")]
        with open(path, "w") as fh:
            for r in records:
                fh.write(json.dumps(r) + "\n")
        text = summarize_path(path)
        assert "deploy.program" in text

    def test_manifest_dir_unchanged_behaviour(self, tmp_path):
        write_golden(tmp_path / "deploy-spans.jsonl")
        save_json(tmp_path / "deploy-manifest.json",
                  build_manifest(command="deploy", spans=GOLDEN,
                                 spans_file="deploy-spans.jsonl"))
        text = summarize_path(tmp_path)
        assert "run manifest — deploy" in text
