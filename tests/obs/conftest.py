"""Fixtures for the observability tests.

Every test runs against clean process-wide tracer/registry state and
leaves the dynamic switch the way it found it.
"""

from __future__ import annotations

import pytest

import repro.obs as obs
from repro.obs import runtime


@pytest.fixture
def obs_on():
    """Enable collection with empty state; restore on exit."""
    was_active = runtime.enabled()
    obs.reset()
    runtime.enable()
    yield obs
    runtime._STATE.active = was_active
    obs.reset()


@pytest.fixture
def obs_off():
    """Force collection off with empty state; restore on exit."""
    was_active = runtime.enabled()
    obs.reset()
    runtime.disable()
    yield obs
    runtime._STATE.active = was_active
    obs.reset()
