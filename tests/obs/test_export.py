"""Manifest assembly, JSONL/JSON round trips, and summary rendering."""

from repro.obs import metrics, trace
from repro.obs.exporters import export_run, write_spans_jsonl
from repro.obs.manifest import (SCHEMA, build_manifest, span_tree_lines,
                                stage_totals)
from repro.obs.summary import render_summary, summarize_file
from repro.obs.trace import span
from repro.utils.serialization import load_json, read_jsonl


def _record_run():
    with span("deploy.vawo", layers=2):
        with span("vawo.search"):
            pass
    with span("deploy.eval"):
        pass
    metrics.inc("vawo.calls", 2)
    metrics.observe("pwt.epoch_loss", 0.25)


class TestStageTotals:
    def test_aggregates_by_name(self, obs_on):
        _record_run()
        totals = stage_totals(trace.TRACER.records())
        assert totals["deploy.vawo"]["count"] == 1
        assert totals["vawo.search"]["total_s"] > 0
        assert totals["deploy.eval"]["max_s"] >= 0

    def test_open_spans_count_but_add_no_time(self):
        totals = stage_totals([{"name": "x", "duration_s": None}])
        assert totals["x"] == {"count": 1, "total_s": 0.0, "max_s": 0.0}


class TestBuildManifest:
    def test_schema_and_wall_time(self, obs_on):
        _record_run()
        doc = build_manifest("deploy", argv=["deploy", "--profile"],
                             preset="quick", seed=0,
                             spans=trace.TRACER.records(),
                             metrics_snapshot=metrics.REGISTRY.snapshot(),
                             extra={"workload": "lenet"})
        assert doc["schema"] == SCHEMA
        assert doc["preset"] == "quick" and doc["seed"] == 0
        # Wall time sums only the two top-level spans.
        top = [s for s in trace.TRACER.records()
               if s["parent_id"] is None]
        assert abs(doc["wall_time_s"] -
                   sum(s["duration_s"] for s in top)) < 1e-9
        assert doc["metrics"]["counters"]["vawo.calls"] == 2
        assert doc["extra"] == {"workload": "lenet"}
        assert doc["environment"]["python"]

    def test_span_tree_lines_truncates(self):
        spans = [{"name": f"s{i}", "depth": 0, "duration_s": 0.001}
                 for i in range(5)]
        lines = span_tree_lines(spans, max_lines=3)
        assert len(lines) == 4 and "2 more" in lines[-1]


class TestExportRun:
    def test_round_trip_through_serialization(self, obs_on, tmp_path):
        _record_run()
        paths = export_run(tmp_path, "deploy", argv=["deploy"],
                           preset="quick", seed=7, reset=True)
        assert paths["manifest"].name == "deploy-manifest.json"
        assert paths["spans"].name == "deploy-spans.jsonl"
        manifest = load_json(paths["manifest"])
        spans = read_jsonl(paths["spans"])
        assert manifest["schema"] == SCHEMA
        assert manifest["n_spans"] == len(spans) == 3
        assert manifest["spans_file"] == paths["spans"].name
        assert {s["name"] for s in spans} == \
            {"deploy.vawo", "vawo.search", "deploy.eval"}
        # reset=True cleared the process-wide state.
        assert trace.TRACER.records() == []
        assert metrics.REGISTRY.snapshot()["counters"] == {}

    def test_stem_sanitises_command(self, obs_on, tmp_path):
        paths = export_run(tmp_path, "experiment fig5a")
        assert paths["manifest"].name == "experiment-fig5a-manifest.json"

    def test_write_spans_jsonl_empty(self, tmp_path):
        path = write_spans_jsonl(tmp_path / "empty.jsonl", [])
        assert read_jsonl(path) == []


class TestSummary:
    def test_render_contains_stage_table(self, obs_on, tmp_path):
        _record_run()
        paths = export_run(tmp_path, "deploy", preset="quick", seed=1,
                           reset=True)
        text = summarize_file(paths["manifest"])
        assert "run manifest — deploy" in text
        assert "deploy.vawo" in text and "vawo.search" in text
        assert "vawo.calls" in text
        assert "pwt.epoch_loss (hist)" in text

    def test_render_without_spans(self):
        text = render_summary({"command": "train", "stages": {},
                               "metrics": {}})
        assert "no spans recorded" in text
