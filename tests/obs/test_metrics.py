"""Metrics registry: counters, gauges, histograms, and the off switch."""

import math
import threading

import pytest

from repro.obs import metrics
from repro.obs.metrics import (RESERVOIR_CAP, Histogram, MetricsRegistry,
                               percentile_of)
from repro.obs.runtime import env_enabled


class TestEnvSwitch:
    def test_truthy_values(self):
        for value in ("1", "true", "YES", " on "):
            assert env_enabled(value)

    def test_falsy_values(self):
        for value in ("", "0", "false", "off", "nope"):
            assert not env_enabled(value)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 2.5)
        assert reg.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert hist["last"] == 2.0
        assert hist["mean"] == 2.0
        assert hist["series"] == [1.0, 3.0, 2.0]

    def test_histogram_series_cap(self, monkeypatch):
        monkeypatch.setattr(metrics, "SERIES_CAP", 2)
        hist = Histogram()
        for v in (1, 2, 3):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3 and snap["total"] == 6.0
        assert len(snap["series"]) == 2 and snap["truncated"]

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("n") == 4000


class TestPercentiles:
    def test_percentile_of_edges(self):
        assert percentile_of([], 50) is None
        assert percentile_of([7.0], 99) == 7.0
        assert percentile_of([1.0, 3.0], 50) == 2.0

    def test_empty_histogram_reports_none(self):
        hist = Histogram()
        assert hist.percentile(50) is None
        assert hist.percentiles() == {"p50": None, "p95": None, "p99": None}

    def test_exact_under_cap(self):
        hist = Histogram()
        for v in range(1, 101):
            hist.observe(float(v))
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)
        assert hist.percentile(99) == pytest.approx(99.01)

    def test_snapshot_carries_percentiles_and_reservoir(self):
        hist = Histogram()
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["p50"] == 2.0
        assert snap["reservoir"] == [1.0, 2.0, 3.0]

    def test_reservoir_capped_and_deterministic(self):
        def build():
            hist = Histogram()
            for v in range(2000):
                hist.observe(float(v))
            return hist

        a, b = build(), build()
        assert len(a.reservoir) == RESERVOIR_CAP
        # Fixed-seed index stream: byte-identical run to run.
        assert a.reservoir == b.reservoir
        # And still a faithful sample of the distribution.
        assert a.percentile(50) == pytest.approx(999.5, rel=0.10)
        assert a.percentile(99) == pytest.approx(1979.0, rel=0.05)


class TestShardMergePercentiles:
    """The acceptance criterion: merged p99 from 2/4/8 shards is
    deterministic and matches the serial run."""

    @staticmethod
    def _values(n):
        return [10.0 + 5.0 * math.sin(0.7 * i) + 0.01 * i
                for i in range(n)]

    @classmethod
    def _merged(cls, values, n_shards):
        shards = [Histogram() for _ in range(n_shards)]
        for i, v in enumerate(values):          # round-robin, trial order
            shards[i % n_shards].observe(v)
        parent = Histogram()
        for shard in shards:
            parent.merge(shard.snapshot())
        return parent

    def test_merged_equals_serial_under_cap(self):
        values = self._values(400)              # union fits RESERVOIR_CAP
        serial = Histogram()
        for v in values:
            serial.observe(v)
        for n_shards in (2, 4, 8):
            merged = self._merged(values, n_shards)
            assert sorted(merged.reservoir) == sorted(serial.reservoir)
            for q in (50.0, 95.0, 99.0):
                assert merged.percentile(q) == serial.percentile(q)

    def test_merged_deterministic_and_close_beyond_cap(self):
        values = self._values(3000)
        serial = Histogram()
        for v in values:
            serial.observe(v)
        for n_shards in (2, 4, 8):
            once = self._merged(values, n_shards)
            again = self._merged(values, n_shards)
            assert once.reservoir == again.reservoir
            assert len(once.reservoir) <= RESERVOIR_CAP
            assert once.count == serial.count == 3000
            for q in (50.0, 95.0, 99.0):
                assert once.percentile(q) == pytest.approx(
                    serial.percentile(q), rel=0.10)

    def test_merge_accepts_pre_reservoir_snapshots(self):
        # Snapshots written before the reservoir existed fall back to
        # their raw series.
        child = Histogram()
        for v in (1.0, 2.0, 3.0):
            child.observe(v)
        legacy = {k: v for k, v in child.snapshot().items()
                  if k != "reservoir"}
        parent = Histogram()
        parent.merge(legacy)
        assert parent.reservoir == [1.0, 2.0, 3.0]
        assert parent.percentile(50) == 2.0


class TestModuleHelpers:
    def test_noop_when_disabled(self, obs_off):
        metrics.inc("c")
        metrics.gauge("g", 1)
        metrics.observe("h", 1)
        snap = metrics.REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_record_when_enabled(self, obs_on):
        metrics.inc("c", 2)
        metrics.gauge("g", 7)
        metrics.observe("h", 0.5)
        snap = metrics.REGISTRY.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1
