"""Metrics registry: counters, gauges, histograms, and the off switch."""

import threading

from repro.obs import metrics
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.runtime import env_enabled


class TestEnvSwitch:
    def test_truthy_values(self):
        for value in ("1", "true", "YES", " on "):
            assert env_enabled(value)

    def test_falsy_values(self):
        for value in ("", "0", "false", "off", "nope"):
            assert not env_enabled(value)


class TestRegistry:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter_value("a") == 5
        assert reg.counter_value("missing") == 0

    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("g", 1.0)
        reg.gauge("g", 2.5)
        assert reg.snapshot()["gauges"]["g"] == 2.5

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        for v in (1.0, 3.0, 2.0):
            reg.observe("h", v)
        hist = reg.snapshot()["histograms"]["h"]
        assert hist["count"] == 3
        assert hist["min"] == 1.0 and hist["max"] == 3.0
        assert hist["last"] == 2.0
        assert hist["mean"] == 2.0
        assert hist["series"] == [1.0, 3.0, 2.0]

    def test_histogram_series_cap(self, monkeypatch):
        monkeypatch.setattr(metrics, "SERIES_CAP", 2)
        hist = Histogram()
        for v in (1, 2, 3):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3 and snap["total"] == 6.0
        assert len(snap["series"]) == 2 and snap["truncated"]

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.gauge("g", 1)
        reg.observe("h", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_thread_safety_of_counters(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("n") == 4000


class TestModuleHelpers:
    def test_noop_when_disabled(self, obs_off):
        metrics.inc("c")
        metrics.gauge("g", 1)
        metrics.observe("h", 1)
        snap = metrics.REGISTRY.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_record_when_enabled(self, obs_on):
        metrics.inc("c", 2)
        metrics.gauge("g", 7)
        metrics.observe("h", 0.5)
        snap = metrics.REGISTRY.snapshot()
        assert snap["counters"]["c"] == 2
        assert snap["gauges"]["g"] == 7
        assert snap["histograms"]["h"]["count"] == 1
