"""Span tracer: nesting, exception safety, and the zero-cost contract."""

import pytest

from repro.obs import trace
from repro.obs.trace import TRACER, current_depth, span


class TestContextManager:
    def test_nesting_records_parent_and_depth(self, obs_on):
        with span("outer", tiles=3):
            with span("inner"):
                assert current_depth() == 2
        records = TRACER.records()
        outer = next(r for r in records if r["name"] == "outer")
        inner = next(r for r in records if r["name"] == "inner")
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert inner["parent_id"] == outer["id"] and inner["depth"] == 1
        assert outer["attrs"] == {"tiles": 3}
        assert outer["status"] == inner["status"] == "ok"
        assert outer["duration_s"] >= inner["duration_s"] >= 0

    def test_exception_marks_span_and_unwinds(self, obs_on):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        record = TRACER.records()[0]
        assert record["status"] == "error"
        assert record["error"] == "ValueError"
        assert record["duration_s"] is not None
        assert current_depth() == 0

    def test_sibling_spans_share_parent(self, obs_on):
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        records = {r["name"]: r for r in TRACER.records()}
        assert records["a"]["parent_id"] == records["parent"]["id"]
        assert records["b"]["parent_id"] == records["parent"]["id"]

    def test_reentrant_span_object(self, obs_on):
        s = span("repeat")
        with s:
            with s:
                pass
        records = TRACER.records()
        assert [r["name"] for r in records] == ["repeat", "repeat"]
        assert records[1]["parent_id"] == records[0]["id"]

    def test_disabled_is_noop(self, obs_off):
        with span("ghost"):
            assert current_depth() == 0
        assert TRACER.records() == []

    def test_reset_restarts_clock_and_ids(self, obs_on):
        with span("before"):
            pass
        TRACER.reset()
        with span("after"):
            pass
        records = TRACER.records()
        assert [r["name"] for r in records] == ["after"]
        assert records[0]["id"] == 0


class TestDecorator:
    def test_identity_when_env_off(self, obs_off, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)

        def f(x):
            return x + 1

        assert span("f")(f) is f

    def test_wraps_and_records_when_env_on(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")

        @span("g.call", kind="test")
        def g(x):
            return x * 2

        assert g(3) == 6
        assert g.__name__ == "g"
        records = TRACER.records()
        assert len(records) == 1
        assert records[0]["name"] == "g.call"
        assert records[0]["attrs"] == {"kind": "test"}

    def test_decorated_exception_propagates(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")

        @span("h.call")
        def h():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            h()
        assert TRACER.records()[0]["status"] == "error"


class TestPopUnwind:
    def test_leaked_inner_span_is_unwound(self, obs_on):
        outer_token = TRACER.push("outer", {})
        TRACER.push("leaked", {})
        # Closing the outer span must pop the leaked inner entry too.
        TRACER.pop(outer_token)
        assert current_depth() == 0
        records = {r["name"]: r for r in trace.TRACER.records()}
        assert records["outer"]["status"] == "ok"
        assert records["leaked"]["status"] == "open"
