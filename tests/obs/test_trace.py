"""Span tracer: nesting, exception safety, and the zero-cost contract."""

import os

import pytest

from repro.obs import trace
from repro.obs.trace import (TRACER, TraceContext, Tracer, current_depth,
                             current_trace_context, span)


class TestContextManager:
    def test_nesting_records_parent_and_depth(self, obs_on):
        with span("outer", tiles=3):
            with span("inner"):
                assert current_depth() == 2
        records = TRACER.records()
        outer = next(r for r in records if r["name"] == "outer")
        inner = next(r for r in records if r["name"] == "inner")
        assert outer["parent_id"] is None and outer["depth"] == 0
        assert inner["parent_id"] == outer["id"] and inner["depth"] == 1
        assert outer["attrs"] == {"tiles": 3}
        assert outer["status"] == inner["status"] == "ok"
        assert outer["duration_s"] >= inner["duration_s"] >= 0

    def test_exception_marks_span_and_unwinds(self, obs_on):
        with pytest.raises(ValueError):
            with span("failing"):
                raise ValueError("boom")
        record = TRACER.records()[0]
        assert record["status"] == "error"
        assert record["error"] == "ValueError"
        assert record["duration_s"] is not None
        assert current_depth() == 0

    def test_sibling_spans_share_parent(self, obs_on):
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
        records = {r["name"]: r for r in TRACER.records()}
        assert records["a"]["parent_id"] == records["parent"]["id"]
        assert records["b"]["parent_id"] == records["parent"]["id"]

    def test_reentrant_span_object(self, obs_on):
        s = span("repeat")
        with s:
            with s:
                pass
        records = TRACER.records()
        assert [r["name"] for r in records] == ["repeat", "repeat"]
        assert records[1]["parent_id"] == records[0]["id"]

    def test_disabled_is_noop(self, obs_off):
        with span("ghost"):
            assert current_depth() == 0
        assert TRACER.records() == []

    def test_reset_restarts_clock_and_ids(self, obs_on):
        with span("before"):
            pass
        TRACER.reset()
        with span("after"):
            pass
        records = TRACER.records()
        assert [r["name"] for r in records] == ["after"]
        assert records[0]["id"] == 0


class TestDecorator:
    def test_identity_when_env_off(self, obs_off, monkeypatch):
        monkeypatch.delenv("REPRO_OBS", raising=False)

        def f(x):
            return x + 1

        assert span("f")(f) is f

    def test_wraps_and_records_when_env_on(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")

        @span("g.call", kind="test")
        def g(x):
            return x * 2

        assert g(3) == 6
        assert g.__name__ == "g"
        records = TRACER.records()
        assert len(records) == 1
        assert records[0]["name"] == "g.call"
        assert records[0]["attrs"] == {"kind": "test"}

    def test_decorated_exception_propagates(self, obs_on, monkeypatch):
        monkeypatch.setenv("REPRO_OBS", "1")

        @span("h.call")
        def h():
            raise RuntimeError("nope")

        with pytest.raises(RuntimeError):
            h()
        assert TRACER.records()[0]["status"] == "error"


class TestTraceContext:
    def test_records_carry_trace_id_and_pid(self, obs_on):
        with span("tagged"):
            pass
        record = TRACER.records()[0]
        assert record["trace_id"] == TRACER.trace_id
        assert len(record["trace_id"]) == 16
        assert record["pid"] == os.getpid()

    def test_current_context_inside_and_outside_spans(self, obs_on):
        outside = current_trace_context()
        assert outside.trace_id == TRACER.trace_id
        assert outside.parent_span_id is None
        with span("submitting"):
            inside = current_trace_context()
            assert inside.parent_span_id == TRACER.current_span_id()
        assert inside.trace_id == outside.trace_id

    def test_bind_context_adopts_trace_and_roots_reference_parent(self):
        ctx = TraceContext(trace_id="abcd1234abcd1234", parent_span_id=7)
        worker = Tracer()
        worker.bind_context(ctx)
        outer = worker.push("trial.work", {})
        inner = worker.push("trial.inner", {})
        worker.pop(inner)
        worker.pop(outer)
        records = worker.records()
        assert all(r["trace_id"] == "abcd1234abcd1234" for r in records)
        # The root references the *remote* submitting span; the child
        # still nests locally.
        assert records[0]["parent_id"] == 7
        assert records[1]["parent_id"] == records[0]["id"]

    def test_reset_issues_fresh_trace_and_clears_context(self):
        tracer = Tracer()
        tracer.bind_context(TraceContext(trace_id="ffff0000ffff0000",
                                         parent_span_id=3))
        before = tracer.trace_id
        tracer.reset()
        assert tracer.trace_id != before
        token = tracer.push("root", {})
        tracer.pop(token)
        assert tracer.records()[0]["parent_id"] is None


class TestAdoptReParenting:
    """Explicit re-parenting: a bound worker's roots resolve against
    the submitting process's live spans on adopt."""

    def _worker_records(self, ctx):
        worker = Tracer()
        worker.bind_context(ctx)
        outer = worker.push("trial.work", {})
        inner = worker.push("trial.inner", {})
        worker.pop(inner)
        worker.pop(outer)
        return worker.records()

    def test_worker_tree_re_roots_under_live_submitting_span(self, obs_on):
        with span("run.deploy"):
            with span("parallel.trials"):
                ctx = current_trace_context()
                TRACER.adopt(self._worker_records(ctx))
        records = {r["name"]: r for r in TRACER.records()}
        trials = records["parallel.trials"]
        work, inner = records["trial.work"], records["trial.inner"]
        assert work["parent_id"] == trials["id"] == ctx.parent_span_id
        assert inner["parent_id"] == work["id"]
        # Depths recomputed from the resolved parent (trials is depth 1).
        assert work["depth"] == 2 and inner["depth"] == 3
        assert work["trace_id"] == TRACER.trace_id

    def test_single_rooted_tree_after_adopt(self, obs_on):
        with span("run.deploy"):
            with span("parallel.trials"):
                ctx = current_trace_context()
                for _ in range(3):
                    TRACER.adopt(self._worker_records(ctx))
        records = TRACER.records()
        ids = {r["id"] for r in records}
        roots = [r for r in records if r["parent_id"] not in ids]
        assert len(roots) == 1 and roots[0]["name"] == "run.deploy"
        assert len({r["id"] for r in records}) == len(records)

    def test_unknown_remote_parent_detaches(self, obs_on):
        ctx = TraceContext(trace_id=TRACER.trace_id, parent_span_id=998877)
        TRACER.adopt(self._worker_records(ctx))
        root = TRACER.records()[0]
        assert root["parent_id"] is None and root["depth"] == 0

    def test_explicit_parent_id_still_wins_for_unbound_workers(self, obs_on):
        worker = Tracer()
        worker.pop(worker.push("trial.work", {}))
        with span("parallel.trials"):
            anchor = TRACER.current_span_id()
            TRACER.adopt(worker.records(), parent_id=anchor)
        work = next(r for r in TRACER.records()
                    if r["name"] == "trial.work")
        assert work["parent_id"] == anchor and work["depth"] == 1

    def test_foreign_records_without_trace_id_get_local_one(self, obs_on):
        legacy = [{"id": 0, "parent_id": None, "name": "old.span",
                   "depth": 0, "start_s": 0.0, "duration_s": 0.1,
                   "attrs": {}, "status": "ok", "error": None}]
        TRACER.adopt(legacy)
        adopted = TRACER.records()[0]
        assert adopted["trace_id"] == TRACER.trace_id
        assert adopted["pid"] is None


class TestPopUnwind:
    def test_leaked_inner_span_is_unwound(self, obs_on):
        outer_token = TRACER.push("outer", {})
        TRACER.push("leaked", {})
        # Closing the outer span must pop the leaked inner entry too.
        TRACER.pop(outer_token)
        assert current_depth() == 0
        records = {r["name"]: r for r in trace.TRACER.records()}
        assert records["outer"]["status"] == "ok"
        assert records["leaked"]["status"] == "open"
