"""Streamed span export: spans hit disk as they close, memory stays flat."""

import json

from repro.obs import metrics, trace
from repro.obs.exporters import export_run
from repro.obs.trace import TRACER, span
from repro.utils.serialization import load_json, read_jsonl


def _read(path):
    return read_jsonl(path)


class TestSpanSink:
    def test_records_flush_on_close_not_on_open(self, obs_on, tmp_path):
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        with span("outer"):
            with span("inner"):
                pass
            # inner closed -> already on disk; outer still open.
            names = [r["name"] for r in _read(path)]
            assert names == ["inner"]
            assert [r["name"] for r in TRACER.records()] == ["outer"]
        assert [r["name"] for r in _read(path)] == ["inner", "outer"]
        assert TRACER.records() == []          # nothing retained in memory

    def test_parent_links_survive_streaming(self, obs_on, tmp_path):
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        with span("outer"):
            with span("inner"):
                pass
        by_name = {r["name"]: r for r in _read(path)}
        assert by_name["inner"]["parent_id"] == by_name["outer"]["id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["inner"]["depth"] == 1

    def test_pre_stream_spans_are_flushed(self, obs_on, tmp_path):
        with span("before"):
            pass
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        assert [r["name"] for r in _read(path)] == ["before"]
        assert TRACER.records() == []

    def test_summary_matches_buffered_aggregates(self, obs_on, tmp_path):
        TRACER.stream_to(tmp_path / "run-spans.jsonl")
        with span("a"):
            with span("b"):
                pass
        with span("a"):
            pass
        sink = TRACER.end_stream()
        summary = sink.summary()
        assert summary["n_spans"] == 3
        assert summary["stages"]["a"]["count"] == 2
        assert summary["stages"]["b"]["count"] == 1
        # Only top-level spans contribute to the wall-time total.
        assert summary["wall_time_s"] >= summary["stages"]["a"]["total_s"]
        assert summary["wall_time_s"] < (summary["stages"]["a"]["total_s"]
                                         + summary["stages"]["b"]["total_s"])

    def test_end_stream_flushes_open_spans(self, obs_on, tmp_path):
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        token = TRACER.push("leak", {})
        sink = TRACER.end_stream()
        rows = _read(path)
        assert rows[0]["name"] == "leak" and rows[0]["status"] == "open"
        assert sink.summary()["n_spans"] == 1
        TRACER.pop(token)            # closing after the drain is a no-op
        assert TRACER.records() == []

    def test_reset_closes_the_sink(self, obs_on, tmp_path):
        TRACER.stream_to(tmp_path / "run-spans.jsonl")
        TRACER.reset()
        assert TRACER.sink is None
        assert TRACER.end_stream() is None

    def test_adopted_records_stream_straight_to_disk(self, obs_on, tmp_path):
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        TRACER.adopt([{"id": 0, "parent_id": None, "name": "worker.trial",
                       "depth": 0, "start_s": 0.1, "duration_s": 0.2,
                       "attrs": {}, "status": "ok", "error": None}],
                     extra_attrs={"trial": 3})
        rows = _read(path)
        assert rows[0]["name"] == "worker.trial"
        assert rows[0]["attrs"] == {"trial": 3}
        assert TRACER.records() == []


class TestStreamedExportRun:
    def test_manifest_built_from_sink_summary(self, obs_on, tmp_path):
        TRACER.stream_to(tmp_path / "deploy-spans.jsonl")
        with span("deploy.vawo"):
            with span("vawo.search"):
                pass
        metrics.inc("vawo.calls", 2)
        paths = export_run(tmp_path, "deploy", stem="deploy", reset=True)
        assert paths["spans"] == tmp_path / "deploy-spans.jsonl"
        rows = _read(paths["spans"])
        assert sorted(r["name"] for r in rows) == ["deploy.vawo",
                                                   "vawo.search"]
        doc = load_json(paths["manifest"])
        assert doc["n_spans"] == 2
        assert doc["spans_file"] == "deploy-spans.jsonl"
        assert set(doc["stages"]) == {"deploy.vawo", "vawo.search"}
        assert doc["wall_time_s"] > 0
        assert doc["metrics"]["counters"]["vawo.calls"] == 2
        # reset=True ended the stream and cleared the tracer.
        assert trace.TRACER.sink is None and trace.TRACER.records() == []

    def test_buffered_export_unchanged_without_stream(self, obs_on, tmp_path):
        with span("deploy.eval"):
            pass
        paths = export_run(tmp_path, "deploy", stem="deploy", reset=True)
        assert load_json(paths["manifest"])["n_spans"] == 1
        assert _read(paths["spans"])[0]["name"] == "deploy.eval"

    def test_streamed_lines_are_valid_json_objects(self, obs_on, tmp_path):
        path = TRACER.stream_to(tmp_path / "run-spans.jsonl")
        with span("a", tiles=3):
            pass
        TRACER.end_stream()
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert {"id", "name", "start_s", "duration_s",
                    "status"} <= set(record)
