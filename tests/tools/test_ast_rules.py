"""Golden tests for the graph-backed rules R8-R12 (tools/lint).

R9/R10 are cross-file dataflow rules, so their fixtures are copied
from ``tests/tools/fixtures/`` into a temp mini-tree shaped like the
real one (``src/repro/parallel/...``) and linted through
``check_paths``; R11/R12 are file-local and drive ``check_source``
on the fixture text. The R8 suite builds a tiny cached-stage tree,
seeds a baseline, then mutates the stage body and asserts the gate
trips — the acceptance criterion of the drift rule.
"""

import json
import textwrap
from pathlib import Path

from tools.lint.callgraph import ModuleGraph, clear_parse_cache, get_context
from tools.lint.hashing import normalized_dump
from tools.lint.runner import check_paths, check_source, main

FIXTURES = Path(__file__).resolve().parent / "fixtures"


def codes(violations):
    return [v.code for v in violations]


def place(tmp_path, fixture, rel):
    dest = tmp_path / rel
    dest.parent.mkdir(parents=True, exist_ok=True)
    dest.write_text((FIXTURES / fixture).read_text(encoding="utf-8"),
                    encoding="utf-8")
    return dest


def lint_tree(tmp_path, select):
    clear_parse_cache()
    return check_paths([str(tmp_path)], select=select, stage_baseline=None)


class TestR9RngDiscipline:
    def test_violating_worker_module(self, tmp_path):
        place(tmp_path, "r9_violation.py", "src/repro/parallel/worker.py")
        out = lint_tree(tmp_path, select=["R9"])
        # Module-level generator + default_rng + fresh make_rng + the
        # read of the shared module-level stream.
        assert codes(out) == ["R9", "R9", "R9", "R9"]
        messages = " ".join(v.message for v in out)
        assert "per-trial stream" in messages
        assert "OS entropy" in messages

    def test_clean_worker_module(self, tmp_path):
        place(tmp_path, "r9_clean.py", "src/repro/parallel/worker.py")
        assert lint_tree(tmp_path, select=["R9"]) == []

    def test_trial_fn_reached_through_run_trials(self, tmp_path):
        """The dataflow leg: a generator built in a trial fn that only
        reaches the worker through a partial() handed to run_trials."""
        executor = tmp_path / "src/repro/parallel/executor.py"
        executor.parent.mkdir(parents=True, exist_ok=True)
        executor.write_text(textwrap.dedent("""\
            def run_trials(fn, n_trials, seed=None, jobs=None):
                return [fn(t, None) for t in range(n_trials)]
            """), encoding="utf-8")
        acc = tmp_path / "src/repro/eval/acc.py"
        acc.parent.mkdir(parents=True, exist_ok=True)
        acc.write_text(textwrap.dedent("""\
            from functools import partial

            import numpy as np

            from repro.parallel.executor import run_trials


            def _trial(model, trial, rng):
                local = np.random.default_rng(trial)
                return local.normal()


            def evaluate(model, n):
                return run_trials(partial(_trial, model), n)
            """), encoding="utf-8")
        out = lint_tree(tmp_path, select=["R9"])
        assert codes(out) == ["R9"]
        assert out[0].path.endswith("acc.py")
        assert "_trial" in out[0].message

    def test_rng_ok_marker_with_reason_suppresses(self, tmp_path):
        worker = tmp_path / "src/repro/parallel/worker.py"
        worker.parent.mkdir(parents=True, exist_ok=True)
        worker.write_text(textwrap.dedent("""\
            import numpy as np


            def run_trial_task(trial):
                probe = np.random.default_rng(0)  # rng-ok — fixed probe, not trial-visible
                return probe.normal()
            """), encoding="utf-8")
        assert lint_tree(tmp_path, select=["R9"]) == []

    def test_bare_marker_without_reason_does_not_suppress(self, tmp_path):
        worker = tmp_path / "src/repro/parallel/worker.py"
        worker.parent.mkdir(parents=True, exist_ok=True)
        worker.write_text(textwrap.dedent("""\
            import numpy as np


            def run_trial_task(trial):
                probe = np.random.default_rng(0)  # rng-ok
                return probe.normal()
            """), encoding="utf-8")
        assert codes(lint_tree(tmp_path, select=["R9"])) == ["R9"]


class TestR10ForkSafety:
    def test_violating_module(self, tmp_path):
        place(tmp_path, "r10_violation.py", "src/repro/parallel/state.py")
        out = lint_tree(tmp_path, select=["R10"])
        assert codes(out) == ["R10", "R10", "R10"]
        messages = " ".join(v.message for v in out)
        assert "rebinds" in messages
        assert "mutates" in messages
        assert "close" in messages and "unlink" in messages

    def test_clean_module(self, tmp_path):
        place(tmp_path, "r10_clean.py", "src/repro/parallel/state.py")
        assert lint_tree(tmp_path, select=["R10"]) == []

    def test_writes_outside_worker_scope_not_flagged(self, tmp_path):
        # The same global mutation in a non-worker-reachable module is
        # legal: only fork-divergent state is the rule's business.
        place(tmp_path, "r10_violation.py", "src/repro/data/registry.py")
        out = lint_tree(tmp_path, select=["R10"])
        # SharedMemory pairing still applies (it is per-module), but
        # the global-write findings require worker reachability.
        assert all("SharedMemory" in v.message for v in out)


class TestR11SpanHygiene:
    def test_violating_fixture(self):
        source = (FIXTURES / "r11_violation.py").read_text(encoding="utf-8")
        out = check_source(source, "src/repro/core/driver.py",
                           select=["R11"])
        assert codes(out) == ["R11", "R11"]
        assert "with" in out[0].message
        assert "TRACER.push" in out[1].message

    def test_clean_fixture(self):
        source = (FIXTURES / "r11_clean.py").read_text(encoding="utf-8")
        out = check_source(source, "src/repro/core/driver.py",
                           select=["R11"])
        assert out == []

    def test_out_of_scope_paths_exempt(self):
        source = (FIXTURES / "r11_violation.py").read_text(encoding="utf-8")
        for path in ("src/repro/obs/trace.py", "tests/obs/test_trace.py",
                     "benchmarks/bench_x.py"):
            assert check_source(source, path, select=["R11"]) == []

    def test_traversal_helpers_violating(self):
        """Critical-path-style traversal shapes: a held span in a
        recursive walk and a hand-driven TRACER stack both flag."""
        source = (FIXTURES / "r11_traversal_violation.py").read_text(
            encoding="utf-8")
        out = check_source(source, "src/repro/obs/analysis.py",
                           select=["R11"])
        assert codes(out) == ["R11", "R11", "R11"]
        assert "with" in out[0].message
        assert "TRACER.push" in out[1].message

    def test_traversal_helpers_clean(self):
        """with-form, decorator-form, and a justified # span-ok hold
        across generator yields all pass at the analysis module path."""
        source = (FIXTURES / "r11_traversal_clean.py").read_text(
            encoding="utf-8")
        assert check_source(source, "src/repro/obs/analysis.py",
                            select=["R11"]) == []


class TestR12ExceptionHygiene:
    def test_violating_fixture(self):
        source = (FIXTURES / "r12_violation.py").read_text(encoding="utf-8")
        out = check_source(source, "src/repro/utils/io.py", select=["R12"])
        assert codes(out) == ["R12", "R12"]
        assert "noqa: BLE001" in out[0].message
        assert "bare" in out[1].message

    def test_clean_fixture(self):
        source = (FIXTURES / "r12_clean.py").read_text(encoding="utf-8")
        out = check_source(source, "src/repro/utils/io.py", select=["R12"])
        assert out == []

    def test_tuple_handler_with_broad_member_flagged(self):
        out = check_source(textwrap.dedent("""\
            def f(fn):
                try:
                    return fn()
                except (ValueError, Exception):
                    return None
            """), "src/repro/utils/io.py", select=["R12"])
        assert codes(out) == ["R12"]

    def test_narrow_tuple_not_flagged(self):
        out = check_source(textwrap.dedent("""\
            def f(fn):
                try:
                    return fn()
                except (ValueError, KeyError):
                    return None
            """), "src/repro/utils/io.py", select=["R12"])
        assert out == []


# ----------------------------------------------------------------------
# R8: the cache-salt drift gate
# ----------------------------------------------------------------------
KEYS_SRC = """\
STAGE_VERSIONS = {{"lut": {salt}}}


def stage_key(stage, **components):
    return "repro.cache/" + stage + "/v" + str(STAGE_VERSIONS.get(stage, 0))
"""

PIPELINE_SRC = """\
from repro.cache.keys import stage_key


def _helper(x):
    {helper_body}


def build_lut(x):
    key = stage_key("lut", x=x)
    return key, _helper(x)
"""


class TestR8CacheSaltDrift:
    def _write_tree(self, tmp_path, salt=1, helper_body="return x + 1"):
        clear_parse_cache()
        keys = tmp_path / "src/repro/cache/keys.py"
        keys.parent.mkdir(parents=True, exist_ok=True)
        keys.write_text(KEYS_SRC.format(salt=salt), encoding="utf-8")
        pipe = tmp_path / "src/repro/core/pipeline.py"
        pipe.parent.mkdir(parents=True, exist_ok=True)
        pipe.write_text(PIPELINE_SRC.format(helper_body=helper_body),
                        encoding="utf-8")
        return tmp_path / "src"

    def test_stage_body_edit_without_bump_trips_gate(self, tmp_path,
                                                     capsys):
        src = self._write_tree(tmp_path)
        baseline = tmp_path / "stage_hashes.json"
        assert main(["--update-baseline", str(src),
                     "--stage-baseline", str(baseline)]) == 0
        document = json.loads(baseline.read_text(encoding="utf-8"))
        assert set(document["stages"]) == {"lut"}
        assert document["stages"]["lut"]["salt"] == 1

        run = [str(src), "--stage-baseline", str(baseline),
               "--select", "R8", "-q"]
        assert main(run) == 0
        capsys.readouterr()

        # A transitive-callee edit (the memoizing function untouched)
        # without a STAGE_VERSIONS bump must fail the gate.
        self._write_tree(tmp_path, helper_body="return x + 2")
        assert main(run) == 1
        out = capsys.readouterr().out
        assert "R8" in out and "STAGE_VERSIONS" in out

        # Bumping the salt flips the message to "refresh the baseline".
        self._write_tree(tmp_path, salt=2, helper_body="return x + 2")
        assert main(run) == 1
        assert "--update-baseline" in capsys.readouterr().out

        # Refreshing the baseline closes the loop.
        assert main(["--update-baseline", str(src),
                     "--stage-baseline", str(baseline)]) == 0
        capsys.readouterr()
        assert main(run) == 0

    def test_docstring_and_formatting_edits_do_not_trip(self, tmp_path,
                                                        capsys):
        src = self._write_tree(tmp_path)
        baseline = tmp_path / "stage_hashes.json"
        assert main(["--update-baseline", str(src),
                     "--stage-baseline", str(baseline)]) == 0
        self._write_tree(
            tmp_path,
            helper_body='"""Docstring only."""\n    return x  +  1')
        run = [str(src), "--stage-baseline", str(baseline),
               "--select", "R8", "-q"]
        assert main(run) == 0
        capsys.readouterr()

    def test_missing_baseline_reports_seed_instruction(self, tmp_path,
                                                       capsys):
        src = self._write_tree(tmp_path)
        run = [str(src), "--stage-baseline",
               str(tmp_path / "absent.json"), "--select", "R8", "-q"]
        assert main(run) == 1
        assert "--update-baseline" in capsys.readouterr().out

    def test_repo_baseline_matches_working_tree(self):
        # The committed fingerprints must describe the committed code:
        # otherwise every PR starts red (or worse, the gate is dead).
        root = Path(__file__).resolve().parents[2]
        out = check_paths([str(root / "src")], select=["R8"],
                          stage_baseline=root / "tools/stage_hashes.json")
        assert out == []


class TestGraphInternals:
    def test_normalized_dump_ignores_positions_and_docstrings(self):
        import ast
        a = ast.parse('def f(x):\n    """Doc."""\n    return x + 1\n')
        b = ast.parse("def f(x):\n    return (x +\n        1)\n")
        assert normalized_dump(a) == normalized_dump(b)
        c = ast.parse("def f(x):\n    return x + 2\n")
        assert normalized_dump(a) != normalized_dump(c)

    def test_strict_closure_follows_imports_and_methods(self):
        clear_parse_cache()
        util = get_context("src/repro/util.py", textwrap.dedent("""\
            def leaf(x):
                return x
            """))
        core = get_context("src/repro/core/eng.py", textwrap.dedent("""\
            from repro.util import leaf


            class Engine:
                def run(self, x):
                    return self._step(leaf(x))

                def _step(self, x):
                    return x
            """))
        graph = ModuleGraph([util, core])
        closure = graph.closure(["repro.core.eng.Engine.run"],
                                strict_only=True)
        assert closure == {"repro.core.eng.Engine.run",
                           "repro.core.eng.Engine._step",
                           "repro.util.leaf"}

    def test_parse_cache_reuses_contexts_by_content(self):
        clear_parse_cache()
        first = get_context("a.py", "x = 1\n")
        again = get_context("a.py", "x = 1\n")
        changed = get_context("a.py", "x = 2\n")
        assert first is again
        assert changed is not first
