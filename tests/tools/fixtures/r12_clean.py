"""R12 clean fixture: narrow handlers, justified breadth."""


def load(path):
    try:
        return open(path).read()
    except OSError:
        return None


def fault_barrier(fn):
    try:
        return fn()
    except Exception:  # noqa: BLE001 — trial faults become results
        return None
