"""R11 clean fixture: placed at src/repro/core/driver.py.

Spans opened structurally: with-statement, decorator, or a justified
marker for the vetted exception.
"""

from repro.obs.trace import span


@span("decorated")
def decorated(x):
    return x


def run(x):
    with span("compute"):
        return decorated(x)


def vetted(x):
    handle = span("held")  # span-ok — closed by the caller's finally
    return x, handle
