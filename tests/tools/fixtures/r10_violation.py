"""R10 violating fixture: placed at src/repro/parallel/state.py.

Worker-reachable code rebinding and mutating module-level state, plus
a SharedMemory segment created in a module that never references
close/unlink.
"""

from multiprocessing import shared_memory

_RESULTS = []
_CURRENT = None


def run_trial_task(trial):
    global _CURRENT
    _CURRENT = trial
    _RESULTS.append(trial)
    return trial


def make_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)
