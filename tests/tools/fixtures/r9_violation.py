"""R9 violating fixture: placed at src/repro/parallel/worker.py.

Every way a worker can break RNG discipline: a module-level generator
(imported into each pool process), a raw ``default_rng`` inside a
worker-reachable function, a fresh-entropy ``make_rng()``, and a read
of the shared module-level stream.
"""

import numpy as np

from repro.utils.rng import make_rng

_RNG = make_rng(123)


def run_trial_task(trial):
    local = np.random.default_rng()
    fresh = make_rng()
    shared = _RNG.normal()
    return local.normal() + fresh.normal() + shared
