"""R11 violating fixture: placed at src/repro/core/driver.py.

A free-floating span (nothing guarantees its pop) and a raw
TRACER.push.
"""

from repro.obs.trace import TRACER, span


def run(x):
    handle = span("compute")
    TRACER.push("manual")
    return x, handle
