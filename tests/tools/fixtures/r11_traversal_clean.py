"""R11 golden fixture: span-hygienic trace-traversal helpers.

Mirrors the shapes ``repro.obs.analysis`` uses — recursive child walks,
a heaviest-child chain loop, and a generator that must keep a span open
across yields (the one vetted ``# span-ok`` case).
"""

from repro.obs.trace import span


def walk_children(node, children, visit):
    with span("analysis.walk", name=node["name"]):
        visit(node)
        for child in children.get(node["id"], ()):
            walk_children(child, children, visit)


@span("analysis.critical_path")
def critical_path(roots, children):
    chains = []
    for root in roots:
        chain, node = [], root
        while node is not None:
            chain.append(node["name"])
            kids = children.get(node["id"], [])
            node = max(kids, key=lambda c: c.get("duration_s") or 0.0,
                       default=None)
        chains.append(chain)
    return chains


def timed_fold(roots):
    # The span deliberately outlives this frame: the generator keeps it
    # open across yields; the finally closes it even when the consumer
    # stops iterating early.
    guard = span("analysis.fold")  # span-ok — closed in finally below
    guard.__enter__()
    try:
        for root in roots:
            yield root["name"]
    finally:
        guard.__exit__(None, None, None)
