"""R12 violating fixture: broad handlers without justification."""


def load(path):
    try:
        return open(path).read()
    except Exception:
        return None


def last_resort(fn):
    try:
        return fn()
    # The bare except IS this fixture's point; keep ruff out of it.
    except:  # noqa: E722
        return None
