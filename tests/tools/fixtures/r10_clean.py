"""R10 clean fixture: placed at src/repro/parallel/state.py.

Results flow back as return values; the one deliberate initializer
slot carries a justified marker; segments pair with close/unlink.
"""

from multiprocessing import shared_memory

_POOL_SLOT = None


def install(blob):
    global _POOL_SLOT
    _POOL_SLOT = blob  # fork-ok — initializer slot, set once per worker


def run_trial_task(trial):
    return trial


def make_segment(nbytes):
    return shared_memory.SharedMemory(create=True, size=nbytes)


def release(segment):
    segment.close()
    segment.unlink()
