"""R11 golden fixture: trace-traversal helpers that leak spans.

Same traversal shapes as the clean twin, but the recursive walk holds
its span in a variable (a raising ``visit`` skips the close and every
later span nests under a ghost parent) and the chain builder drives the
tracer stack by hand.
"""

from repro.obs.trace import TRACER, span


def walk_children(node, children, visit):
    guard = span("analysis.walk")
    guard.__enter__()
    visit(node)
    for child in children.get(node["id"], ()):
        walk_children(child, children, visit)
    guard.__exit__(None, None, None)


def critical_path(roots):
    token = TRACER.push("analysis.critical_path", {})
    chains = [[root["name"]] for root in roots]
    TRACER.pop(token)
    return chains
