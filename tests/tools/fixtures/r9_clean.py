"""R9 clean fixture: placed at src/repro/parallel/worker.py.

Workers only consume the per-trial stream they are handed; generator
construction is seeded and happens outside the fresh-entropy path.
"""

from repro.utils.rng import make_rng


def run_trial_task(trial, rng):
    return rng.normal()


def rng_for_trial(seed):
    return make_rng(seed)
