"""Per-rule positive/negative fixtures for repro-lint (tools/lint).

Each rule gets at least one snippet it must flag and one it must not;
the suppression mechanisms (pragmas, per-rule path scoping, inline
markers) are exercised explicitly. Tests drive the programmatic
``check_source`` API, so they need no temp files.
"""

import textwrap

import pytest

from tools.lint import ALL_RULES, check_source
from tools.lint.report import Violation
from tools.lint.runner import check_paths, collect_files, main


def lint(code, path="example.py", select=None):
    return check_source(textwrap.dedent(code), path, select=select)


def codes(violations):
    return [v.code for v in violations]


class TestR1UnseededRandom:
    def test_flags_np_random_normal(self):
        out = lint("""
            import numpy as np
            x = np.random.normal(0, 1, size=4)
        """)
        assert codes(out) == ["R1"]
        assert "np.random" in out[0].message or "random.normal" in out[0].message

    def test_flags_bare_default_rng(self):
        out = lint("""
            import numpy as np
            rng = np.random.default_rng()
        """)
        assert codes(out) == ["R1"]

    def test_resolves_import_aliases(self):
        out = lint("""
            import numpy
            from numpy import random as npr
            a = numpy.random.rand(3)
            b = npr.normal()
        """)
        assert codes(out) == ["R1", "R1"]

    def test_allows_make_rng(self):
        out = lint("""
            from repro.utils.rng import make_rng
            rng = make_rng(0)
            x = rng.normal(size=3)
        """)
        assert out == []

    def test_exempt_inside_rng_module(self):
        out = lint("""
            import numpy as np
            rng = np.random.default_rng(seed)
        """, path="src/repro/utils/rng.py")
        assert out == []

    def test_line_pragma_suppresses(self):
        out = lint("""
            import numpy as np
            x = np.random.rand(2)  # repro-lint: disable=R1
        """)
        assert out == []

    def test_file_pragma_suppresses(self):
        out = lint("""
            # repro-lint: disable-file=R1
            import numpy as np
            x = np.random.rand(2)
            y = np.random.rand(2)
        """)
        assert out == []

    def test_unrelated_random_module_not_flagged(self):
        out = lint("""
            import random
            x = random.random()
        """)
        assert out == []


class TestR2MutableDefault:
    def test_flags_list_literal_default(self):
        out = lint("""
            def f(items=[]):
                return items
        """)
        assert codes(out) == ["R2"]

    def test_flags_dict_call_and_kwonly_default(self):
        out = lint("""
            def f(a, cache=dict(), *, seen=set()):
                return a
        """)
        assert codes(out) == ["R2", "R2"]

    def test_flags_lambda_default(self):
        out = lint("g = lambda xs=[]: xs\n")
        assert codes(out) == ["R2"]

    def test_allows_none_and_immutable_defaults(self):
        out = lint("""
            def f(items=None, n=3, name="x", point=(0, 0)):
                items = [] if items is None else items
                return items
        """)
        assert out == []


R3_PATH = "src/repro/core/example.py"


class TestR3TypedPublicApi:
    def test_flags_missing_annotations(self):
        out = lint("""
            def step(state, n=1):
                '''Advance the state.'''
                return state
        """, path=R3_PATH)
        assert codes(out) == ["R3", "R3"]  # params + return annotation

    def test_flags_missing_docstring(self):
        out = lint("""
            def qmax(bits: int) -> int:
                return (1 << bits) - 1
        """, path=R3_PATH)
        assert codes(out) == ["R3"]

    def test_flags_array_function_without_shape_docs(self):
        out = lint("""
            import numpy as np
            def vmm(x: np.ndarray) -> np.ndarray:
                '''Multiply.'''
                return x
        """, path=R3_PATH)
        assert codes(out) == ["R3"]
        assert "shape" in out[0].message

    def test_accepts_fully_documented_function(self):
        out = lint("""
            import numpy as np
            def vmm(x: np.ndarray) -> np.ndarray:
                '''Column currents: (N, rows) -> (N, cols).'''
                return x
        """, path=R3_PATH)
        assert out == []

    def test_private_functions_and_classes_exempt(self):
        out = lint("""
            def _helper(x):
                return x

            class _Internal:
                def method(self, x):
                    return x
        """, path=R3_PATH)
        assert out == []

    def test_init_needs_no_return_annotation(self):
        out = lint("""
            class Box:
                '''A box.'''
                def __init__(self, n: int):
                    '''Store n.'''
                    self.n = n
        """, path=R3_PATH)
        assert out == []

    def test_out_of_scope_paths_ignored(self):
        code = """
            def totally_untyped(a, b):
                return a + b
        """
        assert lint(code, path="src/repro/eval/example.py") == []
        assert lint(code, path="tests/core/test_example.py") == []


class TestR4DtypeNarrowing:
    def test_flags_float32_weight_cast(self):
        out = lint("""
            import numpy as np
            w32 = np.asarray(weights, dtype=np.float32)
        """)
        assert codes(out) == ["R4"]

    def test_flags_string_dtype_on_conductances(self):
        out = lint("""
            import numpy as np
            g = np.array(conductances, dtype="float16")
        """)
        assert codes(out) == ["R4"]

    def test_allows_float64(self):
        out = lint("""
            import numpy as np
            w = np.asarray(weights, dtype=np.float64)
        """)
        assert out == []

    def test_allows_non_sensitive_names(self):
        out = lint("""
            import numpy as np
            img = np.asarray(pixels, dtype=np.uint8)
        """)
        assert out == []

    def test_dtype_ok_marker_suppresses(self):
        out = lint("""
            import numpy as np
            w32 = np.asarray(weights, dtype=np.float32)  # dtype-ok
        """)
        assert out == []


class TestR5NpzSuffix:
    def test_flags_suffixless_savez_and_load(self):
        out = lint("""
            import numpy as np
            np.savez(path, x=x)
            data = np.load(path)
        """)
        assert codes(out) == ["R5", "R5"]

    def test_allows_visible_npz_suffix(self):
        out = lint("""
            import numpy as np
            np.savez("out/run.npz", x=x)
            data = np.load(str(base) + ".npz")
        """)
        assert out == []

    def test_npz_ok_marker_suppresses(self):
        out = lint("""
            import numpy as np
            np.savez(str(p), x=x)  # npz-ok
        """)
        assert out == []

    def test_unrelated_load_not_flagged(self):
        out = lint("""
            import json
            data = json.load(fh)
        """)
        assert out == []


class TestR6NoPrintInLibrary:
    def test_flags_print_in_library(self):
        out = lint("print('hello')\n", path="src/repro/core/vawo.py")
        assert codes(out) == ["R6"]
        assert "print" in out[0].message

    def test_outside_library_not_scoped(self):
        assert lint("print('x')\n", path="example.py") == []

    def test_benchmarks_and_tests_exempt(self):
        for path in ("benchmarks/bench_fig5a.py",
                     "tests/repro/test_x.py",
                     "tools/lint/runner.py"):
            assert lint("print('x')\n", path=path) == []

    def test_print_ok_marker_suppresses(self):
        out = lint("print('banner')  # print-ok\n",
                   path="src/repro/cli.py")
        assert out == []

    def test_local_redefinition_not_flagged(self):
        out = lint("""
            from rich import print
            print('styled')
        """, path="src/repro/core/vawo.py")
        assert out == []

    def test_attribute_print_not_flagged(self):
        out = lint("console.print('x')\n", path="src/repro/core/vawo.py")
        assert out == []


class TestR7StrideTricksInBackendOnly:
    def test_flags_as_strided_call(self):
        out = lint("""
            import numpy as np
            v = np.lib.stride_tricks.as_strided(x, shape=(2,), strides=(8,))
        """, path="src/repro/nn/functional.py")
        assert codes(out) == ["R7"]
        assert "repro.backend" in out[0].message

    def test_flags_from_import(self):
        out = lint("""
            from numpy.lib.stride_tricks import sliding_window_view
        """, path="src/repro/xbar/engine.py")
        assert codes(out) == ["R7"]

    def test_flags_module_import_forms(self):
        for snippet in ("import numpy.lib.stride_tricks",
                        "from numpy.lib import stride_tricks"):
            out = lint(snippet + "\n", path="src/repro/eval/metrics.py")
            assert codes(out) == ["R7"], snippet

    def test_flags_call_through_imported_name(self):
        out = lint("""
            from numpy.lib.stride_tricks import as_strided
            w = as_strided(x, shape=(4, 2), strides=(16, 8))
        """, path="src/repro/device/lut.py")
        # One hit for the import, one for the call.
        assert codes(out) == ["R7", "R7"]

    def test_backend_package_exempt(self):
        out = lint("""
            import numpy as np
            v = np.lib.stride_tricks.as_strided(x, shape=(2,), strides=(8,))
        """, path="src/repro/backend/vectorized.py")
        assert out == []

    def test_stride_ok_marker_suppresses(self):
        out = lint("""
            import numpy as np
            v = np.lib.stride_tricks.as_strided(  # stride-ok
                x, shape=(2,), strides=(8,))
        """, path="src/repro/nn/functional.py")
        assert out == []

    def test_tests_are_scoped_too(self):
        out = lint("from numpy.lib.stride_tricks import as_strided\n",
                   path="tests/nn/test_functional.py")
        assert codes(out) == ["R7"]

    def test_unrelated_numpy_lib_import_not_flagged(self):
        out = lint("from numpy.lib import format as npy_format\n",
                   path="src/repro/utils/serialization.py")
        assert out == []


class TestInfrastructure:
    def test_syntax_error_reported_as_e999(self):
        out = lint("def broken(:\n")
        assert codes(out) == ["E999"]

    def test_select_filters_rules(self):
        code = """
            import numpy as np
            def f(items=[]):
                return np.random.rand(2)
        """
        assert codes(lint(code, select=["R2"])) == ["R2"]
        assert set(codes(lint(code))) == {"R1", "R2"}

    def test_unknown_select_code_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            lint("x = 1\n", select=["R99"])

    def test_violation_rendering(self):
        v = Violation(path="a.py", line=3, col=5, code="R1", message="msg")
        assert v.render() == "a.py:3:5: R1 msg"

    def test_all_rules_have_unique_codes(self):
        rule_codes = [r.code for r in ALL_RULES]
        assert len(rule_codes) == len(set(rule_codes))
        # Numeric order: R1..R9 then R10.., not lexicographic.
        assert rule_codes == sorted(rule_codes, key=lambda c: int(c[1:]))

    def test_collect_files_skips_cache_dirs(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "__pycache__").mkdir()
        (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("x = 1\n")
        files = collect_files([str(tmp_path)])
        assert [f.name for f in files] == ["ok.py"]

    def test_check_paths_on_real_file(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        out = check_paths([str(bad)])
        assert codes(out) == ["R1"]

    def test_main_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert main([str(clean)]) == 0
        bad = tmp_path / "bad.py"
        bad.write_text("import numpy as np\nx = np.random.rand(2)\n")
        assert main([str(bad)]) == 1
        assert "R1" in capsys.readouterr().out
        assert main([str(tmp_path / "missing_dir")]) == 2

    def test_main_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        listing = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.code in listing

    def test_repo_tree_is_clean(self):
        # The acceptance criterion: the shipped tree carries zero
        # violations (pragmas included, like any real lint gate).
        from pathlib import Path
        root = Path(__file__).resolve().parents[2]
        targets = [str(root / d) for d in ("src", "tests", "benchmarks")]
        assert check_paths(targets) == []
