"""The benchmark-regression gate (``python -m tools.bench_diff``)."""

import json

import pytest

from tools.bench_diff import (HISTORY_SCHEMA, SIDECAR_SCHEMA, compare,
                              load_history, load_sidecars, main, run_diff,
                              run_trend, trend_verdicts)


def write_sidecar(directory, name, elapsed_s, schema=SIDECAR_SCHEMA,
                  backend=None, offload_tier=None):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"schema": schema, "name": name, "preset": "quick",
               "elapsed_s": elapsed_s}
    if backend is not None:
        payload["backend"] = backend
    if offload_tier is not None:
        payload["offload_tier"] = offload_tier
    (directory / f"{name}.json").write_text(json.dumps(payload))


def gate(tmp_path, **kwargs):
    args = dict(baseline_dir=tmp_path / "base", current_dir=tmp_path / "cur",
                max_slowdown=1.5, min_baseline_s=2.0,
                require_baseline=False)
    args.update(kwargs)
    return run_diff(**args)


class TestLoadSidecars:
    def test_parses_and_skips_foreign_json(self, tmp_path):
        write_sidecar(tmp_path, "fig5a", 10.0)
        (tmp_path / "notes.json").write_text(json.dumps({"foo": 1}))
        (tmp_path / "broken.json").write_text("{nope")
        write_sidecar(tmp_path, "other", 1.0, schema="something/else")
        entries = load_sidecars(tmp_path)
        assert set(entries) == {"fig5a"}
        assert entries["fig5a"].elapsed_s == 10.0

    def test_recurses(self, tmp_path):
        write_sidecar(tmp_path / "nested", "fig5a", 3.0)
        assert set(load_sidecars(tmp_path)) == {"fig5a"}


class TestCompare:
    def test_worst_first_and_flags(self, tmp_path):
        base = {"a": 10.0, "b": 10.0, "tiny": 0.5}
        cur = {"a": 12.0, "b": 20.0, "tiny": 50.0}
        write = lambda d, entries: [write_sidecar(d, n, s)  # noqa: E731
                                    for n, s in entries.items()]
        write(tmp_path / "base", base)
        write(tmp_path / "cur", cur)
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert [c.name for c in comps] == ["tiny", "b", "a"]
        by = {c.name: c for c in comps}
        assert by["a"].regressed is False
        assert by["b"].regressed is True and by["b"].ratio == 2.0
        # Sub-floor baselines never gate, however bad the ratio looks.
        assert by["tiny"].skipped_short and not by["tiny"].regressed


class TestBackendGating:
    def one_comparison(self, tmp_path, base_backend, cur_backend):
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend=base_backend)
        write_sidecar(tmp_path / "cur", "fig5a", 50.0,
                      backend=cur_backend)
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert len(comps) == 1
        return comps[0]

    def test_backend_mismatch_never_regresses(self, tmp_path):
        c = self.one_comparison(tmp_path, "vectorized", "reference")
        assert c.skipped_backend and not c.regressed

    def test_same_backend_still_gates(self, tmp_path):
        c = self.one_comparison(tmp_path, "vectorized", "vectorized")
        assert not c.skipped_backend and c.regressed

    def test_untagged_sidecars_compare_with_anything(self, tmp_path):
        # Pre-upgrade baselines lack the backend field; they must keep
        # gating rather than silently skipping every comparison.
        for base_backend, cur_backend in ((None, "reference"),
                                          ("vectorized", None),
                                          (None, None)):
            c = self.one_comparison(tmp_path, base_backend, cur_backend)
            assert not c.skipped_backend and c.regressed

    def test_gate_passes_on_backend_switch(self, tmp_path, capsys):
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend="vectorized")
        write_sidecar(tmp_path / "cur", "fig5a", 99.0,
                      backend="reference")
        assert gate(tmp_path) == 0
        assert "backend-skip" in capsys.readouterr().out

    def test_offload_tier_mismatch_never_regresses(self, tmp_path):
        # A numba-accelerated baseline must not gate a BLAS-only run
        # (different environments, not a regression).
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend="accel", offload_tier="numba")
        write_sidecar(tmp_path / "cur", "fig5a", 50.0,
                      backend="accel", offload_tier="blas")
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert comps[0].skipped_backend and not comps[0].regressed

    def test_same_offload_tier_still_gates(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend="accel", offload_tier="blas")
        write_sidecar(tmp_path / "cur", "fig5a", 50.0,
                      backend="accel", offload_tier="blas")
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert not comps[0].skipped_backend and comps[0].regressed

    def test_untiered_sidecars_compare_with_tiered(self, tmp_path):
        # Pre-upgrade sidecars lack offload_tier; they keep gating.
        write_sidecar(tmp_path / "base", "fig5a", 10.0, backend="accel")
        write_sidecar(tmp_path / "cur", "fig5a", 50.0,
                      backend="accel", offload_tier="blas")
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert not comps[0].skipped_backend and comps[0].regressed


class TestGate:
    def test_ok_run_passes(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 12.0)
        assert gate(tmp_path) == 0

    def test_regression_fails(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 1

    def test_missing_baseline_passes_by_default(self, tmp_path):
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 0

    def test_missing_baseline_fails_when_required(self, tmp_path):
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path, require_baseline=True) == 2

    def test_empty_baseline_dir_passes_by_default(self, tmp_path):
        (tmp_path / "base").mkdir()
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 0
        assert gate(tmp_path, require_baseline=True) == 2

    def test_missing_current_is_an_error(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        assert gate(tmp_path) == 2

    def test_new_and_removed_benches_do_not_gate(self, tmp_path, capsys):
        write_sidecar(tmp_path / "base", "gone", 10.0)
        write_sidecar(tmp_path / "cur", "fresh", 10.0)
        assert gate(tmp_path) == 0
        out = capsys.readouterr().out
        assert "fresh" in out and "gone" in out

    def test_raised_limit_tolerates_slowdown(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path, max_slowdown=3.0) == 0


def history_rows(elapsed, name="fig5a", preset="quick",
                 backend="vectorized"):
    return [{"schema": HISTORY_SCHEMA, "name": name, "preset": preset,
             "backend": backend, "elapsed_s": e, "git_sha": f"sha{i}",
             "created_unix": 1000.0 + i}
            for i, e in enumerate(elapsed)]


def write_history(tmp_path, rows):
    path = tmp_path / "history.jsonl"
    with open(path, "a") as fh:
        for row in rows:
            fh.write(json.dumps(row) + "\n")
    return path


def trend(tmp_path, rows, **kwargs):
    args = dict(window=4, step_ratio=1.02, max_slowdown=1.5,
                min_baseline_s=2.0)
    args.update(kwargs)
    return run_trend(write_history(tmp_path, rows), **args)


class TestTrendGate:
    def test_monotonic_creep_fails(self, tmp_path, capsys):
        # Each step is ~1.16x — far under the 1.5x pairwise limit — but
        # the cumulative drift is 1.57x: exactly the blind spot.
        assert trend(tmp_path, history_rows([10.0, 11.6, 13.5, 15.7])) == 1
        out = capsys.readouterr().out
        assert "TRENDING UP" in out and "sha0" in out

    def test_single_step_regression_does_not_trend(self, tmp_path):
        # One bad commit is the pairwise gate's job, not a trend.
        assert trend(tmp_path, history_rows([10.0, 10.0, 10.0, 17.0])) == 0

    def test_dip_breaks_the_trend(self, tmp_path):
        assert trend(tmp_path, history_rows([10.0, 11.6, 9.0, 15.7])) == 0

    def test_cumulative_under_limit_passes(self, tmp_path):
        assert trend(tmp_path, history_rows([10.0, 10.4, 10.9, 11.4])) == 0

    def test_short_series_passes(self, tmp_path):
        assert trend(tmp_path, history_rows([10.0, 16.0])) == 0

    def test_sub_floor_series_never_flags(self, tmp_path):
        assert trend(tmp_path, history_rows([0.10, 0.15, 0.22, 0.40])) == 0

    def test_only_trailing_window_considered(self, tmp_path):
        # Ancient creep followed by a stable plateau must not flag.
        rows = history_rows([5.0, 7.0, 10.0, 15.0, 15.0, 15.0, 15.0])
        assert trend(tmp_path, rows) == 0

    def test_series_split_by_preset_and_backend(self, tmp_path):
        # A preset or backend switch mid-history starts a new series —
        # the scale jump must not read as a slowdown.
        rows = (history_rows([10.0, 10.0]) +
                history_rows([40.0, 41.0], preset="full") +
                history_rows([90.0, 91.0], backend="reference"))
        verdicts = trend_verdicts(rows, window=4, step_ratio=1.02,
                                  max_slowdown=1.5, min_baseline_s=2.0)
        assert len(verdicts) == 3
        assert not any(v.flagged for v in verdicts)

    def test_missing_history_passes(self, tmp_path):
        assert run_trend(tmp_path / "absent.jsonl", window=4,
                         step_ratio=1.02, max_slowdown=1.5,
                         min_baseline_s=2.0) == 0

    def test_malformed_and_foreign_lines_skipped(self, tmp_path):
        path = write_history(tmp_path, history_rows([10.0, 11.0]))
        with open(path, "a") as fh:
            fh.write("{torn\n")
            fh.write(json.dumps({"schema": "other/v1", "name": "x"}) + "\n")
            fh.write(json.dumps({"schema": HISTORY_SCHEMA,
                                 "name": "bad"}) + "\n")
        rows = load_history(path)
        assert len(rows) == 2
        assert all(r["name"] == "fig5a" for r in rows)


class TestMain:
    def run_main(self, tmp_path, *extra):
        return main(["--baseline", str(tmp_path / "base"),
                     "--current", str(tmp_path / "cur"), *extra])

    def test_cli_roundtrip(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 11.0)
        assert self.run_main(tmp_path) == 0
        write_sidecar(tmp_path / "cur", "fig5a", 99.0)
        assert self.run_main(tmp_path, "--max-slowdown", "1.5") == 1

    def test_invalid_flags_rejected(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 10.0)
        assert self.run_main(tmp_path, "--max-slowdown", "0") == 2
        assert self.run_main(tmp_path, "--min-baseline-s", "-1") == 2

    def test_required_args(self):
        with pytest.raises(SystemExit):
            main([])

    def test_baseline_without_current_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--baseline", str(tmp_path)])

    def test_trend_alone(self, tmp_path):
        path = write_history(tmp_path, history_rows([10.0, 11.6, 13.5,
                                                     15.7]))
        assert main(["--trend", str(path)]) == 1
        assert main(["--trend", str(path), "--trend-window", "3",
                     "--max-slowdown", "2.0"]) == 0

    def test_trend_window_floor(self, tmp_path):
        path = write_history(tmp_path, history_rows([10.0]))
        assert main(["--trend", str(path), "--trend-window", "2"]) == 2

    def test_pairwise_and_trend_compose(self, tmp_path):
        # Pairwise passes (1.16x step) but the trend catches the creep.
        write_sidecar(tmp_path / "base", "fig5a", 13.5)
        write_sidecar(tmp_path / "cur", "fig5a", 15.7)
        path = write_history(tmp_path, history_rows([10.0, 11.6, 13.5,
                                                     15.7]))
        assert self.run_main(tmp_path) == 0
        assert self.run_main(tmp_path, "--trend", str(path)) == 1


class TestHistoryAppend:
    """benchmarks/_common.py writes rows the --trend gate reads back."""

    def _load_common(self, tmp_path, monkeypatch):
        import importlib.util
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "_bench_common_under_test", root / "benchmarks/_common.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        monkeypatch.setattr(module, "RESULTS_DIR", tmp_path)
        monkeypatch.setattr(module, "HISTORY_FILE",
                            tmp_path / "history.jsonl")
        return module

    def test_report_appends_history_row(self, tmp_path, monkeypatch,
                                        capsys):
        common = self._load_common(tmp_path, monkeypatch)
        common.report("fig5a", ["line one"], elapsed_s=10.0)
        common.report("fig5a", ["line two"], elapsed_s=11.0)
        capsys.readouterr()
        rows = load_history(tmp_path / "history.jsonl")
        assert [r["elapsed_s"] for r in rows] == [10.0, 11.0]
        row = rows[0]
        assert row["schema"] == HISTORY_SCHEMA
        assert row["name"] == "fig5a" and row["preset"] == "quick"
        assert set(row) >= {"backend", "jobs", "trials", "git_sha",
                            "created_unix"}
        # The rows feed straight into the trend gate.
        verdicts = trend_verdicts(rows, window=4, step_ratio=1.02,
                                  max_slowdown=1.5, min_baseline_s=2.0)
        assert len(verdicts) == 1 and not verdicts[0].flagged
