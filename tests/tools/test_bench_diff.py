"""The benchmark-regression gate (``python -m tools.bench_diff``)."""

import json

import pytest

from tools.bench_diff import (SIDECAR_SCHEMA, compare, load_sidecars, main,
                              run_diff)


def write_sidecar(directory, name, elapsed_s, schema=SIDECAR_SCHEMA,
                  backend=None):
    directory.mkdir(parents=True, exist_ok=True)
    payload = {"schema": schema, "name": name, "preset": "quick",
               "elapsed_s": elapsed_s}
    if backend is not None:
        payload["backend"] = backend
    (directory / f"{name}.json").write_text(json.dumps(payload))


def gate(tmp_path, **kwargs):
    args = dict(baseline_dir=tmp_path / "base", current_dir=tmp_path / "cur",
                max_slowdown=1.5, min_baseline_s=2.0,
                require_baseline=False)
    args.update(kwargs)
    return run_diff(**args)


class TestLoadSidecars:
    def test_parses_and_skips_foreign_json(self, tmp_path):
        write_sidecar(tmp_path, "fig5a", 10.0)
        (tmp_path / "notes.json").write_text(json.dumps({"foo": 1}))
        (tmp_path / "broken.json").write_text("{nope")
        write_sidecar(tmp_path, "other", 1.0, schema="something/else")
        entries = load_sidecars(tmp_path)
        assert set(entries) == {"fig5a"}
        assert entries["fig5a"].elapsed_s == 10.0

    def test_recurses(self, tmp_path):
        write_sidecar(tmp_path / "nested", "fig5a", 3.0)
        assert set(load_sidecars(tmp_path)) == {"fig5a"}


class TestCompare:
    def test_worst_first_and_flags(self, tmp_path):
        base = {"a": 10.0, "b": 10.0, "tiny": 0.5}
        cur = {"a": 12.0, "b": 20.0, "tiny": 50.0}
        write = lambda d, entries: [write_sidecar(d, n, s)  # noqa: E731
                                    for n, s in entries.items()]
        write(tmp_path / "base", base)
        write(tmp_path / "cur", cur)
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert [c.name for c in comps] == ["tiny", "b", "a"]
        by = {c.name: c for c in comps}
        assert by["a"].regressed is False
        assert by["b"].regressed is True and by["b"].ratio == 2.0
        # Sub-floor baselines never gate, however bad the ratio looks.
        assert by["tiny"].skipped_short and not by["tiny"].regressed


class TestBackendGating:
    def one_comparison(self, tmp_path, base_backend, cur_backend):
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend=base_backend)
        write_sidecar(tmp_path / "cur", "fig5a", 50.0,
                      backend=cur_backend)
        comps = compare(load_sidecars(tmp_path / "base"),
                        load_sidecars(tmp_path / "cur"),
                        max_slowdown=1.5, min_baseline_s=2.0)
        assert len(comps) == 1
        return comps[0]

    def test_backend_mismatch_never_regresses(self, tmp_path):
        c = self.one_comparison(tmp_path, "vectorized", "reference")
        assert c.skipped_backend and not c.regressed

    def test_same_backend_still_gates(self, tmp_path):
        c = self.one_comparison(tmp_path, "vectorized", "vectorized")
        assert not c.skipped_backend and c.regressed

    def test_untagged_sidecars_compare_with_anything(self, tmp_path):
        # Pre-upgrade baselines lack the backend field; they must keep
        # gating rather than silently skipping every comparison.
        for base_backend, cur_backend in ((None, "reference"),
                                          ("vectorized", None),
                                          (None, None)):
            c = self.one_comparison(tmp_path, base_backend, cur_backend)
            assert not c.skipped_backend and c.regressed

    def test_gate_passes_on_backend_switch(self, tmp_path, capsys):
        write_sidecar(tmp_path / "base", "fig5a", 10.0,
                      backend="vectorized")
        write_sidecar(tmp_path / "cur", "fig5a", 99.0,
                      backend="reference")
        assert gate(tmp_path) == 0
        assert "backend-skip" in capsys.readouterr().out


class TestGate:
    def test_ok_run_passes(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 12.0)
        assert gate(tmp_path) == 0

    def test_regression_fails(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 1

    def test_missing_baseline_passes_by_default(self, tmp_path):
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 0

    def test_missing_baseline_fails_when_required(self, tmp_path):
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path, require_baseline=True) == 2

    def test_empty_baseline_dir_passes_by_default(self, tmp_path):
        (tmp_path / "base").mkdir()
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path) == 0
        assert gate(tmp_path, require_baseline=True) == 2

    def test_missing_current_is_an_error(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        assert gate(tmp_path) == 2

    def test_new_and_removed_benches_do_not_gate(self, tmp_path, capsys):
        write_sidecar(tmp_path / "base", "gone", 10.0)
        write_sidecar(tmp_path / "cur", "fresh", 10.0)
        assert gate(tmp_path) == 0
        out = capsys.readouterr().out
        assert "fresh" in out and "gone" in out

    def test_raised_limit_tolerates_slowdown(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 20.0)
        assert gate(tmp_path, max_slowdown=3.0) == 0


class TestMain:
    def run_main(self, tmp_path, *extra):
        return main(["--baseline", str(tmp_path / "base"),
                     "--current", str(tmp_path / "cur"), *extra])

    def test_cli_roundtrip(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 11.0)
        assert self.run_main(tmp_path) == 0
        write_sidecar(tmp_path / "cur", "fig5a", 99.0)
        assert self.run_main(tmp_path, "--max-slowdown", "1.5") == 1

    def test_invalid_flags_rejected(self, tmp_path):
        write_sidecar(tmp_path / "base", "fig5a", 10.0)
        write_sidecar(tmp_path / "cur", "fig5a", 10.0)
        assert self.run_main(tmp_path, "--max-slowdown", "0") == 2
        assert self.run_main(tmp_path, "--min-baseline-s", "-1") == 2

    def test_required_args(self):
        with pytest.raises(SystemExit):
            main([])
