"""Bit slicing into SLC/MLC cells."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.bitslice import (assemble_weights, cell_significances,
                                  num_cells, slice_weights)


class TestNumCells:
    def test_slc(self):
        assert num_cells(8, 1) == 8

    def test_mlc2(self):
        assert num_cells(8, 2) == 4

    def test_ceil_division(self):
        assert num_cells(8, 3) == 3

    def test_invalid(self):
        with pytest.raises(ValueError):
            num_cells(0, 1)


class TestSliceAssemble:
    def test_known_slc_pattern(self):
        digits = slice_weights(np.array([0b10110101]), 8, 1)
        np.testing.assert_array_equal(digits[0], [1, 0, 1, 0, 1, 1, 0, 1])

    def test_known_mlc_pattern(self):
        digits = slice_weights(np.array([0b11100100]), 8, 2)
        np.testing.assert_array_equal(digits[0], [0, 1, 2, 3])

    def test_roundtrip_all_8bit_values(self):
        values = np.arange(256)
        for cell_bits in (1, 2, 4, 8):
            digits = slice_weights(values, 8, cell_bits)
            np.testing.assert_array_equal(
                assemble_weights(digits, cell_bits), values)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            slice_weights(np.array([256]), 8, 1)
        with pytest.raises(ValueError):
            slice_weights(np.array([-1]), 8, 1)

    def test_preserves_leading_shape(self):
        digits = slice_weights(np.zeros((3, 4), dtype=int), 8, 2)
        assert digits.shape == (3, 4, 4)

    def test_assemble_accepts_floats(self):
        """Noisy analog cell values reassemble linearly."""
        digits = slice_weights(np.array([0b1010]), 4, 1).astype(float)
        digits[0, 0] = 0.5    # a noisy '0' cell reading 0.5
        assert assemble_weights(digits, 1)[0] == 0b1010 + 0.5

    def test_significances(self):
        np.testing.assert_array_equal(cell_significances(8, 2), [1, 4, 16, 64])
        np.testing.assert_array_equal(cell_significances(4, 1), [1, 2, 4, 8])

    @settings(max_examples=50, deadline=None)
    @given(v=st.integers(0, 255), cell_bits=st.sampled_from([1, 2, 4]))
    def test_roundtrip_property(self, v, cell_bits):
        digits = slice_weights(np.array([v]), 8, cell_bits)
        assert assemble_weights(digits, cell_bits)[0] == v
        assert digits.max() <= (1 << cell_bits) - 1
