"""Affine weight quantization and the ISAAC shift."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quant.quantizer import AffineQuantizer, InputQuantizer
from repro.utils.rng import make_rng


class TestAffineQuantizer:
    def test_paper_example_shift(self):
        """Weights in [-120, 135] shift to [0, 255] (Section II)."""
        w = np.array([-120.0, 0.0, 135.0])
        qt = AffineQuantizer(8).quantize(w)
        assert qt.values.min() == 0
        assert qt.values.max() == 255
        assert qt.zero_point == round(120 / qt.scale)

    def test_roundtrip_error_bounded_by_half_step(self, rng):
        w = rng.normal(size=1000)
        qt = AffineQuantizer(8).quantize(w)
        np.testing.assert_allclose(qt.dequantize(), w,
                                   atol=qt.scale / 2 + 1e-12)

    def test_all_values_in_range(self, rng):
        qt = AffineQuantizer(8).quantize(rng.normal(size=(64, 64)))
        assert qt.values.min() >= 0 and qt.values.max() <= 255

    def test_qmax_property(self):
        assert AffineQuantizer(4).quantize(np.array([0.0, 1.0])).qmax == 15

    def test_positive_only_weights(self):
        qt = AffineQuantizer(8).quantize(np.array([1.0, 2.0, 3.0]))
        assert qt.zero_point <= 128
        np.testing.assert_allclose(qt.dequantize(),
                                   [1.0, 2.0, 3.0], atol=qt.scale)

    def test_negative_only_weights(self):
        w = np.array([-3.0, -2.0, -1.0])
        qt = AffineQuantizer(8).quantize(w)
        np.testing.assert_allclose(qt.dequantize(), w, atol=qt.scale)

    def test_constant_tensor(self):
        qt = AffineQuantizer(8).quantize(np.full(5, 2.0))
        assert np.all(qt.values >= 0) and np.all(qt.values <= 255)
        assert np.isfinite(qt.scale) and qt.scale > 0

    def test_zero_tensor(self):
        qt = AffineQuantizer(8).quantize(np.zeros(4))
        np.testing.assert_allclose(qt.dequantize(), np.zeros(4), atol=1e-9)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            AffineQuantizer(0)
        with pytest.raises(ValueError):
            AffineQuantizer(17)

    @settings(max_examples=30, deadline=None)
    @given(lo=st.floats(-100, 0), span=st.floats(0.1, 200),
           bits=st.integers(2, 10))
    def test_roundtrip_property(self, lo, span, bits):
        rng = make_rng(0)
        w = rng.uniform(lo, lo + span, size=50)
        qt = AffineQuantizer(bits).quantize(w)
        assert qt.values.min() >= 0
        assert qt.values.max() <= qt.qmax
        np.testing.assert_allclose(qt.dequantize(), w,
                                   atol=qt.scale * 0.51 + 1e-9)


class TestInputQuantizer:
    def test_calibrate_and_quantize(self):
        q = InputQuantizer(8)
        q.calibrate(np.array([0.0, 2.0]))
        assert q.quantize(np.array([2.0]))[0] == 255
        assert q.quantize(np.array([0.0]))[0] == 0

    def test_negative_clips_to_zero(self):
        q = InputQuantizer(8)
        q.calibrate(np.array([1.0]))
        assert q.quantize(np.array([-5.0]))[0] == 0

    def test_saturation_above_peak(self):
        q = InputQuantizer(8)
        q.calibrate(np.array([1.0]))
        assert q.quantize(np.array([100.0]))[0] == 255

    def test_apply_roundtrip_error(self, rng):
        q = InputQuantizer(8)
        x = rng.uniform(0, 1, size=500)
        q.calibrate(x)
        np.testing.assert_allclose(q.apply(x), x, atol=q.scale / 2 + 1e-12)

    def test_apply_idempotent(self, rng):
        q = InputQuantizer(8)
        x = rng.uniform(0, 1, size=100)
        q.calibrate(x)
        once = q.apply(x)
        np.testing.assert_array_equal(q.apply(once), once)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            InputQuantizer(0)
