"""Command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "vawo*" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "-m", "16", "128"]) == 0
        out = capsys.readouterr().out
        assert "m=16" in out and "m=128" in out
        assert "mm^2" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "--name", "table2"]) == 0
        out = capsys.readouterr().out
        assert "area" in out

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["deploy", "--method", "magic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestEndToEnd:
    """Exercise train + deploy on a cached quick workload.

    Uses the shared on-disk cache, so after the first bench/test run
    these are fast.
    """

    def test_train_then_deploy(self, capsys):
        assert main(["train", "--workload", "lenet", "--preset", "quick",
                     "--seed", "0"]) == 0
        assert "float accuracy" in capsys.readouterr().out
        assert main(["deploy", "--workload", "lenet", "--method", "vawo*",
                     "--sigma", "0.5", "--trials", "1", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "deployed:" in out
        assert "crossbars:" in out
