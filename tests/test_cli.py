"""Command-line interface."""

import pytest

from repro.cli import main


class TestParsing:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out and "vawo*" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "-m", "16", "128"]) == 0
        out = capsys.readouterr().out
        assert "m=16" in out and "m=128" in out
        assert "mm^2" in out

    def test_experiment_table2(self, capsys):
        assert main(["experiment", "--name", "table2"]) == 0
        out = capsys.readouterr().out
        assert "area" in out

    def test_backends_listing(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "compute backends" in out and "array backends" in out
        for name in ("accel", "reference", "vectorized", "sim"):
            assert name in out
        # The always-available default is marked active; accel reports
        # its resolved offload tier.
        assert "* vectorized" in out
        assert "accel" in out and "available (" in out

    def test_backend_flag_accepts_accel(self, capsys, monkeypatch):
        import os

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        try:
            with pytest.raises(SystemExit):  # bad name still dies at parse
                main(["deploy", "--backend", "warp-drive"])
            assert main(["experiment", "--name", "table2",
                         "--backend", "accel"]) == 0
            assert os.environ.get("REPRO_BACKEND") == "accel"
        finally:
            # main() exports --backend through the environment; undo it
            # so later tests see the ambient default again.
            os.environ.pop("REPRO_BACKEND", None)
        capsys.readouterr()

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["deploy", "--method", "magic"])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestEndToEnd:
    """Exercise train + deploy on a cached quick workload.

    Uses the shared on-disk cache, so after the first bench/test run
    these are fast.
    """

    def test_train_then_deploy(self, capsys):
        assert main(["train", "--workload", "lenet", "--preset", "quick",
                     "--seed", "0"]) == 0
        assert "float accuracy" in capsys.readouterr().out
        assert main(["deploy", "--workload", "lenet", "--method", "vawo*",
                     "--sigma", "0.5", "--trials", "1", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "deployed:" in out
        assert "crossbars:" in out


class TestProfile:
    """``--profile`` writes obs artifacts; ``obs summarize`` renders them."""

    def test_deploy_profile_then_summarize(self, tmp_path, capsys):
        import repro.obs as obs

        obs_dir = tmp_path / "obs"
        assert main(["deploy", "--workload", "lenet", "--method", "vawo*",
                     "--sigma", "0.5", "--trials", "1", "--seed", "0",
                     "--profile", "--obs-dir", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "obs:" in out
        manifest = obs_dir / "deploy-manifest.json"
        spans = obs_dir / "deploy-spans.jsonl"
        assert manifest.exists() and spans.exists()

        from repro.utils.serialization import load_json, read_jsonl
        doc = load_json(manifest)
        assert doc["schema"] == "repro.obs.manifest/v1"
        assert doc["command"] == "deploy"
        assert doc["extra"]["method"] == "vawo*"
        stage_names = set(doc["stages"])
        assert "deploy.program" in stage_names
        assert "deploy.vawo" in stage_names
        assert "deploy.eval" in stage_names
        assert doc["metrics"]["counters"]["vawo.calls"] >= 1
        assert len(read_jsonl(spans)) == doc["n_spans"] > 0
        # The run left the process-wide state clean for whoever is next.
        assert obs.trace.TRACER.records() == []

        assert main(["obs", "summarize", str(manifest)]) == 0
        table = capsys.readouterr().out
        assert "run manifest — deploy" in table
        assert "deploy.vawo" in table and "stage" in table

    def test_summarize_missing_manifest_exits_2(self, tmp_path, capsys):
        missing = tmp_path / "nope-manifest.json"
        assert main(["obs", "summarize", str(missing)]) == 2
        assert "repro obs:" in capsys.readouterr().out


class TestObsToolkit:
    """Profiled --jobs 2 deploy: one rooted trace, percentile metrics,
    and the critical-path/flame/diff subcommands over the artifact."""

    @pytest.fixture(scope="class")
    def obs_dir(self, tmp_path_factory):
        obs_dir = tmp_path_factory.mktemp("obs-par")
        code = main(["deploy", "--workload", "lenet", "--method", "vawo*",
                     "--sigma", "0.5", "--trials", "2", "--jobs", "2",
                     "--seed", "0", "--profile", "--obs-dir", str(obs_dir)])
        assert code == 0
        return obs_dir

    def test_spans_form_single_rooted_tree(self, obs_dir):
        import json

        spans = [json.loads(line)
                 for line in open(obs_dir / "deploy-spans.jsonl")]
        ids = {s["id"] for s in spans}
        roots = [s for s in spans if s.get("parent_id") not in ids]
        assert len(roots) == 1 and roots[0]["name"] == "run.deploy"
        assert len(ids) == len(spans)
        # Worker subtrees joined the parent's trace.
        trace_ids = {s["trace_id"] for s in spans}
        assert len(trace_ids) == 1
        assert len({s["pid"] for s in spans}) >= 2

    def test_manifest_has_trial_wall_percentiles(self, obs_dir):
        from repro.utils.serialization import load_json

        doc = load_json(obs_dir / "deploy-manifest.json")
        wall = doc["metrics"]["histograms"]["trial.wall_s"]
        assert wall["count"] == 2
        for key in ("p50", "p95", "p99"):
            assert wall[key] is not None and wall[key] > 0

    def test_critical_path_subcommand(self, obs_dir, capsys):
        assert main(["obs", "critical-path", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "critical path — run.deploy" in out
        assert "hop(s)" in out and "self" in out

    def test_flame_subcommand_writes_folded_stacks(self, obs_dir,
                                                   tmp_path, capsys):
        folded = tmp_path / "deploy.folded"
        assert main(["obs", "flame", str(obs_dir),
                     "--out", str(folded)]) == 0
        assert "folded stacks" in capsys.readouterr().out
        lines = folded.read_text().splitlines()
        assert lines
        for line in lines:
            stack, value = line.rsplit(" ", 1)
            assert stack.startswith("run.deploy")
            assert int(value) >= 0

    def test_flame_subcommand_stdout(self, obs_dir, capsys):
        assert main(["obs", "flame", str(obs_dir)]) == 0
        assert "run.deploy" in capsys.readouterr().out

    def test_diff_subcommand_self_comparison(self, obs_dir, capsys):
        assert main(["obs", "diff", str(obs_dir), str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "trial.wall_s" in out
        assert "p99" in out

    def test_summarize_shows_percentiles(self, obs_dir, capsys):
        assert main(["obs", "summarize", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "trial.wall_s (hist)" in out and "p95=" in out


class TestServe:
    """`repro serve` end to end: loopback requests, drain, obs artifacts."""

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--method", "magic"])

    def test_serve_loopback_roundtrip(self, tmp_path, capsys):
        import threading

        from repro.serve import (ServeClient, read_endpoint_file,
                                 wait_for_server)

        port_file = tmp_path / "serve.port"
        obs_dir = tmp_path / "obs"
        outcome = {}

        def drive():
            try:
                host, port = read_endpoint_file(port_file, timeout_s=600)
                wait_for_server(host, port, timeout_s=120)
                with ServeClient(host, port) as client:
                    reply = client.infer(indices=[0, 1, 2])
                    outcome["predictions"] = reply["predictions"]
                    outcome["labels"] = reply["labels"]
                    outcome["stats"] = client.stats()
                    client.shutdown()
            except Exception as exc:  # noqa: BLE001 — surfaced via outcome
                outcome["error"] = exc

        driver = threading.Thread(target=drive)
        driver.start()
        try:
            code = main(["serve", "--workload", "lenet", "--method",
                         "vawo*", "--sigma", "0.5", "--seed", "0",
                         "--port", "0", "--port-file", str(port_file),
                         "--max-batch", "4", "--profile",
                         "--obs-dir", str(obs_dir)])
        finally:
            driver.join(timeout=120)
        assert "error" not in outcome, outcome.get("error")
        assert code == 0
        assert len(outcome["predictions"]) == 3
        assert outcome["stats"]["requests"] >= 1

        out = capsys.readouterr().out
        assert "listening:" in out
        assert "drained:" in out
        host, _, port = port_file.read_text().strip().rpartition(":")
        assert host == "127.0.0.1" and int(port) > 0

        manifest = obs_dir / "serve-manifest.json"
        assert manifest.exists()
        from repro.utils.serialization import load_json
        doc = load_json(manifest)
        assert doc["command"] == "serve"
        assert doc["extra"]["requests"] >= 1
        assert doc["metrics"]["counters"]["serve.requests"] >= 1
        hist = doc["metrics"]["histograms"]["serve.batch_size"]
        assert hist["count"] >= 1

        # the serve obs dir resolves in the analysis toolkit
        assert main(["obs", "summarize", str(obs_dir)]) == 0
        assert "run manifest — serve" in capsys.readouterr().out
        assert main(["obs", "critical-path", str(obs_dir)]) == 0
        assert "critical path — run.serve" in capsys.readouterr().out
