"""Crossbar tiling and counting."""

import numpy as np
import pytest

from repro.xbar.mapper import CrossbarMapper, layer_matrix_shape


class TestMapper:
    def test_paper_weight_cols(self):
        """8-bit weights on 2-bit MLCs: l = 32 weight columns (Eq. 9 text)."""
        assert CrossbarMapper(128, 4).weight_cols_per_xbar == 32

    def test_single_tile(self):
        assert CrossbarMapper(128, 4).count(100, 30) == 1

    def test_row_tiling(self):
        assert CrossbarMapper(128, 4).count(300, 30) == 3

    def test_col_tiling(self):
        assert CrossbarMapper(128, 4).count(100, 70) == 3

    def test_grid_tiling(self):
        assert CrossbarMapper(128, 4).count(200, 60) == 4

    def test_tiles_cover_matrix(self):
        tiles = CrossbarMapper(128, 4).tiles(200, 60)
        covered = np.zeros((200, 60), dtype=int)
        for t in tiles:
            covered[t.row_start:t.row_stop, t.col_start:t.col_stop] += 1
        np.testing.assert_array_equal(covered, np.ones((200, 60)))

    def test_tile_dims_within_limits(self):
        mapper = CrossbarMapper(128, 4)
        for t in mapper.tiles(500, 100):
            assert t.rows <= 128
            assert t.weight_cols <= 32

    def test_count_model(self):
        mapper = CrossbarMapper(128, 4)
        shapes = [(100, 30), (300, 30)]
        assert mapper.count_model(shapes) == 1 + 3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            CrossbarMapper(128, 200)
        with pytest.raises(ValueError):
            CrossbarMapper(0, 1)

    def test_invalid_matrix(self):
        with pytest.raises(ValueError):
            CrossbarMapper().tiles(0, 5)


class TestLayerMatrixShape:
    def test_linear(self):
        assert layer_matrix_shape((120, 400)) == (400, 120)

    def test_conv(self):
        assert layer_matrix_shape((16, 6, 5, 5)) == (150, 16)

    def test_invalid(self):
        with pytest.raises(ValueError):
            layer_matrix_shape((3,))
