"""One-/two-crossbar schemes and the Table III normalisation."""

import numpy as np
import pytest

from repro.xbar.arch import (OneCrossbarScheme, TwoCrossbarScheme,
                             normalized_crossbar_number)


class TestOneCrossbar:
    def test_devices_per_weight(self):
        assert OneCrossbarScheme(cells_per_weight=4).devices_per_weight() == 4

    def test_cost(self):
        cost = OneCrossbarScheme(4).cost(100, 30)
        assert cost.devices_per_weight == 4
        assert cost.crossbars_per_matrix == 1

    def test_split_identity(self):
        q = np.arange(5)
        np.testing.assert_array_equal(OneCrossbarScheme(4).split(q), q)


class TestTwoCrossbar:
    def test_devices_per_weight_doubles(self):
        assert TwoCrossbarScheme(5).devices_per_weight() == 10

    def test_cost_doubles_crossbars(self):
        assert TwoCrossbarScheme(4).cost(100, 30).crossbars_per_matrix == 2

    def test_split_signs(self):
        pos, neg = TwoCrossbarScheme(4).split(np.array([3, -2, 0]))
        np.testing.assert_array_equal(pos, [3, 0, 0])
        np.testing.assert_array_equal(neg, [0, 2, 0])

    def test_split_combine_roundtrip(self, rng):
        q = rng.integers(-100, 100, size=50)
        scheme = TwoCrossbarScheme(4)
        pos, neg = scheme.split(q)
        np.testing.assert_array_equal(scheme.combine(pos, neg), q)


class TestNormalisation:
    def test_paper_table3_values(self):
        """DVA: 8 SLC -> 2.0; PM: 10 MLC -> 2.5; ours: 4 MLC -> 1.0."""
        assert normalized_crossbar_number(8, 4) == 2.0
        assert normalized_crossbar_number(10, 4) == 2.5
        assert normalized_crossbar_number(4, 4) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            normalized_crossbar_number(0, 4)
