"""Bit-accurate engine: the central equivalence guarantees."""

import numpy as np
import pytest

from repro.core.offsets import OffsetPlan
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.xbar.adc import ADC
from repro.xbar.engine import CrossbarEngine
from repro.utils.rng import make_rng


def make_engine(rows=16, cols=3, m=8, cell=SLC, sigma=0.5, seed=0,
                registers=None, complement=None, adc=None,
                input_scale=1 / 255, weight_scale=0.01, zero_point=128):
    rng = make_rng(seed)
    device = DeviceModel(cell, VariationModel(sigma), n_bits=8)
    plan = OffsetPlan(rows, cols, m)
    values = rng.integers(0, 256, size=(rows, cols))
    cells = device.program_cells(values, rng)
    if registers is None:
        registers = np.zeros((plan.n_groups, cols))
    if complement is None:
        complement = np.zeros((plan.n_groups, cols), dtype=bool)
    return CrossbarEngine(
        cells=cells, plan=plan, registers=registers, complement=complement,
        cell=cell, weight_bits=8, input_bits=8, weight_scale=weight_scale,
        weight_zero_point=zero_point, input_scale=input_scale, adc=adc)


class TestEquivalence:
    """With an ideal ADC the bit-serial pipeline must equal the float path."""

    @pytest.mark.parametrize("cell", [SLC, MLC2])
    @pytest.mark.parametrize("m", [4, 8, 16])
    def test_matches_effective_weights(self, cell, m):
        engine = make_engine(cell=cell, m=m, seed=1)
        rng = make_rng(2)
        x = rng.uniform(0, 1, size=(5, 16))
        got = engine.forward(x)
        xq = engine.quantize_inputs(x) * engine.input_scale
        expected = xq @ engine.effective_weights()
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)

    def test_with_offsets(self):
        rng = make_rng(3)
        regs = rng.integers(-50, 50, size=(2, 3)).astype(float)
        engine = make_engine(registers=regs, seed=4)
        x = rng.uniform(0, 1, size=(4, 16))
        xq = engine.quantize_inputs(x) * engine.input_scale
        np.testing.assert_allclose(engine.forward(x),
                                   xq @ engine.effective_weights(),
                                   rtol=1e-9, atol=1e-9)

    def test_with_complement_groups(self):
        rng = make_rng(5)
        comp = rng.random((2, 3)) > 0.5
        regs = rng.integers(-20, 20, size=(2, 3)).astype(float)
        engine = make_engine(registers=regs, complement=comp, seed=6)
        x = rng.uniform(0, 1, size=(4, 16))
        xq = engine.quantize_inputs(x) * engine.input_scale
        np.testing.assert_allclose(engine.forward(x),
                                   xq @ engine.effective_weights(),
                                   rtol=1e-9, atol=1e-9)

    def test_partial_last_group(self):
        engine = make_engine(rows=13, m=8, seed=7)
        x = make_rng(8).uniform(0, 1, size=(3, 13))
        xq = engine.quantize_inputs(x) * engine.input_scale
        np.testing.assert_allclose(engine.forward(x),
                                   xq @ engine.effective_weights(),
                                   rtol=1e-9, atol=1e-9)


class TestOffsetPath:
    def test_offset_adds_group_sum_times_b(self):
        """Eq. 7: the offset contributes b_g * sum(x in group)."""
        base = make_engine(seed=9)
        regs = np.zeros((2, 3))
        regs[0, 1] = 10.0
        shifted = CrossbarEngine(
            cells=base.cells, plan=base.plan, registers=regs,
            complement=base.complement, cell=base.cell,
            weight_scale=base.weight_scale,
            weight_zero_point=base.weight_zero_point,
            input_scale=base.input_scale)
        x = make_rng(10).uniform(0, 1, size=(2, 16))
        xq = base.quantize_inputs(x).astype(float)
        delta = shifted.forward(x) - base.forward(x)
        expected = np.zeros_like(delta)
        expected[:, 1] = 10.0 * xq[:, :8].sum(axis=1) \
            * base.input_scale * base.weight_scale
        np.testing.assert_allclose(delta, expected, atol=1e-9)


class TestADCEffects:
    def test_finite_adc_changes_output(self):
        coarse = ADC(bits=2, full_scale=8.0)
        a = make_engine(seed=11, adc=None)
        b = CrossbarEngine(
            cells=a.cells, plan=a.plan, registers=a.registers,
            complement=a.complement, cell=a.cell,
            weight_scale=a.weight_scale,
            weight_zero_point=a.weight_zero_point,
            input_scale=a.input_scale, adc=coarse)
        x = make_rng(12).uniform(0, 1, size=(2, 16))
        assert not np.allclose(a.forward(x), b.forward(x))

    def test_high_resolution_adc_near_ideal(self):
        a = make_engine(seed=13)
        fine = ADC(bits=16, full_scale=float(a.cells.sum()))
        b = CrossbarEngine(
            cells=a.cells, plan=a.plan, registers=a.registers,
            complement=a.complement, cell=a.cell,
            weight_scale=a.weight_scale,
            weight_zero_point=a.weight_zero_point,
            input_scale=a.input_scale, adc=fine)
        x = make_rng(14).uniform(0, 1, size=(2, 16))
        np.testing.assert_allclose(a.forward(x), b.forward(x), rtol=0.05,
                                   atol=0.05)


class TestValidation:
    def test_shape_mismatches_rejected(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            CrossbarEngine(
                cells=engine.cells, plan=OffsetPlan(8, 3, 4),
                registers=engine.registers, complement=engine.complement,
                cell=engine.cell)

    def test_register_shape_checked(self):
        engine = make_engine()
        with pytest.raises(ValueError):
            CrossbarEngine(
                cells=engine.cells, plan=engine.plan,
                registers=np.zeros((1, 1)), complement=engine.complement,
                cell=engine.cell)
