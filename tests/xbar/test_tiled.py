"""Tiled multi-crossbar execution."""

import numpy as np
import pytest

from repro.core.offsets import OffsetPlan
from repro.device.cell import MLC2, SLC
from repro.device.lut import DeviceModel
from repro.device.variation import VariationModel
from repro.xbar.engine import CrossbarEngine
from repro.xbar.mapper import CrossbarMapper
from repro.xbar.tiled import TiledCrossbarEngine
from repro.utils.rng import make_rng


def build(rows=300, cols=40, m=16, cell=MLC2, xbar_size=128, seed=0):
    rng = make_rng(seed)
    device = DeviceModel(cell, VariationModel(0.4), n_bits=8)
    plan = OffsetPlan(rows, cols, m)
    values = rng.integers(0, 256, size=(rows, cols))
    cells = device.program_cells(values, rng)
    registers = rng.integers(-20, 20, size=(plan.n_groups, cols)).astype(float)
    complement = rng.random((plan.n_groups, cols)) > 0.5
    common = dict(cells=cells, plan=plan, registers=registers,
                  complement=complement, cell=cell,
                  weight_scale=0.01, weight_zero_point=128,
                  input_scale=1 / 255)
    mono = CrossbarEngine(**common)
    tiled = TiledCrossbarEngine(
        mapper=CrossbarMapper(size=xbar_size,
                              cells_per_weight=cells.shape[-1]), **common)
    return mono, tiled, rng


class TestTiledEquivalence:
    def test_matches_monolithic_engine(self):
        mono, tiled, rng = build()
        x = rng.uniform(0, 1, size=(4, 300))
        np.testing.assert_allclose(tiled.forward(x), mono.forward(x),
                                   rtol=1e-9, atol=1e-9)

    def test_crossbar_count_matches_mapper(self):
        _, tiled, _ = build(rows=300, cols=40, cell=MLC2)
        # MLC2: 4 cells/weight -> 32 weight cols per crossbar.
        # rows 300 -> 3 row tiles; cols 40 -> 2 col tiles. 6 crossbars.
        assert tiled.crossbar_count == 6

    def test_single_tile_case(self):
        mono, tiled, rng = build(rows=64, cols=16)
        assert tiled.crossbar_count == 1
        x = rng.uniform(0, 1, size=(2, 64))
        np.testing.assert_allclose(tiled.forward(x), mono.forward(x),
                                   rtol=1e-9)

    def test_slc_wide_matrix(self):
        mono, tiled, rng = build(rows=200, cols=20, cell=SLC)
        x = rng.uniform(0, 1, size=(3, 200))
        np.testing.assert_allclose(tiled.forward(x), mono.forward(x),
                                   rtol=1e-9, atol=1e-9)

    def test_granularity_must_divide_tile(self):
        with pytest.raises(ValueError):
            build(rows=300, cols=8, m=48, xbar_size=128)

    def test_rows_not_multiple_of_tile(self):
        mono, tiled, rng = build(rows=130, cols=8)
        x = rng.uniform(0, 1, size=(2, 130))
        np.testing.assert_allclose(tiled.forward(x), mono.forward(x),
                                   rtol=1e-9, atol=1e-9)
