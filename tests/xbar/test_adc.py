"""ADC model."""

import numpy as np
import pytest

from repro.xbar.adc import ADC


class TestADC:
    def test_ideal_is_identity(self, rng):
        x = rng.normal(size=20)
        np.testing.assert_array_equal(ADC().convert(x), x)

    def test_quantizer_needs_full_scale(self):
        with pytest.raises(ValueError):
            ADC(bits=8)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            ADC(bits=0, full_scale=1.0)

    def test_step(self):
        adc = ADC(bits=3, full_scale=7.0)
        np.testing.assert_allclose(adc.step, 1.0)

    def test_ideal_has_no_step(self):
        with pytest.raises(ValueError):
            _ = ADC().step

    def test_rounding_to_grid(self):
        adc = ADC(bits=3, full_scale=7.0)
        np.testing.assert_allclose(adc.convert(np.array([2.4, 2.6])),
                                   [2.0, 3.0])

    def test_saturation(self):
        adc = ADC(bits=4, full_scale=10.0)
        assert adc.convert(np.array([99.0]))[0] == 10.0

    def test_clips_negative(self):
        adc = ADC(bits=4, full_scale=10.0)
        assert adc.convert(np.array([-3.0]))[0] == 0.0

    def test_error_bounded_by_half_step(self, rng):
        adc = ADC(bits=6, full_scale=1.0)
        x = rng.uniform(0, 1, size=1000)
        err = np.abs(adc.convert(x) - x)
        assert err.max() <= adc.step / 2 + 1e-12
