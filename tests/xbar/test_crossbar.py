"""Physical crossbar array."""

import numpy as np
import pytest

from repro.xbar.crossbar import Crossbar


class TestCrossbar:
    def test_write_and_vmm(self, rng):
        xb = Crossbar(4, 3)
        g = rng.uniform(0, 1, size=(4, 3))
        xb.write(g)
        x = rng.uniform(0, 1, size=4)
        np.testing.assert_allclose(xb.vmm(x), x @ g)

    def test_vmm_batched(self, rng):
        xb = Crossbar(5, 2)
        g = rng.uniform(size=(5, 2))
        xb.write(g)
        x = rng.uniform(size=(7, 5))
        np.testing.assert_allclose(xb.vmm(x), x @ g)

    def test_write_shape_check(self):
        with pytest.raises(ValueError):
            Crossbar(4, 4).write(np.ones((3, 4)))

    def test_negative_conductance_rejected(self):
        with pytest.raises(ValueError):
            Crossbar(2, 2).write(-np.ones((2, 2)))

    def test_write_region(self, rng):
        xb = Crossbar(8, 8)
        patch = rng.uniform(size=(3, 2))
        xb.write_region(patch, row0=2, col0=5)
        np.testing.assert_array_equal(xb.conductances[2:5, 5:7], patch)
        assert xb.conductances[0, 0] == 0

    def test_write_region_bounds(self):
        with pytest.raises(ValueError):
            Crossbar(4, 4).write_region(np.ones((3, 3)), row0=2, col0=2)

    def test_write_region_negative_origin(self):
        xb = Crossbar(4, 4)
        with pytest.raises(ValueError, match="does not fit"):
            xb.write_region(np.ones((2, 2)), row0=-1, col0=0)
        with pytest.raises(ValueError, match="does not fit"):
            xb.write_region(np.ones((2, 2)), row0=0, col0=-2)

    def test_write_region_oversized(self):
        with pytest.raises(ValueError, match="does not fit"):
            Crossbar(4, 4).write_region(np.ones((5, 2)))
        with pytest.raises(ValueError, match="does not fit"):
            Crossbar(4, 4).write_region(np.ones((2, 5)))

    def test_write_region_negative_conductance(self):
        xb = Crossbar(4, 4)
        with pytest.raises(ValueError, match="non-negative"):
            xb.write_region(-np.ones((2, 2)), row0=1, col0=1)
        # a rejected write leaves the array untouched
        np.testing.assert_array_equal(xb.conductances, np.zeros((4, 4)))

    def test_active_rows_mask(self, rng):
        xb = Crossbar(6, 2)
        g = rng.uniform(size=(6, 2))
        xb.write(g)
        x = np.ones(6)
        out = xb.vmm(x, active_rows=np.array([0, 1]))
        np.testing.assert_allclose(out, g[:2].sum(axis=0))

    def test_boolean_mask_matches_index_form(self, rng):
        """The boolean fast path equals the fancy-index path bitwise."""
        xb = Crossbar(6, 3)
        xb.write(rng.uniform(size=(6, 3)))
        x = rng.uniform(size=(4, 6))
        indices = np.array([0, 2, 5])
        mask = np.zeros(6, dtype=bool)
        mask[indices] = True
        np.testing.assert_array_equal(xb.vmm(x, active_rows=mask),
                                      xb.vmm(x, active_rows=indices))

    def test_boolean_mask_all_false_and_all_true(self, rng):
        xb = Crossbar(5, 2)
        g = rng.uniform(size=(5, 2))
        xb.write(g)
        x = rng.uniform(size=5)
        np.testing.assert_array_equal(
            xb.vmm(x, active_rows=np.zeros(5, dtype=bool)), np.zeros(2))
        np.testing.assert_allclose(
            xb.vmm(x, active_rows=np.ones(5, dtype=bool)), xb.vmm(x))

    def test_boolean_mask_wrong_shape(self):
        xb = Crossbar(5, 2)
        xb.write(np.ones((5, 2)))
        with pytest.raises(ValueError, match="boolean row mask"):
            xb.vmm(np.ones(5), active_rows=np.ones(4, dtype=bool))
        with pytest.raises(ValueError, match="boolean row mask"):
            xb.vmm(np.ones(5), active_rows=np.ones((5, 1), dtype=bool))

    def test_vmm_grouped_sums_to_full(self, rng):
        """Partial group currents must sum to the full VMM result."""
        xb = Crossbar(8, 3)
        g = rng.uniform(size=(8, 3))
        xb.write(g)
        x = rng.uniform(size=(2, 8))
        grouped = xb.vmm_grouped(x, group_rows=4)
        assert grouped.shape == (2, 2, 3)
        np.testing.assert_allclose(grouped.sum(axis=1), xb.vmm(x))

    def test_vmm_grouped_partial_last_group(self, rng):
        xb = Crossbar(10, 2)
        xb.write(rng.uniform(size=(10, 2)))
        grouped = xb.vmm_grouped(np.ones(10), group_rows=4)
        assert grouped.shape == (3, 2)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            Crossbar(0, 4)
