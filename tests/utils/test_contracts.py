"""Runtime shape contracts (:mod:`repro.utils.contracts`)."""

import numpy as np
import pytest

from repro.utils.contracts import (ShapeContractError, check_shapes,
                                   debug_enabled, parse_spec)


class TestParseSpec:
    def test_args_and_return(self):
        groups, ret = parse_spec("(n,m),(m,)->(n,)")
        assert groups == [["n", "m"], ["m"]]
        assert ret == ["n"]

    def test_no_return_group(self):
        groups, ret = parse_spec("(r,c)")
        assert groups == [["r", "c"]]
        assert ret is None

    def test_literals_wildcards_and_skip(self):
        groups, ret = parse_spec("(n,3),(_,m),_->(_,)")
        assert groups == [["n", 3], ["_", "m"], None]
        assert ret == ["_"]

    def test_scalar_group(self):
        groups, _ = parse_spec("()")
        assert groups == [[]]

    def test_leading_ellipsis(self):
        groups, ret = parse_spec("(...,r)->(...,c)")
        assert groups == [["...", "r"]]
        assert ret == ["...", "c"]

    def test_non_leading_ellipsis_rejected(self):
        with pytest.raises(ValueError, match="leading"):
            parse_spec("(r,...)")

    def test_two_return_groups_rejected(self):
        with pytest.raises(ValueError, match="return group"):
            parse_spec("(n,)->(n,),(n,)")

    def test_bad_token_rejected(self):
        with pytest.raises(ValueError):
            parse_spec("(n+1,)")


class TestCheckShapes:
    def test_matching_call_passes(self):
        @check_shapes("(n,m),(m,)->(n,)", enabled=True)
        def matvec(a, b):
            return a @ b

        out = matvec(np.ones((3, 4)), np.ones(4))
        assert out.shape == (3,)

    def test_dim_mismatch_raises(self):
        @check_shapes("(n,m),(m,)", enabled=True)
        def matvec(a, b):
            return a @ b

        with pytest.raises(ShapeContractError, match="already bound"):
            matvec(np.ones((3, 4)), np.ones(5))

    def test_rank_mismatch_raises(self):
        @check_shapes("(n,m)", enabled=True)
        def f(a):
            return a

        with pytest.raises(ShapeContractError, match="expected 2-D"):
            f(np.ones(3))

    def test_literal_dim_enforced(self):
        @check_shapes("(n,3)", enabled=True)
        def f(a):
            return a

        f(np.ones((5, 3)))
        with pytest.raises(ShapeContractError, match="expected to be 3"):
            f(np.ones((5, 4)))

    def test_return_contract_enforced(self):
        @check_shapes("(n,)->(n,)", enabled=True)
        def bad(a):
            return np.concatenate([a, a])

        with pytest.raises(ShapeContractError, match="return value"):
            bad(np.ones(2))

    def test_ellipsis_absorbs_batch_dims(self):
        @check_shapes("(...,r)->(...,c)", enabled=True)
        def vmm(x):
            return x @ np.ones((4, 2))

        assert vmm(np.ones(4)).shape == (2,)
        assert vmm(np.ones((7, 4))).shape == (7, 2)
        assert vmm(np.ones((2, 5, 4))).shape == (2, 5, 2)

    def test_ellipsis_still_checks_trailing_dim(self):
        @check_shapes("(...,4)", enabled=True)
        def f(x):
            return x

        with pytest.raises(ShapeContractError):
            f(np.ones((3, 5)))

    def test_skipped_argument_ignored(self):
        @check_shapes("_,(n,)", enabled=True)
        def f(config, a):
            return a

        f({"anything": 1}, np.ones(3))

    def test_none_argument_skipped(self):
        @check_shapes("(n,),(n,)", enabled=True)
        def f(a, b=None):
            return a

        f(np.ones(3))  # b is None: its group is not checked

    def test_self_is_skipped(self):
        class C:
            @check_shapes("(n,m)", enabled=True)
            def f(self, a):
                return a

        C().f(np.ones((2, 2)))

    def test_arg_names_subset(self):
        @check_shapes("(n,)", arg_names=["b"], enabled=True)
        def f(a, b):
            return b

        f("not-an-array", np.ones(3))
        with pytest.raises(ShapeContractError):
            f("not-an-array", np.ones((3, 3)))

    def test_disabled_returns_function_unchanged(self):
        def raw(a):
            return a

        decorated = check_shapes("(n,m)", enabled=False)(raw)
        assert decorated is raw  # zero-cost: no wrapper at all
        decorated(np.ones(3))    # and no checking either

    def test_spec_validated_even_when_disabled(self):
        with pytest.raises(ValueError):
            check_shapes("(n,...)", enabled=False)

    def test_env_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG", "1")
        assert debug_enabled()

        @check_shapes("(n,)")
        def f(a):
            return a

        with pytest.raises(ShapeContractError):
            f(np.ones((2, 2)))

        monkeypatch.setenv("REPRO_DEBUG", "0")
        assert not debug_enabled()

        def raw(a):
            return a

        assert check_shapes("(n,)")(raw) is raw

    def test_debug_enabled_truthy_spellings(self):
        for value in ("1", "true", "YES", " on "):
            assert debug_enabled(env=value)
        for value in ("", "0", "false", "off", "junk"):
            assert not debug_enabled(env=value)
