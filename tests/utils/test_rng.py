"""RNG helpers."""

import numpy as np
import pytest

from repro.utils.rng import derive_seed, make_rng, spawn_rngs


class TestMakeRng:
    def test_from_int_deterministic(self):
        assert make_rng(42).integers(0, 1000) == make_rng(42).integers(0, 1000)

    def test_passthrough_generator(self):
        # The one sanctioned place to call default_rng directly: testing
        # that make_rng passes an existing generator through untouched.
        g = np.random.default_rng(0)  # repro-lint: disable=R1
        assert make_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_independent(self):
        a, b = spawn_rngs(0, 2)
        assert not np.array_equal(a.normal(size=10), b.normal(size=10))

    def test_reproducible(self):
        xs = [r.integers(0, 10**9) for r in spawn_rngs(7, 3)]
        ys = [r.integers(0, 10**9) for r in spawn_rngs(7, 3)]
        assert xs == ys

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


def test_derive_seed_range():
    s = derive_seed(make_rng(0))
    assert 0 <= s < 2 ** 63
