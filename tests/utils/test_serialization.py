"""Array save/load helpers."""

import numpy as np
import pytest

from repro.utils.serialization import (SerializationError, load_arrays,
                                       load_metadata, normalize_archive_path,
                                       save_arrays, sidecar_path)
from repro.utils.rng import make_rng


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(3, 4)), "b": np.arange(5)}
        path = tmp_path / "state"
        save_arrays(str(path), arrays)
        loaded = load_arrays(str(path))
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_metadata_sidecar(self, tmp_path):
        path = tmp_path / "state"
        save_arrays(str(path), {"x": np.ones(2)}, metadata={"epoch": 3})
        assert load_metadata(str(path))["epoch"] == 3

    def test_npz_suffix_added(self, tmp_path):
        save_arrays(str(tmp_path / "model"), {"x": np.ones(1)})
        assert (tmp_path / "model.npz").exists()

    def test_creates_parent_dirs(self, tmp_path):
        save_arrays(str(tmp_path / "deep" / "nested" / "m"), {"x": np.ones(1)})
        assert (tmp_path / "deep" / "nested" / "m.npz").exists()

    def test_roundtrip_with_explicit_npz_suffix(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(2, 2))}
        save_arrays(str(tmp_path / "state.npz"), arrays)
        assert (tmp_path / "state.npz").exists()
        assert not (tmp_path / "state.npz.npz").exists()
        loaded = load_arrays(str(tmp_path / "state.npz"))
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_load_without_suffix_finds_saved_file(self, tmp_path):
        # The historical failure mode: np.savez appends ".npz" on save
        # but np.load does not on load, so a suffix-less path round-trip
        # broke. Both sides must normalise identically.
        save_arrays(str(tmp_path / "run"), {"x": np.arange(3)})
        loaded = load_arrays(str(tmp_path / "run"))
        np.testing.assert_array_equal(loaded["x"], np.arange(3))

    def test_dotted_stem_is_not_truncated(self, tmp_path):
        # Path.with_suffix would corrupt "run-dva0.5" into "run-dva0.npz";
        # the helpers must append instead.
        save_arrays(str(tmp_path / "run-dva0.5"), {"x": np.ones(1)})
        assert (tmp_path / "run-dva0.5.npz").exists()
        loaded = load_arrays(str(tmp_path / "run-dva0.5"))
        np.testing.assert_array_equal(loaded["x"], np.ones(1))

    def test_corrupt_archive_raises_serialization_error(self, tmp_path):
        bad = tmp_path / "broken.npz"
        bad.write_bytes(b"PK\x03\x04 truncated garbage")
        with pytest.raises(SerializationError, match="delete it"):
            load_arrays(str(bad))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_arrays(str(tmp_path / "nope"))

    def test_normalize_archive_path(self, tmp_path):
        assert normalize_archive_path(tmp_path / "a") == tmp_path / "a.npz"
        assert (normalize_archive_path(tmp_path / "a.npz")
                == tmp_path / "a.npz")
        assert (normalize_archive_path(tmp_path / "a.b")
                == tmp_path / "a.b.npz")

    def test_sidecar_path(self, tmp_path):
        assert sidecar_path(tmp_path / "a") == tmp_path / "a.json"
        assert sidecar_path(tmp_path / "a.npz") == tmp_path / "a.json"

    def test_metadata_accepts_json_path(self, tmp_path):
        save_arrays(str(tmp_path / "m"), {"x": np.ones(1)},
                    metadata={"tag": "v1"})
        assert load_metadata(str(tmp_path / "m.json"))["tag"] == "v1"

    def test_model_state_roundtrip(self, tmp_path, trained_tiny_mlp):
        from tests.conftest import TinyMLP
        path = tmp_path / "mlp"
        save_arrays(str(path), trained_tiny_mlp.state_dict())
        fresh = TinyMLP(rng=make_rng(99))
        fresh.load_state_dict(load_arrays(str(path)))
        for (_, a), (_, b) in zip(trained_tiny_mlp.named_parameters(),
                                  fresh.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)
