"""Array save/load helpers."""

import numpy as np
import pytest

from repro.utils.serialization import (SerializationError, load_arrays,
                                       load_json, load_metadata,
                                       normalize_archive_path, read_jsonl,
                                       save_arrays, save_json, sidecar_path,
                                       write_jsonl)
from repro.utils.rng import make_rng


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(3, 4)), "b": np.arange(5)}
        path = tmp_path / "state"
        save_arrays(str(path), arrays)
        loaded = load_arrays(str(path))
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_metadata_sidecar(self, tmp_path):
        path = tmp_path / "state"
        save_arrays(str(path), {"x": np.ones(2)}, metadata={"epoch": 3})
        assert load_metadata(str(path))["epoch"] == 3

    def test_npz_suffix_added(self, tmp_path):
        save_arrays(str(tmp_path / "model"), {"x": np.ones(1)})
        assert (tmp_path / "model.npz").exists()

    def test_creates_parent_dirs(self, tmp_path):
        save_arrays(str(tmp_path / "deep" / "nested" / "m"), {"x": np.ones(1)})
        assert (tmp_path / "deep" / "nested" / "m.npz").exists()

    def test_roundtrip_with_explicit_npz_suffix(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(2, 2))}
        save_arrays(str(tmp_path / "state.npz"), arrays)
        assert (tmp_path / "state.npz").exists()
        assert not (tmp_path / "state.npz.npz").exists()
        loaded = load_arrays(str(tmp_path / "state.npz"))
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_load_without_suffix_finds_saved_file(self, tmp_path):
        # The historical failure mode: np.savez appends ".npz" on save
        # but np.load does not on load, so a suffix-less path round-trip
        # broke. Both sides must normalise identically.
        save_arrays(str(tmp_path / "run"), {"x": np.arange(3)})
        loaded = load_arrays(str(tmp_path / "run"))
        np.testing.assert_array_equal(loaded["x"], np.arange(3))

    def test_dotted_stem_is_not_truncated(self, tmp_path):
        # Path.with_suffix would corrupt "run-dva0.5" into "run-dva0.npz";
        # the helpers must append instead.
        save_arrays(str(tmp_path / "run-dva0.5"), {"x": np.ones(1)})
        assert (tmp_path / "run-dva0.5.npz").exists()
        loaded = load_arrays(str(tmp_path / "run-dva0.5"))
        np.testing.assert_array_equal(loaded["x"], np.ones(1))

    def test_corrupt_archive_raises_serialization_error(self, tmp_path):
        bad = tmp_path / "broken.npz"
        bad.write_bytes(b"PK\x03\x04 truncated garbage")
        with pytest.raises(SerializationError, match="delete it"):
            load_arrays(str(bad))

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_arrays(str(tmp_path / "nope"))

    def test_normalize_archive_path(self, tmp_path):
        assert normalize_archive_path(tmp_path / "a") == tmp_path / "a.npz"
        assert (normalize_archive_path(tmp_path / "a.npz")
                == tmp_path / "a.npz")
        assert (normalize_archive_path(tmp_path / "a.b")
                == tmp_path / "a.b.npz")

    def test_sidecar_path(self, tmp_path):
        assert sidecar_path(tmp_path / "a") == tmp_path / "a.json"
        assert sidecar_path(tmp_path / "a.npz") == tmp_path / "a.json"

    def test_metadata_accepts_json_path(self, tmp_path):
        save_arrays(str(tmp_path / "m"), {"x": np.ones(1)},
                    metadata={"tag": "v1"})
        assert load_metadata(str(tmp_path / "m.json"))["tag"] == "v1"

    def test_json_roundtrip_coerces_numpy(self, tmp_path):
        doc = {"n": np.int64(3), "x": np.float32(0.5),
               "flag": np.bool_(True), "arr": np.arange(3),
               "path": tmp_path / "sub"}
        path = save_json(tmp_path / "doc.json", doc)
        loaded = load_json(path)
        assert loaded["n"] == 3 and loaded["x"] == 0.5
        assert loaded["flag"] is True
        assert loaded["arr"] == [0, 1, 2]
        assert loaded["path"].endswith("sub")

    def test_json_creates_parent_dirs(self, tmp_path):
        path = save_json(tmp_path / "a" / "b" / "doc.json", {"k": 1})
        assert path.exists()

    def test_load_json_corrupt_raises(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SerializationError):
            load_json(bad)

    def test_jsonl_roundtrip(self, tmp_path):
        rows = [{"a": 1}, {"a": 2, "b": [1, 2]}]
        path = write_jsonl(tmp_path / "rows.jsonl", rows)
        assert read_jsonl(path) == rows

    def test_jsonl_skips_blank_lines(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\n\n{"a": 2}\n')
        assert read_jsonl(path) == [{"a": 1}, {"a": 2}]

    def test_jsonl_corrupt_line_reports_line_number(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"a": 1}\nnot json\n')
        with pytest.raises(SerializationError, match=":2 is not valid"):
            read_jsonl(path)

    def test_model_state_roundtrip(self, tmp_path, trained_tiny_mlp):
        from tests.conftest import TinyMLP
        path = tmp_path / "mlp"
        save_arrays(str(path), trained_tiny_mlp.state_dict())
        fresh = TinyMLP(rng=make_rng(99))
        fresh.load_state_dict(load_arrays(str(path)))
        for (_, a), (_, b) in zip(trained_tiny_mlp.named_parameters(),
                                  fresh.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)
