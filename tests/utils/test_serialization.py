"""Array save/load helpers."""

import numpy as np
import pytest

from repro.utils.serialization import load_arrays, load_metadata, save_arrays


class TestSaveLoad:
    def test_roundtrip(self, tmp_path, rng):
        arrays = {"a": rng.normal(size=(3, 4)), "b": np.arange(5)}
        path = tmp_path / "state"
        save_arrays(str(path), arrays)
        loaded = load_arrays(str(path))
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])

    def test_metadata_sidecar(self, tmp_path):
        path = tmp_path / "state"
        save_arrays(str(path), {"x": np.ones(2)}, metadata={"epoch": 3})
        assert load_metadata(str(path))["epoch"] == 3

    def test_npz_suffix_added(self, tmp_path):
        save_arrays(str(tmp_path / "model"), {"x": np.ones(1)})
        assert (tmp_path / "model.npz").exists()

    def test_creates_parent_dirs(self, tmp_path):
        save_arrays(str(tmp_path / "deep" / "nested" / "m"), {"x": np.ones(1)})
        assert (tmp_path / "deep" / "nested" / "m.npz").exists()

    def test_model_state_roundtrip(self, tmp_path, trained_tiny_mlp):
        from tests.conftest import TinyMLP
        path = tmp_path / "mlp"
        save_arrays(str(path), trained_tiny_mlp.state_dict())
        fresh = TinyMLP(rng=np.random.default_rng(99))
        fresh.load_state_dict(load_arrays(str(path)))
        for (_, a), (_, b) in zip(trained_tiny_mlp.named_parameters(),
                                  fresh.named_parameters()):
            np.testing.assert_array_equal(a.data, b.data)
