"""Logging helpers."""

import logging
import threading

import pytest

from repro.utils.logging import (_level_from_env, get_logger, reset_logging)


@pytest.fixture(autouse=True)
def clean_logging_state():
    """Each test exercises the one-time configuration from scratch."""
    reset_logging()
    yield
    reset_logging()


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("mymodule").name == "repro.mymodule"

    def test_repro_names_kept(self):
        assert get_logger("repro.core.vawo").name == "repro.core.vawo"

    def test_root_handler_installed_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_default_level_warning(self, monkeypatch):
        monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
        get_logger("c")
        assert logging.getLogger("repro").level == logging.WARNING

    def test_concurrent_first_calls_install_one_handler(self):
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            get_logger("race")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(logging.getLogger("repro").handlers) == 1


class TestEnvLevel:
    def test_names_case_insensitive(self):
        assert _level_from_env("debug") == logging.DEBUG
        assert _level_from_env("Info") == logging.INFO
        assert _level_from_env("ERROR") == logging.ERROR

    def test_numeric_levels(self):
        assert _level_from_env("15") == 15

    def test_garbage_falls_back_to_warning(self):
        assert _level_from_env("verbose-please") == logging.WARNING
        assert _level_from_env("") == logging.WARNING

    def test_env_var_applied_on_first_configure(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "INFO")
        get_logger("d")
        assert logging.getLogger("repro").level == logging.INFO


class TestReset:
    def test_reset_removes_only_our_handler(self):
        get_logger("e")
        root = logging.getLogger("repro")
        mine = logging.NullHandler()
        root.addHandler(mine)
        reset_logging()
        assert root.handlers == [mine]
        root.removeHandler(mine)

    def test_reconfigure_after_reset(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG_LEVEL", "WARNING")
        get_logger("f")
        reset_logging()
        monkeypatch.setenv("REPRO_LOG_LEVEL", "DEBUG")
        get_logger("f")
        assert logging.getLogger("repro").level == logging.DEBUG
