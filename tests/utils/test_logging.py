"""Logging helpers."""

import logging

from repro.utils.logging import get_logger


class TestGetLogger:
    def test_namespaced_under_repro(self):
        assert get_logger("mymodule").name == "repro.mymodule"

    def test_repro_names_kept(self):
        assert get_logger("repro.core.vawo").name == "repro.core.vawo"

    def test_root_handler_installed_once(self):
        get_logger("a")
        get_logger("b")
        root = logging.getLogger("repro")
        assert len(root.handlers) == 1

    def test_default_level_warning(self):
        get_logger("c")
        assert logging.getLogger("repro").level == logging.WARNING
