"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.loaders import Dataset
from repro.nn.layers import Flatten, Linear, ReLU, Sequential
from repro.nn.module import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import make_rng


@pytest.fixture(autouse=True)
def _isolated_artifact_cache(tmp_path, monkeypatch):
    """Point the artifact cache at a per-test temp store.

    Without this, any test that deploys through the default store
    (``.cache/repro``) would see artifacts left by earlier runs — a
    second ``pytest`` invocation would cache-hit stages whose side
    effects (counters, spans) the test asserts on. Tests that exercise
    env resolution or disabling override the variable themselves.
    """
    monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "artifact-cache"))


@pytest.fixture
def rng():
    return make_rng(0)


class TinyMLP(Module):
    """A 2-layer MLP on 8x8 inputs — fast enough for deployment tests."""

    def __init__(self, rng=None, hidden: int = 24, num_classes: int = 4):
        super().__init__()
        self.net = Sequential(
            Flatten(),
            Linear(64, hidden, rng=rng),
            ReLU(),
            Linear(hidden, num_classes, rng=rng),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.net(x)


def make_blob_dataset(n: int = 240, num_classes: int = 4,
                      seed: int = 0) -> Dataset:
    """A separable 8x8 'image' dataset: one bright quadrant per class."""
    rng = make_rng(seed)
    labels = rng.integers(0, num_classes, size=n)
    images = rng.normal(0.1, 0.05, size=(n, 1, 8, 8))
    for i, lbl in enumerate(labels):
        r, c = divmod(int(lbl), 2)
        images[i, 0, r * 4:(r + 1) * 4, c * 4:(c + 1) * 4] += 0.8
    return Dataset(np.clip(images, 0, 1), labels.astype(np.int64))


@pytest.fixture
def blob_data():
    return make_blob_dataset()


@pytest.fixture
def tiny_mlp():
    return TinyMLP(rng=make_rng(1))


@pytest.fixture
def trained_tiny_mlp(blob_data):
    """A TinyMLP trained to high accuracy on the blob task."""
    from repro.nn.optim import Adam
    from repro.nn.trainer import train_classifier

    model = TinyMLP(rng=make_rng(1))
    opt = Adam(model.parameters(), lr=5e-3, weight_decay=1e-4)
    train_classifier(model, blob_data, epochs=12, batch_size=32,
                     optimizer=opt, rng=make_rng(2))
    return model
